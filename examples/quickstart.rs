//! Quickstart: the paper's Figure 1 — a singleton client invoking a
//! Byzantine-fault-tolerant replicated bank account.
//!
//! Run with: `cargo run --example quickstart`

use itdos::system::SystemBuilder;
use itdos::Invocation;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant, ServantException};

const BANK: DomainId = DomainId(1);
const CLIENT: u64 = 1;

fn main() {
    // 1. Describe the service interface (IDL-lite).
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Bank::Account")
            .with_operation(OperationDef::new(
                "deposit",
                vec![("amount".into(), TypeDesc::LongLong)],
                TypeDesc::LongLong,
            ))
            .with_operation(OperationDef::new(
                "withdraw",
                vec![("amount".into(), TypeDesc::LongLong)],
                TypeDesc::LongLong,
            ))
            .with_operation(OperationDef::new("balance", vec![], TypeDesc::LongLong)),
    );

    // 2. Build the deployment: a Group Manager domain (implicit, f=1) and
    //    one server domain of 3f+1 = 4 replicas, each hosting the account
    //    servant, plus one singleton client.
    let mut builder = SystemBuilder::new(2002);
    builder.repository(repo);
    builder.add_domain(
        BANK,
        1,
        Box::new(|replica_index| {
            println!("  spawning replica {replica_index} of Bank::Account");
            let mut balance: i64 = 0;
            vec![(
                ObjectKey::from_name("acct-1"),
                Box::new(FnServant::new("Bank::Account", move |op, args| match op {
                    "deposit" => {
                        if let Value::LongLong(v) = args[0] {
                            balance += v;
                        }
                        Ok(Value::LongLong(balance))
                    }
                    "withdraw" => match args[0] {
                        Value::LongLong(v) if v <= balance => {
                            balance -= v;
                            Ok(Value::LongLong(balance))
                        }
                        _ => Err(ServantException::new("Bank::InsufficientFunds")),
                    },
                    "balance" => Ok(Value::LongLong(balance)),
                    _ => Err(ServantException::new("Bank::NoSuchOp")),
                })) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_client(CLIENT);
    let mut system = builder.build();

    println!("== ITDOS quickstart: singleton client → 4-replica bank ==");

    // 3. Invoke. The first call transparently performs Figure 3 connection
    //    establishment: open_request → threshold key shares → invocation.
    let account = || {
        Invocation::of(BANK)
            .object(b"acct-1")
            .interface("Bank::Account")
    };
    let done = system.invoke(
        CLIENT,
        account().operation("deposit").arg(Value::LongLong(500)),
    );
    println!("deposit(500)  -> {:?}", done.result);

    let done = system.invoke(
        CLIENT,
        account().operation("withdraw").arg(Value::LongLong(120)),
    );
    println!("withdraw(120) -> {:?}", done.result);

    // User exceptions replicate and vote like results do.
    let done = system.invoke(
        CLIENT,
        account().operation("withdraw").arg(Value::LongLong(10_000)),
    );
    println!("withdraw(10000) -> {:?} (voted exception)", done.result);

    let done = system.invoke(CLIENT, account().operation("balance"));
    println!("balance()     -> {:?}", done.result);

    let stats = system.sim.stats();
    println!(
        "\nsimulated time {} — {} messages, {} bytes on the wire",
        system.sim.now(),
        stats.total.messages,
        stats.total.bytes
    );
    println!(
        "protocol phases: pre-prepare {} / prepare {} / commit {} / key shares {}",
        stats.label("bft-pre-prepare").messages,
        stats.label("bft-prepare").messages,
        stats.label("bft-commit").messages,
        stats.label("gm-keyshare").messages,
    );
    assert_eq!(done.result, Ok(Value::LongLong(380)));
    println!("\nOK: all four replicas agreed on every step.");
}
