//! Intrusion drill: a guided tour of the fault pipeline — corruption,
//! masking, detection, signed-message proof, expulsion, rekey, and
//! continued service (§2.1, §3.6) — followed by a forensic audit that
//! localizes the compromised element from telemetry alone.
//!
//! Run with: `cargo run --example intrusion_drill`
//!
//! Pass a path argument to also write the first drill's JSONL dump
//! (metrics + flight events + embedded topology) there, ready for the
//! offline audit CLI: `cargo run -p itdos-bench --bin audit -- FILE`.

use itdos::fault::Behavior;
use itdos::system::SystemBuilder;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant};
use simnet::SimDuration;

const LEDGER: DomainId = DomainId(1);
const CLIENT: u64 = 1;

fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Ledger").with_operation(OperationDef::new(
            "append",
            vec![("entry".into(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo
}

fn ledger_servant() -> Box<dyn Servant> {
    let mut total = 0i64;
    Box::new(FnServant::new("Ledger", move |_, args| {
        if let Value::LongLong(v) = args[0] {
            total += v;
        }
        Ok(Value::LongLong(total))
    }))
}

fn drill(title: &str, behavior: Behavior, seed: u64, dump_to: Option<&str>) {
    println!("\n=== drill: {title} ===");
    let mut builder = SystemBuilder::new(seed);
    // forensic profile: a flight ring holding the whole timeline — a
    // truncated ring would cost the auditor its earliest evidence (and it
    // would say so in the report)
    builder.obs(itdos::ObsConfig::forensic());
    builder.repository(repo());
    builder.add_domain(
        LEDGER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("ledger"), ledger_servant())]),
    );
    builder.behavior(LEDGER, 3, behavior.clone());
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let compromised = system.fabric.domain(LEDGER).elements[3];

    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(LEDGER)
            .object(b"ledger")
            .interface("Ledger")
            .operation("append")
            .arg(Value::LongLong(1000)),
    );
    println!("append(1000) -> {:?}", done.result);
    println!("suspects: {:?}", done.suspects);
    system.settle();
    println!(
        "proofs sent to Group Manager: {}",
        system.client(CLIENT).proofs_sent
    );
    let expelled = !system
        .gm_element(0)
        .replica()
        .app()
        .manager()
        .membership()
        .domain(LEDGER)
        .unwrap()
        .is_active(compromised);
    println!("element {:?} expelled: {expelled}", compromised);
    // service must continue either way
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(LEDGER)
            .object(b"ledger")
            .interface("Ledger")
            .operation("append")
            .arg(Value::LongLong(24)),
    );
    println!("append(24)  -> {:?} (service continues)", done.result);
    assert_eq!(done.result, Ok(Value::LongLong(1024)));

    println!("\n-- per-phase metrics for this drill --");
    print!("{}", system.metrics_report());

    // the forensic layer: from telemetry alone, which element was bad?
    println!("\n-- forensic audit --");
    print!("{}", system.audit_report());

    if let Some(path) = dump_to {
        let dump = system.audit_jsonl();
        std::fs::write(path, &dump).expect("write dump");
        println!("(dump written to {path}: {} lines)", dump.lines().count());
    }
}

fn main() {
    let dump_path = std::env::args().nth(1);
    println!("== ITDOS intrusion drill: one compromised element out of four ==");
    drill(
        "value corruption (detected by the vote, expelled via proof)",
        Behavior::CorruptValue,
        41,
        dump_path.as_deref(),
    );
    drill(
        "silence (masked by 2f+1 rule; nothing to prove)",
        Behavior::Silent,
        42,
        None,
    );
    drill(
        "deliberate slowness (vote decides without waiting, §3.6)",
        Behavior::Slow(SimDuration::from_millis(400)),
        43,
        None,
    );
    drill(
        "intermittent lies (caught on the request where it lies)",
        Behavior::Intermittent,
        44,
        None,
    );
    println!("\nall drills complete: integrity and availability held throughout.");
}
