//! Intrusion drill: a guided tour of the fault pipeline — corruption,
//! masking, detection, signed-message proof, expulsion, rekey, and
//! continued service (§2.1, §3.6) — followed by a forensic audit that
//! localizes the compromised element from telemetry alone.
//!
//! Run with: `cargo run --example intrusion_drill`
//!
//! Pass a path argument to also write the first drill's JSONL dump
//! (metrics + flight events + embedded topology) there, ready for the
//! offline audit CLI: `cargo run -p itdos-bench --bin audit -- FILE`.
//! A second path argument writes the replacement drill's dump too — CI
//! runs the drill twice and byte-compares that dump to prove the whole
//! expel→replace→re-intrude timeline replays deterministically.

use itdos::fault::Behavior;
use itdos::system::SystemBuilder;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant};
use simnet::SimDuration;

const LEDGER: DomainId = DomainId(1);
const CLIENT: u64 = 1;

fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Ledger").with_operation(OperationDef::new(
            "append",
            vec![("entry".into(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo
}

fn ledger_servant() -> Box<dyn Servant> {
    let mut total = 0i64;
    Box::new(FnServant::new("Ledger", move |_, args| {
        if let Value::LongLong(v) = args[0] {
            total += v;
        }
        Ok(Value::LongLong(total))
    }))
}

fn drill(title: &str, behavior: Behavior, seed: u64, dump_to: Option<&str>) {
    println!("\n=== drill: {title} ===");
    let mut builder = SystemBuilder::new(seed);
    // forensic profile: a flight ring holding the whole timeline — a
    // truncated ring would cost the auditor its earliest evidence (and it
    // would say so in the report)
    builder.obs(itdos::ObsConfig::forensic());
    builder.repository(repo());
    builder.add_domain(
        LEDGER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("ledger"), ledger_servant())]),
    );
    builder.behavior(LEDGER, 3, behavior.clone());
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let compromised = system.fabric.domain(LEDGER).elements[3];

    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(LEDGER)
            .object(b"ledger")
            .interface("Ledger")
            .operation("append")
            .arg(Value::LongLong(1000)),
    );
    println!("append(1000) -> {:?}", done.result);
    println!("suspects: {:?}", done.suspects);
    system.settle();
    println!(
        "proofs sent to Group Manager: {}",
        system.client(CLIENT).proofs_sent
    );
    let expelled = !system
        .gm_element(0)
        .replica()
        .app()
        .manager()
        .membership()
        .domain(LEDGER)
        .unwrap()
        .is_active(compromised);
    println!("element {:?} expelled: {expelled}", compromised);
    // service must continue either way
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(LEDGER)
            .object(b"ledger")
            .interface("Ledger")
            .operation("append")
            .arg(Value::LongLong(24)),
    );
    println!("append(24)  -> {:?} (service continues)", done.result);
    assert_eq!(done.result, Ok(Value::LongLong(1024)));

    println!("\n-- per-phase metrics for this drill --");
    print!("{}", system.metrics_report());

    // the forensic layer: from telemetry alone, which element was bad?
    println!("\n-- forensic audit --");
    print!("{}", system.audit_report());

    if let Some(path) = dump_to {
        let dump = system.audit_jsonl();
        std::fs::write(path, &dump).expect("write dump");
        println!("(dump written to {path}: {} lines)", dump.lines().count());
    }
}

/// The replacement drill runs on a *stateless* servant: replies depend
/// only on the request arguments. The paper's §3.1 model synchronizes the
/// replicated message queue, not application object state, so a freshly
/// admitted element converges with its peers from its admission point
/// onward (DESIGN.md §14 spells out this boundary).
fn sensor_servant() -> Box<dyn Servant> {
    Box::new(FnServant::new("Sensor", move |_, args| {
        let Value::Sequence(samples) = &args[0] else {
            return Ok(Value::Double(0.0));
        };
        let values: Vec<f64> = samples
            .iter()
            .filter_map(|v| match v {
                Value::Double(d) => Some(*d),
                _ => None,
            })
            .collect();
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        Ok(Value::Double(mean))
    }))
}

/// Expel → replace → re-intrude: after an intrusion consumes the domain's
/// fault budget, a GM-brokered replacement (§14) restores it to `n`
/// elements — and a scripted *second* f-fault intrusion is masked,
/// detected, and expelled just like the first.
fn replacement_drill(seed: u64, dump_to: Option<&str>) {
    println!("\n=== drill: expel, replace, re-intrude (replica replacement) ===");
    let mut builder = SystemBuilder::new(seed);
    builder.obs(itdos::ObsConfig::forensic());
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Sensor").with_operation(OperationDef::new(
            "read_average",
            vec![(
                "samples".into(),
                TypeDesc::Sequence(Box::new(TypeDesc::Double)),
            )],
            TypeDesc::Double,
        )),
    );
    builder.repository(repo);
    builder.comparator(
        "Sensor",
        itdos_vote::comparator::Comparator::InexactRel(1e-6),
    );
    builder.add_domain(
        LEDGER,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("sensor"), sensor_servant())]),
    );
    builder.behavior(LEDGER, 2, Behavior::CorruptValue);
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let read = |system: &mut itdos::System| {
        system.invoke(
            CLIENT,
            itdos::Invocation::of(LEDGER)
                .object(b"sensor")
                .interface("Sensor")
                .operation("read_average")
                .arg(Value::Sequence(vec![
                    Value::Double(1.0),
                    Value::Double(3.0),
                ])),
        )
    };
    let active = |system: &itdos::System| {
        system
            .gm_element(0)
            .replica()
            .app()
            .manager()
            .membership()
            .domain(LEDGER)
            .unwrap()
            .active_count()
    };

    // act 1: the intrusion is masked, proven, and the culprit expelled
    let compromised = system.fabric.domain(LEDGER).elements[2];
    let done = read(&mut system);
    println!("read_average([1,3]) -> {:?}", done.result);
    println!("suspects: {:?}", done.suspects);
    system.settle();
    println!(
        "active elements after expulsion: {} of 4 (f exhausted)",
        active(&system)
    );
    assert_eq!(active(&system), 3);

    // act 2: a freshly keyed element is admitted into the vacated slot
    let admitted = system.spawn_replacement(LEDGER, compromised);
    system.settle();
    println!(
        "element {:?} admitted into slot 2; active elements: {} of 4",
        admitted,
        active(&system)
    );
    assert_eq!(active(&system), 4);
    let joiner = system.element(LEDGER, 2);
    println!(
        "joiner onboarded via state transfer: {}",
        !joiner.is_onboarding()
    );
    assert!(!joiner.is_onboarding());

    // act 3: a second intrusion on a different slot — the restored
    // domain tolerates its full f faults again
    let second = system.fabric.domain(LEDGER).elements[1];
    let node = system.fabric.domain(LEDGER).nodes[1];
    system
        .sim
        .fault_ledger_mut()
        .mark(u64::from(second.0), Behavior::CorruptValue.kind());
    system
        .sim
        .process_mut::<itdos::ServerElement>(node)
        .set_behavior(Behavior::CorruptValue);
    let done = read(&mut system);
    println!(
        "second intrusion: read_average -> {:?}, suspects {:?}",
        done.result, done.suspects
    );
    assert_eq!(done.suspects, vec![second]);
    system.settle();
    println!(
        "second intruder expelled; active elements: {} of 4",
        active(&system)
    );
    assert_eq!(active(&system), 3);

    println!("\n-- forensic audit across the replacement --");
    print!("{}", system.audit_report());

    if let Some(path) = dump_to {
        let dump = system.audit_jsonl();
        std::fs::write(path, &dump).expect("write dump");
        println!(
            "(replacement dump written to {path}: {} lines)",
            dump.lines().count()
        );
    }
}

fn main() {
    let dump_path = std::env::args().nth(1);
    let replacement_dump_path = std::env::args().nth(2);
    println!("== ITDOS intrusion drill: one compromised element out of four ==");
    drill(
        "value corruption (detected by the vote, expelled via proof)",
        Behavior::CorruptValue,
        41,
        dump_path.as_deref(),
    );
    drill(
        "silence (masked by 2f+1 rule; nothing to prove)",
        Behavior::Silent,
        42,
        None,
    );
    drill(
        "deliberate slowness (vote decides without waiting, §3.6)",
        Behavior::Slow(SimDuration::from_millis(400)),
        43,
        None,
    );
    drill(
        "intermittent lies (caught on the request where it lies)",
        Behavior::Intermittent,
        44,
        None,
    );
    replacement_drill(45, replacement_dump_path.as_deref());
    println!("\nall drills complete: integrity and availability held throughout.");
}
