//! Nested invocations: a replicated trading desk that consults a
//! replicated pricing service — one replication domain acting as the
//! client of another, with the intermediate reply delivered over the
//! desk's own totally ordered channel (§3.1).
//!
//! Run with: `cargo run --example nested_invocation`

use itdos::system::SystemBuilder;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::{DomainAddr, ObjectKey, ObjectRef};
use itdos_orb::servant::{FnServant, NestedCall, Outcome, Servant, ServantException};

const DESK: DomainId = DomainId(1);
const PRICER: DomainId = DomainId(2);
const CLIENT: u64 = 1;

/// The desk servant: values a position by asking the pricer domain for
/// the unit price, suspending until the nested reply arrives.
struct Desk {
    quantity: Option<i64>,
}

impl Servant for Desk {
    fn interface(&self) -> &str {
        "Trade::Desk"
    }

    fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
        let Value::LongLong(quantity) = args[0] else {
            return Outcome::Complete(Err(ServantException::new("Trade::BadArgs")));
        };
        self.quantity = Some(quantity);
        Outcome::Nested(NestedCall {
            target: ObjectRef::new(
                "Trade::Pricer",
                ObjectKey::from_name("gold"),
                DomainAddr(PRICER.0),
            ),
            operation: "unit_price".into(),
            args: vec![],
            token: 0,
        })
    }

    fn resume(&mut self, _token: u64, reply: Result<Value, ServantException>) -> Outcome {
        let quantity = self.quantity.take().unwrap_or(0);
        Outcome::Complete(match reply {
            Ok(Value::LongLong(price)) => Ok(Value::LongLong(price * quantity)),
            other => other,
        })
    }
}

fn main() {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Trade::Desk").with_operation(OperationDef::new(
            "value_position",
            vec![("quantity".into(), TypeDesc::LongLong)],
            TypeDesc::LongLong,
        )),
    );
    repo.register(
        InterfaceDef::new("Trade::Pricer").with_operation(OperationDef::new(
            "unit_price",
            vec![],
            TypeDesc::LongLong,
        )),
    );

    let mut builder = SystemBuilder::new(99);
    builder.repository(repo);
    builder.add_domain(
        DESK,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("desk"),
                Box::new(Desk { quantity: None }) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_domain(
        PRICER,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("gold"),
                Box::new(FnServant::new("Trade::Pricer", |_, _| {
                    Ok(Value::LongLong(1937))
                })) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_client(CLIENT);
    let mut system = builder.build();

    println!("== nested invocation: client → Desk domain → Pricer domain ==");
    for quantity in [10i64, 3, 25] {
        let done = system.invoke(
            CLIENT,
            itdos::Invocation::of(DESK)
                .object(b"desk")
                .interface("Trade::Desk")
                .operation("value_position")
                .arg(Value::LongLong(quantity)),
        );
        println!("value_position({quantity:>2}) -> {:?}", done.result);
        assert_eq!(done.result, Ok(Value::LongLong(1937 * quantity)));
    }

    // the pricer domain really served the nested requests, once per
    // outer invocation, on every element
    for index in 0..4 {
        let handled = system.element(PRICER, index).requests_handled;
        println!("pricer element {index}: {handled} nested requests handled");
    }
    println!(
        "\ndesk elements hold {} connections each (1 inbound + 1 outbound, reused)",
        system.element(DESK, 0).connection_count()
    );
}
