//! Figure 3 walk-through: connection establishment message by message,
//! printed from the network ledger — open_request (1), key shares to the
//! server (2) and client (3), invocation (4), reply (5).
//!
//! Run with: `cargo run --example connection_demo`

use itdos::system::SystemBuilder;
use itdos::Invocation;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant};

const ECHO: DomainId = DomainId(1);
const CLIENT: u64 = 1;

fn main() {
    let mut repo = InterfaceRepository::new();
    repo.register(InterfaceDef::new("Echo").with_operation(OperationDef::new(
        "echo",
        vec![("v".into(), TypeDesc::String)],
        TypeDesc::String,
    )));

    let mut builder = SystemBuilder::new(3);
    builder.repository(repo);
    builder.add_domain(
        ECHO,
        1,
        Box::new(|_| {
            vec![(
                ObjectKey::from_name("echo"),
                Box::new(FnServant::new("Echo", |_, args| Ok(args[0].clone()))) as Box<dyn Servant>,
            )]
        }),
    );
    builder.add_client(CLIENT);
    let mut system = builder.build();
    system.sim.stats_mut().enable_ledger();

    println!("== Figure 3: connection establishment ==\n");
    let done = system.invoke(
        CLIENT,
        Invocation::of(ECHO)
            .object(b"echo")
            .interface("Echo")
            .operation("echo")
            .arg(Value::String("hello intrusion tolerance".into())),
    );
    println!("(a) logical invocation result: {:?}\n", done.result);

    // replay the ledger grouped by protocol phase, in the order phases
    // first appear — the Figure 3 arrows
    let ledger: Vec<_> = system.sim.stats().ledger().cloned().collect();
    let phases: &[(&str, &str)] = &[
        (
            "smiop-submit",
            "(1/4) client submits to an ordering group (open_request or invocation)",
        ),
        ("bft-request", "      … relayed inside the BFT group"),
        (
            "bft-pre-prepare",
            "      PBFT pre-prepare (primary proposes the order)",
        ),
        ("bft-prepare", "      PBFT prepare"),
        ("bft-commit", "      PBFT commit"),
        (
            "bft-reply",
            "      BFT static acknowledgements back to the submitter",
        ),
        (
            "gm-keyshare",
            "(2,3) GM elements push threshold key shares to server elements and client",
        ),
        (
            "smiop-reply",
            "(5)   server elements send voted replies directly to the client",
        ),
    ];
    for (label, description) in phases {
        let entries: Vec<_> = ledger.iter().filter(|e| e.label == *label).collect();
        if entries.is_empty() {
            continue;
        }
        let first = entries[0].sent_at;
        let bytes: usize = entries.iter().map(|e| e.len).sum();
        println!(
            "{description}\n        label {label:<16} {:>3} messages, {:>5} bytes, first at {}",
            entries.len(),
            bytes,
            first
        );
    }

    println!("\n-- reuse: a second invocation skips steps 1-3 entirely --");
    let shares_before = system.sim.stats().label("gm-keyshare").messages;
    system.invoke(
        CLIENT,
        Invocation::of(ECHO)
            .object(b"echo")
            .interface("Echo")
            .operation("echo")
            .arg(Value::String("again".into())),
    );
    let shares_after = system.sim.stats().label("gm-keyshare").messages;
    println!("key-share messages: {shares_before} before, {shares_after} after (no new keying)");
    assert_eq!(shares_before, shares_after);
}
