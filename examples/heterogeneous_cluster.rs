//! Heterogeneous sensor fusion: four replicas on four *different*
//! platforms (mixed endianness, divergent float lanes) — the scenario
//! that motivates voting on unmarshalled values (§3.6).
//!
//! Run with: `cargo run --example heterogeneous_cluster`

use itdos::system::SystemBuilder;
use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::{TypeDesc, Value};
use itdos_groupmgr::membership::DomainId;
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::{FnServant, Servant, ServantException};
use itdos_vote::comparator::Comparator;

const SENSORS: DomainId = DomainId(1);
const CLIENT: u64 = 1;

fn repo() -> InterfaceRepository {
    let mut repo = InterfaceRepository::new();
    repo.register(
        InterfaceDef::new("Sensor::Fusion").with_operation(OperationDef::new(
            "fuse",
            vec![("samples".into(), TypeDesc::sequence_of(TypeDesc::Double))],
            TypeDesc::Double,
        )),
    );
    repo
}

fn fusion_servant() -> Box<dyn Servant> {
    Box::new(FnServant::new("Sensor::Fusion", |_, args| {
        let Value::Sequence(samples) = &args[0] else {
            return Err(ServantException::new("Sensor::BadArgs"));
        };
        let sum: f64 = samples
            .iter()
            .map(|v| if let Value::Double(d) = v { *d } else { 0.0 })
            .sum();
        Ok(Value::Double(sum / samples.len().max(1) as f64))
    }))
}

fn build(comparator: Comparator, seed: u64) -> itdos::System {
    let mut builder = SystemBuilder::new(seed);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", comparator);
    builder.add_domain(
        SENSORS,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("fusion"), fusion_servant())]),
    );
    builder.platforms(SENSORS, PlatformProfile::ALL.to_vec());
    builder.add_client(CLIENT);
    builder.build()
}

fn main() {
    println!("== heterogeneous sensor cluster ==");
    println!("replica platforms:");
    for (i, p) in PlatformProfile::ALL.iter().enumerate() {
        println!(
            "  replica {i}: {:<18} ({:?}-endian, float lane {})",
            p.name, p.endianness, p.float_lane
        );
    }
    let samples = vec![Value::Sequence(vec![
        Value::Double(20.1),
        Value::Double(19.9),
        Value::Double(20.4),
        Value::Double(20.0),
    ])];

    // Inexact voting: correct replicas whose floats differ by platform
    // rounding are recognized as equivalent.
    let mut system = build(Comparator::InexactRel(1e-6), 7);
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("fuse")
            .args(samples.clone()),
    );
    println!("\ninexact voting (rel eps 1e-6):");
    println!("  fused reading -> {:?}", done.result);
    println!(
        "  suspects      -> {:?} (platform divergence tolerated)",
        done.suspects
    );

    // Exact voting: the same deployment never assembles f+1 bit-identical
    // doubles — the invocation starves. This is why Immune-style byte
    // voting cannot support heterogeneity.
    let mut system = build(Comparator::Exact, 7);
    system.invoke_async(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("fuse")
            .args(samples),
    );
    system
        .sim
        .run_until(simnet::SimTime::ZERO + simnet::SimDuration::from_secs(2));
    println!("\nexact voting on the same cluster:");
    println!(
        "  completed invocations after 2 simulated seconds: {} (starved — no f+1 identical floats)",
        system.client(CLIENT).completed.len()
    );

    // And with a genuinely Byzantine replica, inexact voting still
    // catches the lie: tolerance covers rounding, not corruption.
    let mut builder = SystemBuilder::new(8);
    builder.repository(repo());
    builder.comparator("Sensor::Fusion", Comparator::InexactRel(1e-6));
    builder.add_domain(
        SENSORS,
        1,
        Box::new(|_| vec![(ObjectKey::from_name("fusion"), fusion_servant())]),
    );
    builder.platforms(SENSORS, PlatformProfile::ALL.to_vec());
    builder.behavior(SENSORS, 2, itdos::Behavior::CorruptValue);
    builder.add_client(CLIENT);
    let mut system = builder.build();
    let done = system.invoke(
        CLIENT,
        itdos::Invocation::of(SENSORS)
            .object(b"fusion")
            .interface("Sensor::Fusion")
            .operation("fuse")
            .arg(Value::Sequence(vec![
                Value::Double(20.0),
                Value::Double(20.2),
            ])),
    );
    println!("\ninexact voting with one corrupt replica:");
    println!("  fused reading -> {:?}", done.result);
    println!(
        "  suspects      -> {:?} (the lie is outside tolerance)",
        done.suspects
    );
}
