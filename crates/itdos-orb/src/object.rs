//! Object references.
//!
//! In ITDOS "the object reference contains the address of the replication
//! domain in which that service is located" (§3.3): a reference names a
//! *domain*, not a host, because every element of the domain hosts the
//! same objects (§3.4 process-granularity replication).

use std::fmt;

/// The address of a replication domain (what an IOR profile points at).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainAddr(pub u64);

impl fmt::Display for DomainAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain:{}", self.0)
    }
}

/// An opaque key naming one object within its server process.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectKey(pub Vec<u8>);

impl ObjectKey {
    /// Builds a key from a printable name.
    pub fn from_name(name: &str) -> ObjectKey {
        ObjectKey(name.as_bytes().to_vec())
    }
}

/// An interoperable object reference (IOR-lite).
///
/// # Examples
///
/// ```
/// use itdos_orb::object::{DomainAddr, ObjectKey, ObjectRef};
///
/// let account = ObjectRef::new(
///     "Bank::Account",
///     ObjectKey::from_name("acct-1"),
///     DomainAddr(3),
/// );
/// assert_eq!(account.interface, "Bank::Account");
/// assert_eq!(account.domain, DomainAddr(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectRef {
    /// Full interface name (the ITDOS GIOP extension carries this on every
    /// message).
    pub interface: String,
    /// Key of the object within its server.
    pub key: ObjectKey,
    /// The replication domain hosting the object.
    pub domain: DomainAddr,
}

impl ObjectRef {
    /// Creates a reference.
    pub fn new(interface: impl Into<String>, key: ObjectKey, domain: DomainAddr) -> ObjectRef {
        ObjectRef {
            interface: interface.into(),
            key,
            domain,
        }
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IOR:{}@{}/{}",
            self.interface,
            self.domain,
            String::from_utf8_lossy(&self.key.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = ObjectRef::new("I", ObjectKey::from_name("obj"), DomainAddr(7));
        assert_eq!(r.to_string(), "IOR:I@domain:7/obj");
    }

    #[test]
    fn keys_compare_by_content() {
        assert_eq!(ObjectKey::from_name("a"), ObjectKey(vec![b'a']));
        assert_ne!(ObjectKey::from_name("a"), ObjectKey::from_name("b"));
    }

    #[test]
    fn refs_are_hashable_map_keys() {
        let mut map = std::collections::HashMap::new();
        let r = ObjectRef::new("I", ObjectKey::from_name("x"), DomainAddr(1));
        map.insert(r.clone(), 5);
        assert_eq!(map[&r], 5);
    }
}
