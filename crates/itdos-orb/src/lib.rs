//! # itdos-orb — a miniature CORBA ORB
//!
//! The substrate standing in for TAO \[38\]: object references that address
//! *replication domains* rather than hosts, servants with
//! continuation-based dispatch (so the single-threaded execution model can
//! suspend on nested invocations, §3.1), a process-granularity object
//! adapter (§3.4), an ORB core that validates and dispatches requests and
//! marshals in the host platform's byte order, and the TAO-style
//! pluggable-protocol seam (§3.3) that the SMIOP stack plugs into.
//!
//! # Examples
//!
//! ```
//! use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
//! use itdos_giop::giop::{ReplyBody, RequestMessage};
//! use itdos_giop::platform::PlatformProfile;
//! use itdos_giop::types::{TypeDesc, Value};
//! use itdos_orb::object::ObjectKey;
//! use itdos_orb::orb::{Dispatch, Orb};
//! use itdos_orb::servant::FnServant;
//!
//! let mut repo = InterfaceRepository::new();
//! repo.register(InterfaceDef::new("Echo").with_operation(OperationDef::new(
//!     "echo",
//!     vec![("v".into(), TypeDesc::Long)],
//!     TypeDesc::Long,
//! )));
//! let mut orb = Orb::new(repo, PlatformProfile::X86_LINUX);
//! orb.activate(
//!     ObjectKey::from_name("e"),
//!     Box::new(FnServant::new("Echo", |_, args| Ok(args[0].clone()))),
//! );
//! let request = RequestMessage {
//!     request_id: 1,
//!     response_expected: true,
//!     object_key: b"e".to_vec(),
//!     interface: "Echo".into(),
//!     operation: "echo".into(),
//!     args: vec![Value::Long(7)],
//! };
//! match orb.handle_request(&request) {
//!     Dispatch::Reply(reply) => assert_eq!(reply.body, ReplyBody::Result(Value::Long(7))),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod adapter;
pub mod object;
pub mod orb;
pub mod pluggable;
pub mod servant;

pub use adapter::ObjectAdapter;
pub use object::{DomainAddr, ObjectKey, ObjectRef};
pub use orb::{Dispatch, Orb};
pub use pluggable::{ConnectionHandle, PluggableProtocol};
pub use servant::{FnServant, NestedCall, Outcome, Servant, ServantException};
