//! The ORB core: request dispatch, suspension for nested invocations, and
//! platform-faithful marshalling.

use itdos_giop::cdr::Endianness;
use itdos_giop::giop::{
    decode_message, encode_message, GiopError, GiopMessage, ReplyBody, ReplyMessage, RequestMessage,
};
use itdos_giop::idl::InterfaceRepository;
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;

use crate::adapter::ObjectAdapter;
use crate::object::ObjectKey;
use crate::servant::{NestedCall, Outcome, Servant, ServantException};

/// System exception minor codes raised by the ORB itself.
pub mod minor {
    /// The interface is not in the repository.
    pub const UNKNOWN_INTERFACE: u32 = 1;
    /// No servant is active at the object key.
    pub const OBJECT_NOT_EXIST: u32 = 2;
    /// Arguments did not conform to the operation signature.
    pub const BAD_PARAM: u32 = 3;
    /// The servant returned a value that does not conform to its declared
    /// result type (a server-side bug, deterministic across correct
    /// replicas).
    pub const INTERNAL: u32 = 4;
    /// A second request arrived while one was suspended (violates the
    /// single-outstanding-request model).
    pub const BUSY: u32 = 5;
}

/// Result of handling a request or a nested reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Dispatch {
    /// A reply is ready to send back.
    Reply(ReplyMessage),
    /// The servant suspended awaiting this nested invocation; feed the
    /// nested reply to [`Orb::handle_nested_reply`].
    Suspended(NestedCall),
}

#[derive(Debug)]
struct Suspension {
    object: ObjectKey,
    request_id: u64,
    interface: String,
    operation: String,
    token: u64,
}

/// One server process's ORB.
///
/// Single-threaded by construction (§2): at most one request chain is in
/// flight; a nested invocation suspends it until the delivery thread hands
/// back the nested reply (§3.1).
pub struct Orb {
    repo: InterfaceRepository,
    adapter: ObjectAdapter,
    platform: PlatformProfile,
    suspension: Option<Suspension>,
}

impl std::fmt::Debug for Orb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orb")
            .field("platform", &self.platform.name)
            .field("objects", &self.adapter.len())
            .field("suspended", &self.suspension.is_some())
            .finish()
    }
}

impl Orb {
    /// Creates an ORB for a server on the given platform.
    pub fn new(repo: InterfaceRepository, platform: PlatformProfile) -> Orb {
        Orb {
            repo,
            adapter: ObjectAdapter::new(),
            platform,
            suspension: None,
        }
    }

    /// The interface repository.
    pub fn repo(&self) -> &InterfaceRepository {
        &self.repo
    }

    /// This server's platform profile.
    pub fn platform(&self) -> PlatformProfile {
        self.platform
    }

    /// Activates a servant.
    pub fn activate(&mut self, key: ObjectKey, servant: Box<dyn Servant>) {
        self.adapter.activate(key, servant);
    }

    /// The object adapter.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.adapter
    }

    /// True while a request is suspended on a nested invocation.
    pub fn is_suspended(&self) -> bool {
        self.suspension.is_some()
    }

    /// Handles an unmarshalled request, dispatching to the target servant.
    pub fn handle_request(&mut self, request: &RequestMessage) -> Dispatch {
        let system = |minor: u32| {
            Dispatch::Reply(ReplyMessage {
                request_id: request.request_id,
                interface: request.interface.clone(),
                operation: request.operation.clone(),
                body: ReplyBody::SystemException { minor },
            })
        };
        if self.suspension.is_some() {
            return system(minor::BUSY);
        }
        let Some(op) = self.repo.lookup(&request.interface, &request.operation) else {
            return system(minor::UNKNOWN_INTERFACE);
        };
        if request.args.len() != op.params.len()
            || request
                .args
                .iter()
                .zip(&op.params)
                .any(|(v, (_, t))| !v.conforms(t))
        {
            return system(minor::BAD_PARAM);
        }
        let key = ObjectKey(request.object_key.clone());
        let Some(servant) = self.adapter.servant_mut(&key) else {
            return system(minor::OBJECT_NOT_EXIST);
        };
        let outcome = servant.dispatch(&request.operation, &request.args);
        self.conclude(
            key,
            request.request_id,
            request.interface.clone(),
            request.operation.clone(),
            outcome,
        )
    }

    /// Feeds the reply of a nested invocation back into the suspended
    /// servant.
    ///
    /// # Panics
    ///
    /// Panics if no request is suspended — the transport layer must only
    /// route nested replies while suspended.
    pub fn handle_nested_reply(&mut self, reply: Result<Value, ServantException>) -> Dispatch {
        let suspension = self
            .suspension
            .take()
            .expect("nested reply requires a suspended request");
        let servant = self
            .adapter
            .servant_mut(&suspension.object)
            .expect("suspended servant is still active");
        let outcome = servant.resume(suspension.token, reply);
        self.conclude(
            suspension.object,
            suspension.request_id,
            suspension.interface,
            suspension.operation,
            outcome,
        )
    }

    fn conclude(
        &mut self,
        object: ObjectKey,
        request_id: u64,
        interface: String,
        operation: String,
        outcome: Outcome,
    ) -> Dispatch {
        match outcome {
            Outcome::Complete(Ok(value)) => {
                let op = self
                    .repo
                    .lookup(&interface, &operation)
                    .expect("validated on entry");
                if !value.conforms(&op.result) {
                    return Dispatch::Reply(ReplyMessage {
                        request_id,
                        interface,
                        operation,
                        body: ReplyBody::SystemException {
                            minor: minor::INTERNAL,
                        },
                    });
                }
                // the platform's float lane models this replica's
                // library/FPU divergence on computed results (§3.6)
                let value = self.platform.perturb_value(&value);
                Dispatch::Reply(ReplyMessage {
                    request_id,
                    interface,
                    operation,
                    body: ReplyBody::Result(value),
                })
            }
            Outcome::Complete(Err(exception)) => Dispatch::Reply(ReplyMessage {
                request_id,
                interface,
                operation,
                body: ReplyBody::UserException {
                    name: exception.name,
                },
            }),
            Outcome::Nested(nested) => {
                self.suspension = Some(Suspension {
                    object,
                    request_id,
                    interface,
                    operation,
                    token: nested.token,
                });
                Dispatch::Suspended(nested)
            }
        }
    }

    /// Marshals a message in this platform's native byte order.
    ///
    /// # Errors
    ///
    /// Propagates [`GiopError`] from encoding.
    pub fn marshal(&self, message: &GiopMessage) -> Result<Vec<u8>, GiopError> {
        encode_message(message, &self.repo, self.native_endianness())
    }

    /// Unmarshals a GIOP frame (any byte order — the frame says).
    ///
    /// # Errors
    ///
    /// Propagates [`GiopError`] from decoding.
    pub fn unmarshal(&self, bytes: &[u8]) -> Result<GiopMessage, GiopError> {
        decode_message(bytes, &self.repo)
    }

    /// This platform's native byte order.
    pub fn native_endianness(&self) -> Endianness {
        self.platform.endianness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::FnServant;
    use itdos_giop::idl::{InterfaceDef, OperationDef};
    use itdos_giop::types::TypeDesc;

    fn repo() -> InterfaceRepository {
        let mut repo = InterfaceRepository::new();
        repo.register(
            InterfaceDef::new("Calc")
                .with_operation(OperationDef::new(
                    "add",
                    vec![("a".into(), TypeDesc::Long), ("b".into(), TypeDesc::Long)],
                    TypeDesc::Long,
                ))
                .with_operation(OperationDef::new(
                    "avg",
                    vec![("xs".into(), TypeDesc::sequence_of(TypeDesc::Double))],
                    TypeDesc::Double,
                )),
        );
        repo
    }

    fn orb(platform: PlatformProfile) -> Orb {
        let mut orb = Orb::new(repo(), platform);
        orb.activate(
            ObjectKey::from_name("calc"),
            Box::new(FnServant::new("Calc", |op, args| match op {
                "add" => match (&args[0], &args[1]) {
                    (Value::Long(a), Value::Long(b)) => Ok(Value::Long(a + b)),
                    _ => unreachable!("orb validated args"),
                },
                "avg" => {
                    let Value::Sequence(xs) = &args[0] else {
                        unreachable!("orb validated args")
                    };
                    let sum: f64 = xs
                        .iter()
                        .map(|v| match v {
                            Value::Double(d) => *d,
                            _ => 0.0,
                        })
                        .sum();
                    Ok(Value::Double(sum / xs.len().max(1) as f64))
                }
                _ => Err(ServantException::new("Calc::NoSuchOp")),
            })),
        );
        orb
    }

    fn request(op: &str, args: Vec<Value>) -> RequestMessage {
        RequestMessage {
            request_id: 1,
            response_expected: true,
            object_key: b"calc".to_vec(),
            interface: "Calc".into(),
            operation: op.into(),
            args,
        }
    }

    #[test]
    fn dispatch_returns_result() {
        let mut orb = orb(PlatformProfile::SPARC_SOLARIS);
        let d = orb.handle_request(&request("add", vec![Value::Long(2), Value::Long(3)]));
        match d {
            Dispatch::Reply(r) => assert_eq!(r.body, ReplyBody::Result(Value::Long(5))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_interface_is_system_exception() {
        let mut orb = orb(PlatformProfile::SPARC_SOLARIS);
        let mut req = request("add", vec![Value::Long(1), Value::Long(2)]);
        req.interface = "Nope".into();
        match orb.handle_request(&req) {
            Dispatch::Reply(r) => assert_eq!(
                r.body,
                ReplyBody::SystemException {
                    minor: minor::UNKNOWN_INTERFACE
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_object_is_system_exception() {
        let mut orb = orb(PlatformProfile::SPARC_SOLARIS);
        let mut req = request("add", vec![Value::Long(1), Value::Long(2)]);
        req.object_key = b"ghost".to_vec();
        match orb.handle_request(&req) {
            Dispatch::Reply(r) => assert_eq!(
                r.body,
                ReplyBody::SystemException {
                    minor: minor::OBJECT_NOT_EXIST
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_arguments_rejected_before_servant() {
        let mut orb = orb(PlatformProfile::SPARC_SOLARIS);
        for args in [
            vec![Value::Long(1)],                     // arity
            vec![Value::Long(1), Value::Double(2.0)], // type
        ] {
            match orb.handle_request(&request("add", args)) {
                Dispatch::Reply(r) => assert_eq!(
                    r.body,
                    ReplyBody::SystemException {
                        minor: minor::BAD_PARAM
                    }
                ),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn user_exception_propagates() {
        let mut orb = orb(PlatformProfile::SPARC_SOLARIS);
        let mut req = request("add", vec![Value::Long(1), Value::Long(2)]);
        req.operation = "avg".into();
        req.args = vec![Value::Sequence(vec![])];
        // avg of empty returns 0.0 — use the unknown-op path instead:
        // register "avg" exists; craft via servant error by using missing op
        // name at servant level is unreachable (repo rejects). Use Calc add
        // with servant-level failure is not reachable; test via direct
        // exception servant:
        let mut orb2 = Orb::new(repo(), PlatformProfile::SPARC_SOLARIS);
        orb2.activate(
            ObjectKey::from_name("calc"),
            Box::new(FnServant::new("Calc", |_, _| {
                Err(ServantException::new("Calc::Overflow"))
            })),
        );
        match orb2.handle_request(&request("add", vec![Value::Long(1), Value::Long(2)])) {
            Dispatch::Reply(r) => assert_eq!(
                r.body,
                ReplyBody::UserException {
                    name: "Calc::Overflow".into()
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
        let _ = orb.handle_request(&req);
    }

    #[test]
    fn nonconforming_result_is_internal_error() {
        let mut orb = Orb::new(repo(), PlatformProfile::SPARC_SOLARIS);
        orb.activate(
            ObjectKey::from_name("calc"),
            Box::new(FnServant::new("Calc", |_, _| {
                Ok(Value::String("no".into()))
            })),
        );
        match orb.handle_request(&request("add", vec![Value::Long(1), Value::Long(2)])) {
            Dispatch::Reply(r) => assert_eq!(
                r.body,
                ReplyBody::SystemException {
                    minor: minor::INTERNAL
                }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn platform_lane_perturbs_float_results() {
        let run = |platform: PlatformProfile| {
            let mut orb = orb(platform);
            let d = orb.handle_request(&request(
                "avg",
                vec![Value::Sequence(vec![
                    Value::Double(1.0),
                    Value::Double(2.0),
                ])],
            ));
            match d {
                Dispatch::Reply(r) => match r.body {
                    ReplyBody::Result(Value::Double(v)) => v,
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            }
        };
        let exact = run(PlatformProfile::SPARC_SOLARIS);
        let lane1 = run(PlatformProfile::X86_LINUX);
        assert_eq!(exact, 1.5);
        assert_ne!(exact, lane1, "heterogeneous platforms diverge");
        assert!((exact - lane1).abs() / exact < 1e-8, "...but only slightly");
    }

    #[test]
    fn marshalling_uses_native_endianness() {
        let be = orb(PlatformProfile::SPARC_SOLARIS);
        let le = orb(PlatformProfile::X86_LINUX);
        let msg = GiopMessage::Request(request("add", vec![Value::Long(1), Value::Long(2)]));
        let be_bytes = be.marshal(&msg).unwrap();
        let le_bytes = le.marshal(&msg).unwrap();
        assert_ne!(be_bytes, le_bytes);
        assert_eq!(be.unmarshal(&le_bytes).unwrap(), msg, "cross-decode works");
        assert_eq!(le.unmarshal(&be_bytes).unwrap(), msg);
    }

    struct Nester;
    impl Servant for Nester {
        fn interface(&self) -> &str {
            "Calc"
        }
        fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
            Outcome::Nested(NestedCall {
                target: crate::object::ObjectRef::new(
                    "Calc",
                    ObjectKey::from_name("remote"),
                    crate::object::DomainAddr(9),
                ),
                operation: "add".into(),
                args: args.to_vec(),
                token: 7,
            })
        }
        fn resume(&mut self, token: u64, reply: Result<Value, ServantException>) -> Outcome {
            assert_eq!(token, 7);
            Outcome::Complete(reply)
        }
    }

    #[test]
    fn nested_invocation_suspends_and_resumes() {
        let mut orb = Orb::new(repo(), PlatformProfile::SPARC_SOLARIS);
        orb.activate(ObjectKey::from_name("calc"), Box::new(Nester));
        let d = orb.handle_request(&request("add", vec![Value::Long(1), Value::Long(2)]));
        let Dispatch::Suspended(nested) = d else {
            panic!("expected suspension");
        };
        assert!(orb.is_suspended());
        assert_eq!(nested.target.domain, crate::object::DomainAddr(9));
        // while suspended, new requests are refused (single-threaded model)
        match orb.handle_request(&request("add", vec![Value::Long(1), Value::Long(2)])) {
            Dispatch::Reply(r) => {
                assert_eq!(r.body, ReplyBody::SystemException { minor: minor::BUSY })
            }
            other => panic!("unexpected {other:?}"),
        }
        // nested reply arrives; the original request completes
        match orb.handle_nested_reply(Ok(Value::Long(42))) {
            Dispatch::Reply(r) => {
                assert_eq!(r.request_id, 1);
                assert_eq!(r.body, ReplyBody::Result(Value::Long(42)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!orb.is_suspended());
    }
}
