//! The object adapter: object key → servant.
//!
//! Replication granularity is the whole server process (§3.4): an adapter
//! holds *all* objects of the server, and every element of the replication
//! domain hosts an identical adapter, so an invocation that is local on
//! one element is local on all of them.

use std::collections::BTreeMap;

use crate::object::ObjectKey;
use crate::servant::Servant;

/// The object adapter (POA-lite).
#[derive(Default)]
pub struct ObjectAdapter {
    servants: BTreeMap<ObjectKey, Box<dyn Servant>>,
}

impl std::fmt::Debug for ObjectAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectAdapter")
            .field("objects", &self.servants.len())
            .finish()
    }
}

impl ObjectAdapter {
    /// Creates an empty adapter.
    pub fn new() -> ObjectAdapter {
        ObjectAdapter::default()
    }

    /// Activates a servant under `key`, replacing any previous activation.
    pub fn activate(&mut self, key: ObjectKey, servant: Box<dyn Servant>) {
        self.servants.insert(key, servant);
    }

    /// Deactivates the object at `key`, returning its servant.
    pub fn deactivate(&mut self, key: &ObjectKey) -> Option<Box<dyn Servant>> {
        self.servants.remove(key)
    }

    /// Looks up a servant.
    pub fn servant_mut(&mut self, key: &ObjectKey) -> Option<&mut (dyn Servant + '_)> {
        self.servants.get_mut(key).map(|s| s.as_mut() as _)
    }

    /// True if an object is active at `key`.
    pub fn is_active(&self, key: &ObjectKey) -> bool {
        self.servants.contains_key(key)
    }

    /// Number of active objects.
    pub fn len(&self) -> usize {
        self.servants.len()
    }

    /// True when no object is active.
    pub fn is_empty(&self) -> bool {
        self.servants.is_empty()
    }

    /// Active object keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &ObjectKey> {
        self.servants.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::{FnServant, Outcome};
    use itdos_giop::types::Value;

    fn echo() -> Box<dyn Servant> {
        Box::new(FnServant::new("Echo", |_, args| Ok(args[0].clone())))
    }

    #[test]
    fn activate_and_dispatch() {
        let mut a = ObjectAdapter::new();
        let key = ObjectKey::from_name("e1");
        a.activate(key.clone(), echo());
        assert!(a.is_active(&key));
        let s = a.servant_mut(&key).unwrap();
        match s.dispatch("echo", &[Value::Long(3)]) {
            Outcome::Complete(Ok(v)) => assert_eq!(v, Value::Long(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_key_is_none() {
        let mut a = ObjectAdapter::new();
        assert!(a.servant_mut(&ObjectKey::from_name("nope")).is_none());
    }

    #[test]
    fn deactivate_removes() {
        let mut a = ObjectAdapter::new();
        let key = ObjectKey::from_name("e1");
        a.activate(key.clone(), echo());
        assert!(a.deactivate(&key).is_some());
        assert!(!a.is_active(&key));
        assert!(a.is_empty());
    }

    #[test]
    fn activation_replaces() {
        let mut a = ObjectAdapter::new();
        let key = ObjectKey::from_name("e1");
        a.activate(key.clone(), echo());
        a.activate(
            key.clone(),
            Box::new(FnServant::new("Other", |_, _| Ok(Value::Void))),
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a.servant_mut(&key).unwrap().interface(), "Other");
    }

    #[test]
    fn keys_iterate_in_order() {
        let mut a = ObjectAdapter::new();
        a.activate(ObjectKey::from_name("b"), echo());
        a.activate(ObjectKey::from_name("a"), echo());
        let keys: Vec<String> = a
            .keys()
            .map(|k| String::from_utf8_lossy(&k.0).into_owned())
            .collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
