//! Servants: application objects hosted by a server.
//!
//! Dispatch is continuation-based so the single-threaded execution model
//! (§2) can support **nested invocations** (§3.1) without blocking: a
//! servant either completes or asks the ORB to perform a remote call and
//! suspend it; the ORB resumes it when the nested reply arrives on the
//! delivery thread.

use itdos_giop::types::Value;

use crate::object::ObjectRef;

/// A servant-raised exception (maps to a GIOP user exception).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServantException {
    /// Exception repository id, e.g. `"Bank::InsufficientFunds"`.
    pub name: String,
}

impl ServantException {
    /// Creates an exception.
    pub fn new(name: impl Into<String>) -> ServantException {
        ServantException { name: name.into() }
    }
}

/// The result of one servant step.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The operation finished with a result value.
    Complete(Result<Value, ServantException>),
    /// The servant needs a nested remote invocation; the ORB suspends this
    /// request and resumes the servant with the nested reply.
    Nested(NestedCall),
}

/// A nested invocation requested by a suspended servant.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedCall {
    /// The remote object to invoke.
    pub target: ObjectRef,
    /// Operation name.
    pub operation: String,
    /// Arguments.
    pub args: Vec<Value>,
    /// Token the servant uses to recognize the continuation.
    pub token: u64,
}

/// An application object.
///
/// Implementations must be deterministic (§2): same dispatch sequence,
/// same results, on every replica — platform-specific float divergence is
/// applied by the SMIOP layer, not by the servant.
pub trait Servant {
    /// The full interface name this servant implements.
    fn interface(&self) -> &str;

    /// Handles an operation.
    fn dispatch(&mut self, operation: &str, args: &[Value]) -> Outcome;

    /// Resumes after a nested invocation completes. `reply` is the nested
    /// result or the exception it raised.
    ///
    /// The default panics: servants that never return
    /// [`Outcome::Nested`] are never resumed.
    fn resume(&mut self, token: u64, reply: Result<Value, ServantException>) -> Outcome {
        let _ = reply;
        panic!("servant resumed with unexpected token {token}");
    }
}

/// A servant built from a closure (convenient for tests and examples).
pub struct FnServant<F> {
    interface: String,
    handler: F,
}

impl<F> std::fmt::Debug for FnServant<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnServant")
            .field("interface", &self.interface)
            .finish()
    }
}

impl<F> FnServant<F>
where
    F: FnMut(&str, &[Value]) -> Result<Value, ServantException>,
{
    /// Wraps a closure as a (non-nesting) servant.
    pub fn new(interface: impl Into<String>, handler: F) -> FnServant<F> {
        FnServant {
            interface: interface.into(),
            handler,
        }
    }
}

impl<F> Servant for FnServant<F>
where
    F: FnMut(&str, &[Value]) -> Result<Value, ServantException>,
{
    fn interface(&self) -> &str {
        &self.interface
    }

    fn dispatch(&mut self, operation: &str, args: &[Value]) -> Outcome {
        Outcome::Complete((self.handler)(operation, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{DomainAddr, ObjectKey};

    #[test]
    fn fn_servant_dispatches() {
        let mut s = FnServant::new("Echo", |op, args| {
            assert_eq!(op, "echo");
            Ok(args[0].clone())
        });
        assert_eq!(s.interface(), "Echo");
        match s.dispatch("echo", &[Value::Long(5)]) {
            Outcome::Complete(Ok(v)) => assert_eq!(v, Value::Long(5)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn exceptions_propagate() {
        let mut s = FnServant::new("E", |_, _| Err(ServantException::new("E::Boom")));
        match s.dispatch("x", &[]) {
            Outcome::Complete(Err(e)) => assert_eq!(e.name, "E::Boom"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unexpected token")]
    fn default_resume_panics() {
        let mut s = FnServant::new("E", |_, _| Ok(Value::Void));
        s.resume(1, Ok(Value::Void));
    }

    /// A hand-written nesting servant used to pin the contract.
    struct Chainer {
        peer: ObjectRef,
    }

    impl Servant for Chainer {
        fn interface(&self) -> &str {
            "Chainer"
        }

        fn dispatch(&mut self, _op: &str, args: &[Value]) -> Outcome {
            Outcome::Nested(NestedCall {
                target: self.peer.clone(),
                operation: "inner".into(),
                args: args.to_vec(),
                token: 42,
            })
        }

        fn resume(&mut self, token: u64, reply: Result<Value, ServantException>) -> Outcome {
            assert_eq!(token, 42);
            Outcome::Complete(reply)
        }
    }

    #[test]
    fn nesting_servant_contract() {
        let mut s = Chainer {
            peer: ObjectRef::new("Inner", ObjectKey::from_name("i"), DomainAddr(2)),
        };
        let Outcome::Nested(call) = s.dispatch("outer", &[Value::Long(1)]) else {
            panic!("expected nested call");
        };
        assert_eq!(call.operation, "inner");
        match s.resume(call.token, Ok(Value::Long(9))) {
            Outcome::Complete(Ok(v)) => assert_eq!(v, Value::Long(9)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
