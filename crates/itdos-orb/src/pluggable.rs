//! The pluggable protocol framework (TAO-style).
//!
//! TAO's pluggable protocols \[27\] let a transport replace TCP under GIOP
//! without touching the ORB. ITDOS exploits exactly this seam: "The TAO
//! Pluggable Protocol provides an interface to the ORB for ITDOS to layer
//! traditional socket semantics on the Castro-Liskov BFT protocol" (§3.3).
//!
//! [`PluggableProtocol`] is the seam; [`Loopback`] is the trivial
//! in-process implementation (used by tests and by the ORB alone); the
//! SMIOP stack in the `itdos` crate is the intrusion-tolerant
//! implementation.

use std::collections::BTreeMap;

use crate::object::DomainAddr;

/// A connection handle issued by a protocol plugin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionHandle(pub u64);

/// Errors raised by protocol plugins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// No route to the target domain.
    Unreachable(DomainAddr),
    /// The handle does not name an open connection.
    BadHandle(ConnectionHandle),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Unreachable(d) => write!(f, "no route to {d}"),
            ProtocolError::BadHandle(h) => write!(f, "unknown connection handle {}", h.0),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A transport protocol pluggable under the ORB.
///
/// The contract mirrors what GIOP requires of a transport (§3.3):
/// *connection semantics* — an explicit open yielding a handle that frames
/// can be sent on, and an orderly close.
pub trait PluggableProtocol {
    /// Protocol name, e.g. `"SMIOP"` or `"LOOP"`.
    fn name(&self) -> &'static str;

    /// Opens (or reuses) a connection to a replication domain.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Unreachable`] when the domain is unknown.
    fn open(&mut self, target: DomainAddr) -> Result<ConnectionHandle, ProtocolError>;

    /// Queues a GIOP frame on a connection. Delivery is asynchronous.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadHandle`] for unopened handles.
    fn send(&mut self, connection: ConnectionHandle, frame: Vec<u8>) -> Result<(), ProtocolError>;

    /// Closes a connection. Closing an unknown handle is a no-op.
    fn close(&mut self, connection: ConnectionHandle);
}

/// In-process loopback transport: frames sent to a domain are queued
/// locally and can be drained by the test harness.
#[derive(Debug, Default)]
pub struct Loopback {
    connections: BTreeMap<ConnectionHandle, DomainAddr>,
    next_handle: u64,
    queues: BTreeMap<DomainAddr, Vec<Vec<u8>>>,
}

impl Loopback {
    /// Creates an empty loopback transport.
    pub fn new() -> Loopback {
        Loopback::default()
    }

    /// Drains frames queued for `domain`.
    pub fn drain(&mut self, domain: DomainAddr) -> Vec<Vec<u8>> {
        self.queues.remove(&domain).unwrap_or_default()
    }

    /// Number of open connections.
    pub fn open_connections(&self) -> usize {
        self.connections.len()
    }
}

impl PluggableProtocol for Loopback {
    fn name(&self) -> &'static str {
        "LOOP"
    }

    fn open(&mut self, target: DomainAddr) -> Result<ConnectionHandle, ProtocolError> {
        // reuse an existing connection to the same domain (§3.4:
        // "connection reuse enhances performance")
        if let Some((h, _)) = self.connections.iter().find(|(_, d)| **d == target) {
            return Ok(*h);
        }
        let handle = ConnectionHandle(self.next_handle);
        self.next_handle += 1;
        self.connections.insert(handle, target);
        Ok(handle)
    }

    fn send(&mut self, connection: ConnectionHandle, frame: Vec<u8>) -> Result<(), ProtocolError> {
        let Some(&domain) = self.connections.get(&connection) else {
            return Err(ProtocolError::BadHandle(connection));
        };
        self.queues.entry(domain).or_default().push(frame);
        Ok(())
    }

    fn close(&mut self, connection: ConnectionHandle) {
        self.connections.remove(&connection);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_send_drain() {
        let mut t = Loopback::new();
        let c = t.open(DomainAddr(1)).unwrap();
        t.send(c, vec![1, 2]).unwrap();
        t.send(c, vec![3]).unwrap();
        assert_eq!(t.drain(DomainAddr(1)), vec![vec![1, 2], vec![3]]);
        assert!(t.drain(DomainAddr(1)).is_empty());
    }

    #[test]
    fn connections_are_reused_per_domain() {
        let mut t = Loopback::new();
        let a = t.open(DomainAddr(1)).unwrap();
        let b = t.open(DomainAddr(1)).unwrap();
        let c = t.open(DomainAddr(2)).unwrap();
        assert_eq!(a, b, "same domain reuses the connection");
        assert_ne!(a, c);
        assert_eq!(t.open_connections(), 2);
    }

    #[test]
    fn send_on_closed_handle_fails() {
        let mut t = Loopback::new();
        let c = t.open(DomainAddr(1)).unwrap();
        t.close(c);
        assert_eq!(t.send(c, vec![]), Err(ProtocolError::BadHandle(c)));
    }

    #[test]
    fn close_unknown_is_noop() {
        let mut t = Loopback::new();
        t.close(ConnectionHandle(99));
    }
}
