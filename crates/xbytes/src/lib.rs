//! Minimal, std-only stand-in for the `bytes` crate.
//!
//! ITDOS passes message payloads around the simulator by value, often fanning
//! one payload out to every replica in a domain. [`Bytes`] makes that cheap:
//! it is an immutable, reference-counted byte buffer whose `clone` is an
//! `Arc` bump, not a copy. [`BytesMut`] is the growable builder that
//! [freezes](BytesMut::freeze) into a [`Bytes`].
//!
//! Only the slice of the upstream `bytes` API that this workspace uses is
//! implemented (construction, cheap clone, `Deref` to `[u8]`, `slice`);
//! anything reachable through `&[u8]` comes for free via `Deref`.
//!
//! ```
//! use xbytes::Bytes;
//!
//! let payload = Bytes::from(vec![1, 2, 3, 4]);
//! let fanout: Vec<Bytes> = (0..4).map(|_| payload.clone()).collect(); // no copies
//! assert_eq!(&payload[1..3], &[2, 3]);
//! assert_eq!(payload.slice(1..3), Bytes::from_static(&[2, 3]));
//! assert_eq!(fanout[3].len(), 4);
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage: either a borrowed static slice (zero-copy literals) or a
/// shared heap allocation.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    /// Window into the backing storage (supports zero-copy `slice`).
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view without copying the underlying storage.
    ///
    /// # Panics
    /// Panics when the range falls outside `0..=len` (same as upstream).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        };
        &full[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // ASCII-printable passthrough, hex escape otherwise (upstream style)
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a slice (alias matching the upstream `BufMut` name).
    pub fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        let (pa, pb) = (a.as_slice().as_ptr(), b.as_slice().as_ptr());
        assert_eq!(pa, pb, "clone must not copy");
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(s, [2, 3, 4]);
        assert_eq!(s.slice(1..).to_vec(), vec![3, 4]);
        assert_eq!(a.slice(..), a);
        assert_eq!(s.as_slice().as_ptr(), unsafe {
            a.as_slice().as_ptr().add(2)
        });
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn static_bytes_are_zero_copy() {
        const GREETING: &[u8] = b"hello";
        let b = Bytes::from_static(GREETING);
        assert_eq!(b.as_slice().as_ptr(), GREETING.as_ptr());
        assert_eq!(b, *GREETING);
    }

    #[test]
    fn deref_gives_slice_api() {
        let b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().max(), Some(9));
        assert_eq!(&b[..2], &[9, 8]);
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_slice(&[2, 3]);
        m.extend_from_slice(&[4]);
        assert_eq!(m.len(), 4);
        let frozen = m.freeze();
        assert_eq!(frozen, [1, 2, 3, 4]);
    }

    #[test]
    fn equality_and_ordering_cross_types() {
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(b, vec![1, 2]);
        assert_eq!(b, [1, 2]);
        assert_eq!(b, *&[1u8, 2][..]);
        assert!(Bytes::from(vec![1]) < Bytes::from(vec![2]));
    }

    #[test]
    fn debug_escapes_nonprintable() {
        let b = Bytes::from(vec![b'a', 0x00, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}
