//! Compact binary codec for BFT protocol messages.
//!
//! Protocol messages are *not* GIOP: they are the transport beneath it, so
//! they use a fixed little-endian framing independent of platform profiles
//! (exactly as the Castro–Liskov library's wire format was independent of
//! the application's marshalling).

/// Writer for the compact format.
#[derive(Debug, Default)]
pub struct Writer {
    buffer: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a tag/length-free u8.
    pub fn u8(&mut self, v: u8) -> &mut Writer {
        self.buffer.push(v);
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Writer {
        self.buffer.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Writer {
        self.buffer.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes with a u32 length prefix.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Writer {
        // encoder input is locally built, never a hostile length
        self.u32(v.len() as u32); // itdos-lint: allow(hostile-arith) -- encode-side length of a local buffer; protocol frames are bounded far below u32::MAX and the decode side enforces it
        self.buffer.extend_from_slice(v);
        self
    }

    /// Appends fixed-size raw bytes without a length prefix.
    pub fn raw(&mut self, v: &[u8]) -> &mut Writer {
        self.buffer.extend_from_slice(v);
        self
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buffer
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

/// Decode failure: input truncated or length field hostile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire message")
    }
}

impl std::error::Error for WireError {}

/// Reader over the compact format.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, position: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // checked: `position + n` must not wrap when `n` is hostile
        let end = self.position.checked_add(n).ok_or(WireError)?;
        let s = self.bytes.get(self.position..end).ok_or(WireError)?;
        self.position = end;
        Ok(s)
    }

    /// Reads a u8.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let raw = self.take(4)?.try_into().map_err(|_| WireError)?;
        Ok(u32::from_le_bytes(raw))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let raw = self.take(8)?.try_into().map_err(|_| WireError)?;
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }

    /// Fails unless the reader is exhausted.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = Writer::new();
        w.u8(7)
            .u32(0xDEAD)
            .u64(u64::MAX)
            .bytes(b"hello")
            .raw(&[1, 2]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.raw(2).unwrap(), &[1, 2]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..7]);
        assert_eq!(r.u64(), Err(WireError));
    }

    #[test]
    fn hostile_length_field_detected() {
        // claims 1000 bytes, has 2
        let mut w = Writer::new();
        w.u32(1000).raw(&[1, 2]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(), Err(WireError));
    }

    #[test]
    fn expect_end_catches_trailing_garbage() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(WireError));
    }
}
