//! simnet adapters: run replicas and clients as simulated processes.
//!
//! The replica group shares one multicast group (one "IP multicast
//! address" per replication domain, §3.4); clients are **not** members of
//! the ordering group (§3.2) and unicast their requests to each replica.

use simnet::{Context, GroupId, NodeId, Process, SimDuration, Timer};
use xbytes::Bytes;

use crate::auth::{AuthContext, Envelope, Peer};
use crate::client::Client;
use crate::config::{ClientId, GroupConfig, ReplicaId, SeqNo};
use crate::message::{ClientRequest, Message};
use crate::replica::{Output, Replica};
use crate::state::StateMachine;

/// Maps protocol identities to simulated network addresses.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// `replicas[i]` is the node hosting replica `i`.
    pub replicas: Vec<NodeId>,
    /// Client id → node.
    pub clients: std::collections::BTreeMap<ClientId, NodeId>,
}

impl Directory {
    /// The node hosting `replica`.
    pub fn replica_node(&self, replica: ReplicaId) -> NodeId {
        self.replicas[replica.0 as usize]
    }
}

/// A replica running as a simulated process.
pub struct ReplicaNode<S> {
    replica: Replica<S>,
    auth: AuthContext,
    group: GroupId,
    directory: Directory,
    base_timeout: SimDuration,
    /// Executions observed, newest last (test/bench observability; the
    /// ITDOS core uses its own process embedding `Replica` directly).
    pub executed: Vec<(SeqNo, ClientRequest, Vec<u8>)>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for ReplicaNode<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("replica", &self.replica)
            .finish()
    }
}

impl<S: StateMachine> ReplicaNode<S> {
    /// Creates a replica process.
    pub fn new(
        config: GroupConfig,
        id: ReplicaId,
        app: S,
        auth: AuthContext,
        group: GroupId,
        directory: Directory,
    ) -> ReplicaNode<S> {
        let base_timeout = config.view_timeout;
        ReplicaNode {
            replica: Replica::new(config, id, app),
            auth,
            group,
            directory,
            base_timeout,
            executed: Vec::new(),
        }
    }

    /// The wrapped replica.
    pub fn replica(&self) -> &Replica<S> {
        &self.replica
    }

    /// Mutable access (fault injection in tests).
    pub fn replica_mut(&mut self) -> &mut Replica<S> {
        &mut self.replica
    }

    fn send_message(&self, ctx: &mut Context<'_>, to: NodeId, message: &Message) {
        let payload = message.encode();
        let envelope = match message {
            Message::ViewChange(_)
            | Message::NewView(_)
            | Message::Checkpoint(_)
            | Message::StateData(_) => self.auth.signed_envelope(payload),
            _ => self.auth.mac_envelope(payload),
        };
        ctx.send_labeled(to, Bytes::from(envelope.encode()), message.label());
    }

    fn drain(&mut self, ctx: &mut Context<'_>) {
        for output in self.replica.take_outputs() {
            match output {
                Output::ToReplica(to, message) => {
                    let node = self.directory.replica_node(to);
                    self.send_message(ctx, node, &message);
                }
                Output::ToAllReplicas(message) => {
                    let payload = message.encode();
                    let envelope = match &message {
                        Message::ViewChange(_)
                        | Message::NewView(_)
                        | Message::Checkpoint(_)
                        | Message::StateData(_) => self.auth.signed_envelope(payload),
                        _ => self.auth.mac_envelope(payload),
                    };
                    ctx.multicast_labeled(
                        self.group,
                        Bytes::from(envelope.encode()),
                        message.label(),
                    );
                }
                Output::ToClient(client, message) => {
                    if let Some(&node) = self.directory.clients.get(&client) {
                        let envelope = self.auth.mac_envelope_for_client(client, message.encode());
                        ctx.send_labeled(node, Bytes::from(envelope.encode()), message.label());
                    }
                }
                Output::Executed {
                    seq,
                    request,
                    result,
                } => {
                    self.executed.push((seq, request, result));
                }
                Output::StartViewTimer { epoch, attempt } => {
                    // PBFT doubles the timeout per consecutive attempt
                    let timeout = self.base_timeout.saturating_mul(1 << attempt.min(16));
                    ctx.set_timer(timeout, epoch);
                }
                Output::EnteredView(_) | Output::StateTransferred(_) => {}
            }
        }
    }
}

impl<S: StateMachine + 'static> Process for ReplicaNode<S> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join(self.group);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Ok(envelope) = Envelope::decode(&payload) else {
            return;
        };
        if !self.auth.verify(&envelope) {
            return; // forged or tampered: silently dropped
        }
        let Ok(message) = Message::decode(&envelope.payload) else {
            return;
        };
        match envelope.sender {
            Peer::Replica(sender) => self.replica.on_message(sender, message),
            Peer::Client(_) => {
                if let Message::Request(request) = message {
                    self.replica.on_request(request);
                }
            }
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        self.replica.on_view_timeout(timer.kind);
        self.drain(ctx);
    }
}

/// A singleton BFT client running as a simulated process. Inject operation
/// bytes via [`simnet::Simulator::inject`]; accepted results accumulate in
/// [`ClientNode::results`].
pub struct ClientNode {
    client: Client,
    auth: AuthContext,
    directory: Directory,
    retransmit_every: SimDuration,
    /// Accepted results, in order.
    pub results: Vec<Vec<u8>>,
}

impl std::fmt::Debug for ClientNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientNode")
            .field("client", &self.client.id())
            .field("results", &self.results.len())
            .finish()
    }
}

impl ClientNode {
    /// Creates a client process.
    pub fn new(
        id: ClientId,
        config: GroupConfig,
        auth: AuthContext,
        directory: Directory,
    ) -> ClientNode {
        let retransmit_every = config.view_timeout;
        ClientNode {
            client: Client::new(id, config),
            auth,
            directory,
            retransmit_every,
            results: Vec::new(),
        }
    }

    /// The wrapped protocol client.
    pub fn client(&self) -> &Client {
        &self.client
    }

    fn broadcast_request(&self, ctx: &mut Context<'_>, request: &ClientRequest) {
        let envelope = self
            .auth
            .mac_envelope(Message::Request(request.clone()).encode());
        let bytes = Bytes::from(envelope.encode());
        for &node in &self.directory.replicas {
            ctx.send_labeled(node, bytes.clone(), "bft-request");
        }
    }
}

impl Process for ClientNode {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        if from.is_external() {
            // harness command: start a request with these operation bytes
            if let Some(request) = self.client.start_request(payload.to_vec()) {
                self.broadcast_request(ctx, &request);
                ctx.set_timer(self.retransmit_every, 0);
            }
            return;
        }
        let Ok(envelope) = Envelope::decode(&payload) else {
            return;
        };
        if !self.auth.verify(&envelope) {
            return;
        }
        let Ok(Message::Reply(reply)) = Message::decode(&envelope.payload) else {
            return;
        };
        if let Some((_ts, result)) = self.client.on_reply(reply) {
            self.results.push(result);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: Timer) {
        if let Some(request) = self.client.retransmit() {
            self.broadcast_request(ctx, &request);
            ctx.set_timer(self.retransmit_every, 0);
        }
    }
}

/// Builds a complete BFT group plus one client on a simulator.
///
/// Returns `(replica nodes, client node, directory)`; replicas join
/// multicast group `group`.
pub fn build_group(
    sim: &mut simnet::Simulator,
    config: &GroupConfig,
    seed: [u8; 32],
    group: GroupId,
    client_id: ClientId,
) -> (Vec<NodeId>, NodeId, Directory) {
    use crate::auth::KeyProvisioner;
    use crate::state::CounterMachine;

    let provisioner = KeyProvisioner::new(seed);
    // allocate node ids first so the directory is complete before any
    // process is constructed
    let mut directory = Directory::default();
    let replica_nodes: Vec<NodeId> = (0..config.n)
        .map(|_| sim.add_process(Box::new(Idle)))
        .collect();
    let client_node = sim.add_process(Box::new(Idle));
    directory.replicas = replica_nodes.clone();
    directory.clients.insert(client_id, client_node);
    for (i, &node) in replica_nodes.iter().enumerate() {
        let auth = AuthContext::for_replica(provisioner.clone(), ReplicaId(i as u32), config.n);
        let replica = ReplicaNode::new(
            config.clone(),
            ReplicaId(i as u32),
            CounterMachine::new(),
            auth,
            group,
            directory.clone(),
        );
        sim.replace_process(node, Box::new(replica));
        sim.join_group(node, group);
    }
    let auth = AuthContext::for_client(provisioner, client_id, config.n);
    let client = ClientNode::new(client_id, config.clone(), auth, directory.clone());
    sim.replace_process(client_node, Box::new(client));
    (replica_nodes, client_node, directory)
}

/// Placeholder process used while wiring up mutual references.
#[derive(Debug)]
struct Idle;

impl Process for Idle {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CounterMachine;
    use simnet::adversary::Scripted;
    use simnet::Simulator;

    fn setup(seed: u64) -> (Simulator, Vec<NodeId>, NodeId) {
        let mut sim = Simulator::new(seed);
        let config = GroupConfig::for_f(1);
        let (replicas, client, _) = build_group(
            &mut sim,
            &config,
            [9u8; 32],
            GroupId::from_raw(0),
            ClientId(1),
        );
        (sim, replicas, client)
    }

    fn counter_total(sim: &Simulator, node: NodeId) -> i64 {
        sim.process_ref::<ReplicaNode<CounterMachine>>(node)
            .replica()
            .app()
            .total()
    }

    #[test]
    fn request_executes_across_group() {
        let (mut sim, replicas, client) = setup(1);
        sim.inject(client, Bytes::from(CounterMachine::op(5)));
        sim.run();
        for &r in &replicas {
            assert_eq!(counter_total(&sim, r), 5);
        }
        let c = sim.process_ref::<ClientNode>(client);
        assert_eq!(c.results, vec![5i64.to_le_bytes().to_vec()]);
    }

    #[test]
    fn sequential_requests_all_execute() {
        let (mut sim, replicas, client) = setup(2);
        for _ in 0..5 {
            sim.inject(client, Bytes::from(CounterMachine::op(2)));
            sim.run();
        }
        for &r in &replicas {
            assert_eq!(counter_total(&sim, r), 10);
        }
        assert_eq!(sim.process_ref::<ClientNode>(client).results.len(), 5);
    }

    #[test]
    fn crashed_primary_recovers_via_view_change() {
        let (mut sim, replicas, client) = setup(3);
        sim.config_mut().isolate(replicas[0]); // primary of view 0 crashed
        sim.inject(client, Bytes::from(CounterMachine::op(7)));
        sim.run();
        let c = sim.process_ref::<ClientNode>(client);
        assert_eq!(c.results, vec![7i64.to_le_bytes().to_vec()]);
        for &r in &replicas[1..] {
            assert_eq!(counter_total(&sim, r), 7);
            assert!(
                sim.process_ref::<ReplicaNode<CounterMachine>>(r)
                    .replica()
                    .view()
                    .0
                    >= 1
            );
        }
    }

    #[test]
    fn tampering_adversary_defeated_by_macs() {
        let (mut sim, replicas, client) = setup(4);
        // tamper everything replica 2 sends: MACs fail, so its traffic is
        // effectively dropped; the group still has 3 good replicas
        let mut adv = Scripted::new();
        adv.tamper_from(replicas[2]);
        sim.set_adversary(Box::new(adv));
        sim.inject(client, Bytes::from(CounterMachine::op(3)));
        sim.run();
        let c = sim.process_ref::<ClientNode>(client);
        assert_eq!(c.results, vec![3i64.to_le_bytes().to_vec()]);
    }

    #[test]
    fn lossy_network_still_makes_progress() {
        let (mut sim, _, client) = setup(5);
        sim.config_mut().loss_probability = 0.05;
        sim.inject(client, Bytes::from(CounterMachine::op(1)));
        sim.run();
        let c = sim.process_ref::<ClientNode>(client);
        assert_eq!(c.results, vec![1i64.to_le_bytes().to_vec()]);
    }

    #[test]
    fn message_counts_scale_with_group_size() {
        // E4 sanity: ordering one request in an f=2 group sends more
        // protocol messages than in an f=1 group
        let count_messages = |f: usize| {
            let mut sim = Simulator::new(10 + f as u64);
            let config = GroupConfig::for_f(f);
            let (_, client, _) = build_group(
                &mut sim,
                &config,
                [9u8; 32],
                GroupId::from_raw(0),
                ClientId(1),
            );
            sim.inject(client, Bytes::from(CounterMachine::op(1)));
            sim.run();
            sim.stats().total.messages
        };
        let small = count_messages(1);
        let large = count_messages(2);
        assert!(
            large > small,
            "f=2 ({large} msgs) must exceed f=1 ({small} msgs)"
        );
    }
}
