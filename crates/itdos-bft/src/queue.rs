//! The ITDOS message-queue state machine (§3.1).
//!
//! ITDOS's key adaptation of Castro–Liskov: "An ITDOS server implements a
//! message queue that *is* the state machine. Whenever Castro–Liskov
//! synchronizes the replica state, the message queue is synchronized."
//! Replicas converge on the totally-ordered queue of delivered messages
//! instead of on application object state — which is what makes state
//! synchronization "scalable to large object servers".
//!
//! The queue lives in a bounded memory region, so it "must be
//! garbage-collected and more memory made available for incoming
//! messages". GC consumption acknowledgements flow through the same total
//! order (they are queue operations), so all replicas truncate
//! identically. An element that stops acknowledging blocks GC; once the
//! queue backs up past a threshold the element is reported as a *laggard*
//! and must be expelled to make progress — "this step essentially adds
//! virtual synchrony \[2\] to the system".

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itdos_crypto::hash::Digest;

use crate::state::StateMachine;
use crate::wire::{Reader, WireError, Writer};

/// Identifies a replication domain element within its queue group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub u32);

/// An operation applied to the queue state machine (the BFT `operation`
/// bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueOp {
    /// Append a message to the queue.
    Deliver(Vec<u8>),
    /// Element `element` has consumed every message with index < `up_to`.
    Ack {
        /// Acknowledging element.
        element: ElementId,
        /// One past the highest consumed index.
        up_to: u64,
    },
    /// Remove `element` from the GC membership (virtual-synchrony
    /// expulsion).
    Expel(ElementId),
    /// Add `element` to the GC membership.
    Join(ElementId),
}

impl QueueOp {
    /// Encodes the operation.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            QueueOp::Deliver(payload) => {
                w.u8(0);
                w.bytes(payload);
            }
            QueueOp::Ack { element, up_to } => {
                w.u8(1);
                w.u32(element.0);
                w.u64(*up_to);
            }
            QueueOp::Expel(e) => {
                w.u8(2);
                w.u32(e.0);
            }
            QueueOp::Join(e) => {
                w.u8(3);
                w.u32(e.0);
            }
        }
        w.finish()
    }

    /// Decodes an operation.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<QueueOp, WireError> {
        let mut r = Reader::new(bytes);
        let op = match r.u8()? {
            0 => QueueOp::Deliver(r.bytes()?.to_vec()),
            1 => QueueOp::Ack {
                element: ElementId(r.u32()?),
                up_to: r.u64()?,
            },
            2 => QueueOp::Expel(ElementId(r.u32()?)),
            3 => QueueOp::Join(ElementId(r.u32()?)),
            _ => return Err(WireError),
        };
        r.expect_end()?;
        Ok(op)
    }
}

/// One queued message with its absolute index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Absolute (never reused) index.
    pub index: u64,
    /// Message payload.
    pub payload: Vec<u8>,
}

/// Result of applying a queue operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// Message enqueued at this index.
    Enqueued(u64),
    /// Queue full: the message was refused (callers must GC / expel).
    Refused,
    /// Ack/expel/join applied; GC freed this many bytes.
    Collected(u64),
}

/// The replicated message queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueMachine {
    capacity: usize,
    entries: VecDeque<QueueEntry>,
    next_index: u64,
    bytes_used: usize,
    acks: BTreeMap<ElementId, u64>,
    members: BTreeSet<ElementId>,
    /// Running hash chain over every applied op (the checkpoint digest).
    chain: Digest,
}

impl QueueMachine {
    /// Creates a queue bounded to `capacity` payload bytes, with the given
    /// initial GC membership.
    pub fn new(capacity: usize, members: impl IntoIterator<Item = ElementId>) -> QueueMachine {
        let members: BTreeSet<ElementId> = members.into_iter().collect();
        QueueMachine {
            capacity,
            entries: VecDeque::new(),
            next_index: 0,
            bytes_used: 0,
            acks: members.iter().map(|m| (*m, 0)).collect(),
            members,
            chain: Digest::of(b"itdos-queue-genesis"),
        }
    }

    /// The messages currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Payload bytes currently held.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Index that will be assigned to the next enqueued message.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Current GC members.
    pub fn members(&self) -> impl Iterator<Item = ElementId> + '_ {
        self.members.iter().copied()
    }

    /// Members whose acknowledgement lags `window` or more messages behind
    /// the queue head while the queue is above half capacity — the
    /// virtual-synchrony expulsion candidates.
    pub fn laggards(&self, window: u64) -> Vec<ElementId> {
        if self.bytes_used * 2 < self.capacity {
            return Vec::new();
        }
        self.members
            .iter()
            .filter(|m| {
                let acked = self.acks.get(m).copied().unwrap_or(0);
                self.next_index.saturating_sub(acked) >= window
            })
            .copied()
            .collect()
    }

    fn mix_chain(&mut self, op_bytes: &[u8]) {
        self.chain = Digest::of_parts(&[b"itdos-queue-link", self.chain.as_bytes(), op_bytes]);
    }

    /// Applies one decoded operation.
    pub fn apply(&mut self, op: &QueueOp) -> Applied {
        let op_bytes = op.encode();
        match op {
            QueueOp::Deliver(payload) => {
                if self.bytes_used + payload.len() > self.capacity {
                    // refusal is part of the replicated state (all replicas
                    // refuse identically), so it is chained too
                    self.mix_chain(b"refused");
                    return Applied::Refused;
                }
                self.mix_chain(&op_bytes);
                let index = self.next_index;
                self.next_index += 1;
                self.bytes_used += payload.len();
                self.entries.push_back(QueueEntry {
                    index,
                    payload: payload.clone(),
                });
                Applied::Enqueued(index)
            }
            QueueOp::Ack { element, up_to } => {
                self.mix_chain(&op_bytes);
                if self.members.contains(element) {
                    let entry = self.acks.entry(*element).or_insert(0);
                    if *up_to > *entry {
                        *entry = *up_to;
                    }
                }
                Applied::Collected(self.collect())
            }
            QueueOp::Expel(element) => {
                self.mix_chain(&op_bytes);
                self.members.remove(element);
                self.acks.remove(element);
                Applied::Collected(self.collect())
            }
            QueueOp::Join(element) => {
                self.mix_chain(&op_bytes);
                if self.members.insert(*element) {
                    // a joiner starts acknowledged at the current head: it
                    // is only responsible for messages from now on
                    self.acks.insert(*element, self.next_index);
                }
                Applied::Collected(0)
            }
        }
    }

    /// Truncates messages consumed by every member; returns bytes freed.
    fn collect(&mut self) -> u64 {
        let floor = self
            .members
            .iter()
            .map(|m| self.acks.get(m).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.next_index);
        let mut freed = 0u64;
        while let Some(front) = self.entries.front() {
            if front.index < floor {
                freed += front.payload.len() as u64;
                self.bytes_used -= front.payload.len();
                self.entries.pop_front();
            } else {
                break;
            }
        }
        freed
    }
}

impl StateMachine for QueueMachine {
    fn execute(&mut self, operation: &[u8]) -> Vec<u8> {
        match QueueOp::decode(operation) {
            Ok(op) => match self.apply(&op) {
                Applied::Enqueued(index) => {
                    // the "static reply that acts as an acknowledgement
                    // message for the protocol" (§3.1)
                    let mut out = vec![0u8];
                    out.extend_from_slice(&index.to_le_bytes());
                    out
                }
                Applied::Refused => vec![1u8],
                Applied::Collected(freed) => {
                    let mut out = vec![2u8];
                    out.extend_from_slice(&freed.to_le_bytes());
                    out
                }
            },
            Err(_) => {
                self.mix_chain(b"malformed");
                vec![255u8]
            }
        }
    }

    fn digest(&self) -> Digest {
        self.chain
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.capacity as u64);
        w.u64(self.next_index);
        w.raw(self.chain.as_bytes());
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u64(e.index);
            w.bytes(&e.payload);
        }
        w.u32(self.members.len() as u32);
        for m in &self.members {
            w.u32(m.0);
            w.u64(self.acks.get(m).copied().unwrap_or(0));
        }
        w.finish()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let Ok(restored) = restore_queue(snapshot) else {
            return;
        };
        *self = restored;
    }

    fn is_barrier(&self, operation: &[u8]) -> bool {
        // a Join is the replacement admission barrier: every replica
        // forces a checkpoint right after executing it, so the joiner can
        // state-transfer from a quorum at exactly its admission point
        matches!(QueueOp::decode(operation), Ok(QueueOp::Join(_)))
    }
}

fn restore_queue(snapshot: &[u8]) -> Result<QueueMachine, WireError> {
    let mut r = Reader::new(snapshot);
    let capacity = r.u64()? as usize;
    let next_index = r.u64()?;
    let chain = Digest(r.raw(32)?.try_into().map_err(|_| WireError)?);
    let n_entries = r.u32()?;
    let mut entries = VecDeque::with_capacity(n_entries.min(1024) as usize);
    let mut bytes_used = 0usize;
    for _ in 0..n_entries {
        let index = r.u64()?;
        let payload = r.bytes()?.to_vec();
        bytes_used += payload.len();
        entries.push_back(QueueEntry { index, payload });
    }
    let n_members = r.u32()?;
    let mut members = BTreeSet::new();
    let mut acks = BTreeMap::new();
    for _ in 0..n_members {
        let m = ElementId(r.u32()?);
        let ack = r.u64()?;
        members.insert(m);
        acks.insert(m, ack);
    }
    r.expect_end()?;
    Ok(QueueMachine {
        capacity,
        entries,
        next_index,
        bytes_used,
        acks,
        members,
        chain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<ElementId> {
        (0..n).map(ElementId).collect()
    }

    fn queue(capacity: usize) -> QueueMachine {
        QueueMachine::new(capacity, members(3))
    }

    #[test]
    fn enqueue_assigns_increasing_indices() {
        let mut q = queue(1000);
        assert_eq!(q.apply(&QueueOp::Deliver(vec![1])), Applied::Enqueued(0));
        assert_eq!(q.apply(&QueueOp::Deliver(vec![2])), Applied::Enqueued(1));
        assert_eq!(q.next_index(), 2);
        assert_eq!(q.bytes_used(), 2);
    }

    #[test]
    fn full_queue_refuses() {
        let mut q = queue(4);
        assert_eq!(q.apply(&QueueOp::Deliver(vec![0; 3])), Applied::Enqueued(0));
        assert_eq!(q.apply(&QueueOp::Deliver(vec![0; 2])), Applied::Refused);
        assert_eq!(q.bytes_used(), 3, "refused message not stored");
    }

    #[test]
    fn gc_requires_all_members() {
        let mut q = queue(1000);
        q.apply(&QueueOp::Deliver(vec![1; 10]));
        q.apply(&QueueOp::Deliver(vec![2; 10]));
        // two of three members ack; no GC yet
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 2,
        });
        assert_eq!(
            q.apply(&QueueOp::Ack {
                element: ElementId(1),
                up_to: 2
            }),
            Applied::Collected(0),
            "third member has not acked"
        );
        // third member acks: both messages collected
        assert_eq!(
            q.apply(&QueueOp::Ack {
                element: ElementId(2),
                up_to: 2
            }),
            Applied::Collected(20)
        );
        assert_eq!(q.bytes_used(), 0);
    }

    #[test]
    fn expulsion_unblocks_gc() {
        let mut q = queue(1000);
        q.apply(&QueueOp::Deliver(vec![1; 10]));
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 1,
        });
        q.apply(&QueueOp::Ack {
            element: ElementId(1),
            up_to: 1,
        });
        assert_eq!(q.bytes_used(), 10, "element 2 blocks GC");
        // virtual synchrony: expel the non-participant; GC proceeds
        assert_eq!(
            q.apply(&QueueOp::Expel(ElementId(2))),
            Applied::Collected(10)
        );
        assert_eq!(q.bytes_used(), 0);
    }

    #[test]
    fn laggards_reported_when_queue_backs_up() {
        let mut q = queue(100);
        for _ in 0..6 {
            q.apply(&QueueOp::Deliver(vec![0; 10]));
        }
        // members 0,1 keep up; member 2 never acks
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 6,
        });
        q.apply(&QueueOp::Ack {
            element: ElementId(1),
            up_to: 6,
        });
        assert_eq!(q.laggards(4), vec![ElementId(2)]);
    }

    #[test]
    fn no_laggards_while_queue_has_headroom() {
        let mut q = queue(1000);
        q.apply(&QueueOp::Deliver(vec![0; 10]));
        assert!(q.laggards(1).is_empty(), "under half capacity");
    }

    #[test]
    fn joiner_starts_at_current_head() {
        let mut q = queue(1000);
        q.apply(&QueueOp::Deliver(vec![1; 10]));
        q.apply(&QueueOp::Join(ElementId(9)));
        // the joiner owes no ack for the pre-join message
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 1,
        });
        q.apply(&QueueOp::Ack {
            element: ElementId(1),
            up_to: 1,
        });
        assert_eq!(
            q.apply(&QueueOp::Ack {
                element: ElementId(2),
                up_to: 1
            }),
            Applied::Collected(10)
        );
    }

    #[test]
    fn replicas_converge_digest() {
        let ops = vec![
            QueueOp::Deliver(vec![1, 2]),
            QueueOp::Ack {
                element: ElementId(0),
                up_to: 1,
            },
            QueueOp::Deliver(vec![3]),
        ];
        let mut a = queue(100);
        let mut b = queue(100);
        for op in &ops {
            a.execute(&op.encode());
            b.execute(&op.encode());
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn divergent_histories_have_divergent_digests() {
        let mut a = queue(100);
        let mut b = queue(100);
        a.execute(&QueueOp::Deliver(vec![1]).encode());
        b.execute(&QueueOp::Deliver(vec![2]).encode());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut q = queue(100);
        q.apply(&QueueOp::Deliver(vec![1, 2, 3]));
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 1,
        });
        let snap = q.snapshot();
        let mut r = QueueMachine::new(1, members(0));
        r.restore(&snap);
        assert_eq!(r, q);
        assert_eq!(r.digest(), q.digest());
    }

    #[test]
    fn corrupt_snapshot_leaves_state_unchanged() {
        let mut q = queue(100);
        q.apply(&QueueOp::Deliver(vec![1]));
        let before = q.clone();
        q.restore(&[1, 2, 3]);
        assert_eq!(q, before);
    }

    #[test]
    fn malformed_op_is_deterministic() {
        let mut a = queue(100);
        let mut b = queue(100);
        assert_eq!(a.execute(&[99, 99]), vec![255]);
        assert_eq!(b.execute(&[99, 99]), vec![255]);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn ops_round_trip_encoding() {
        for op in [
            QueueOp::Deliver(vec![1, 2, 3]),
            QueueOp::Ack {
                element: ElementId(7),
                up_to: 42,
            },
            QueueOp::Expel(ElementId(2)),
            QueueOp::Join(ElementId(5)),
        ] {
            assert_eq!(QueueOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(QueueOp::decode(&[77]).is_err());
    }

    #[test]
    fn ack_never_regresses() {
        let mut q = queue(100);
        q.apply(&QueueOp::Deliver(vec![1]));
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 5,
        });
        q.apply(&QueueOp::Ack {
            element: ElementId(0),
            up_to: 2,
        });
        // a Byzantine element cannot roll its own ack back to force
        // re-retention; floor for element 0 stays 5
        q.apply(&QueueOp::Ack {
            element: ElementId(1),
            up_to: 5,
        });
        assert_eq!(
            q.apply(&QueueOp::Ack {
                element: ElementId(2),
                up_to: 5
            }),
            Applied::Collected(1)
        );
    }
}
