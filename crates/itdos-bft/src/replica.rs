//! The PBFT replica state machine.
//!
//! Pure protocol logic: inputs are verified messages (the
//! [`crate::node`] adapter authenticates envelopes before calling in) and
//! timer expirations; outputs are queued [`Output`] actions drained by the
//! adapter. Normal case, checkpointing, view changes, and state transfer
//! follow Castro–Liskov \[7\]; the ITDOS message-queue adaptation builds on
//! top in [`crate::queue`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itdos_crypto::hash::Digest;
use itdos_obs::{LabelValue, Obs};

use crate::config::{ClientId, GroupConfig, ReplicaId, SeqNo, View};
use crate::log::Log;
use crate::message::{
    Batch, Checkpoint, ClientRequest, Commit, Message, NewView, PrePrepare, Prepare, PreparedProof,
    Reply, StateData, StateFetch, ViewChange,
};
use crate::state::StateMachine;
use crate::wire::{Reader, WireError, Writer};

/// Per-client exactly-once record: replies for the last
/// [`GroupConfig::client_reply_window`] executed timestamps, plus the
/// eviction floor (timestamps at or below it are ancient and dropped
/// outright). A pipelining client has several timestamps in flight at
/// once, so a single last-timestamp record would drop a slower request
/// that was ordered after a faster one; instead each replica keeps a
/// bounded window of executed timestamps with their cached replies.
/// Eviction is driven by the total order, so the window contents are
/// identical on all correct replicas.
#[derive(Debug, Clone, Default)]
struct ClientRecord {
    replies: BTreeMap<u64, Reply>,
    floor: u64,
}

impl ClientRecord {
    /// True when `timestamp` already executed (cached or evicted).
    fn executed(&self, timestamp: u64) -> bool {
        timestamp <= self.floor || self.replies.contains_key(&timestamp)
    }

    /// Caches the reply for an executed timestamp, evicting the oldest
    /// entries beyond the window.
    fn record(&mut self, timestamp: u64, reply: Reply, window: usize) {
        self.replies.insert(timestamp, reply);
        while self.replies.len() > window.max(1) {
            if let Some((evicted, _)) = self.replies.pop_first() {
                self.floor = self.floor.max(evicted);
            }
        }
    }
}

/// An action the protocol asks the transport adapter to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Send to one replica.
    ToReplica(ReplicaId, Message),
    /// Multicast to all other replicas.
    ToAllReplicas(Message),
    /// Send to a client.
    ToClient(ClientId, Message),
    /// A request was executed at `seq` — the upper layer's delivery hook
    /// (in ITDOS this feeds the ORB thread).
    Executed {
        /// Order of execution.
        seq: SeqNo,
        /// The executed request.
        request: ClientRequest,
        /// Result bytes from the state machine.
        result: Vec<u8>,
    },
    /// (Re)arm the view-change timer with the given epoch.
    StartViewTimer {
        /// Epoch used to ignore stale expirations.
        epoch: u64,
        /// Consecutive view-change attempts (adapter doubles the timeout).
        attempt: u32,
    },
    /// The replica moved to a new view.
    EnteredView(View),
    /// The replica fell behind and restored state from a transfer.
    StateTransferred(SeqNo),
}

/// A PBFT replica wrapping an application state machine.
pub struct Replica<S> {
    config: GroupConfig,
    id: ReplicaId,
    app: S,
    log: Log,
    view: View,
    /// Highest contiguously executed sequence number.
    last_executed: SeqNo,
    /// Next sequence the primary will assign.
    next_seq: SeqNo,
    /// Recent replies per client (exactly-once semantics).
    client_table: BTreeMap<ClientId, ClientRecord>,
    /// Requests accepted but not yet executed (view-change trigger).
    pending: BTreeSet<Digest>,
    /// Digests this primary has assigned a sequence number in the current
    /// view (prevents double ordering; rebuilt on view entry).
    ordered: BTreeSet<Digest>,
    /// Requests a primary could not yet assign (window full).
    backlog: VecDeque<ClientRequest>,
    /// Highest per-client timestamp admitted to ordering (or executed).
    /// Client timestamps are consecutive from 1, so this is the FIFO
    /// admission floor for pipelined clients.
    admitted_ts: BTreeMap<ClientId, u64>,
    /// Requests that overtook an earlier timestamp of their own client on
    /// the network (multicast + relay paths reorder freely); a primary
    /// parks them until the gap fills so the total order preserves each
    /// client's submission order.
    reorder: BTreeMap<ClientId, BTreeMap<u64, ClientRequest>>,
    timer_epoch: u64,
    view_change_attempts: u32,
    in_view_change: bool,
    /// Collected view-change messages per target view.
    view_changes: BTreeMap<View, BTreeMap<ReplicaId, ViewChange>>,
    /// Outstanding state-transfer target, if any.
    fetching: Option<SeqNo>,
    /// StateData offers received while fetching: (seq, digest) → senders.
    /// `f+1` matching offers prove the snapshot without checkpoint votes
    /// (at least one offer is from a correct replica).
    state_offers: BTreeMap<(SeqNo, Digest), BTreeSet<ReplicaId>>,
    /// True during proactive recovery: the replica distrusts its own app
    /// state and accepts a trusted snapshot even at its current sequence.
    recovering: bool,
    /// True while onboarding as a fresh replacement: the replica stays
    /// quiescent (no votes, relays, or view changes) until a trusted state
    /// transfer lands it at the group's current state.
    joining: bool,
    /// Highest view observed per peer while joining, mined from messages
    /// that attest the sender operates in that view; on completion the
    /// joiner adopts the (f+1)-th highest — vouched for by at least one
    /// correct replica, so Byzantine peers cannot inflate it.
    peer_views: BTreeMap<ReplicaId, u64>,
    outputs: Vec<Output>,
    /// Instrumentation sink; a disabled handle (the default) makes every
    /// hook a no-op.
    obs: Obs,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("in_view_change", &self.in_view_change)
            .finish()
    }
}

impl<S: StateMachine> Replica<S> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: GroupConfig, id: ReplicaId, app: S) -> Replica<S> {
        config.validate();
        let log = Log::new(&config);
        Replica {
            config,
            id,
            app,
            log,
            view: View(0),
            last_executed: SeqNo(0),
            next_seq: SeqNo(0),
            client_table: BTreeMap::new(),
            pending: BTreeSet::new(),
            ordered: BTreeSet::new(),
            backlog: VecDeque::new(),
            admitted_ts: BTreeMap::new(),
            reorder: BTreeMap::new(),
            timer_epoch: 0,
            view_change_attempts: 0,
            in_view_change: false,
            view_changes: BTreeMap::new(),
            fetching: None,
            state_offers: BTreeMap::new(),
            recovering: false,
            joining: false,
            peer_views: BTreeMap::new(),
            outputs: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Installs an observability sink. Phase spans (`bft.prepare_us`,
    /// `bft.commit_us`, `bft.order_us`) and protocol events are recorded
    /// against the sink's injected clock; with the default disabled handle
    /// every hook is a zero-allocation no-op.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// This replica's metric label set.
    fn obs_label(&self) -> [itdos_obs::Label; 1] {
        [("replica", LabelValue::U64(u64::from(self.id.0)))]
    }

    /// Span id for a per-sequence phase: the replica id is mixed in so
    /// that replicas of one group sharing a single recorder cannot clobber
    /// each other's spans for the same sequence number. Cross-group
    /// separation comes from the scoped handle the wiring installs
    /// ([`itdos_obs::Obs::scoped`]).
    fn seq_span_id(&self, seq: SeqNo) -> u64 {
        (u64::from(self.id.0) << 48) ^ seq.0
    }

    /// Publishes queue-depth gauges (request backlog, accepted-but-
    /// unexecuted requests, and sequence numbers in flight).
    fn obs_depths(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        let labels = self.obs_label();
        self.obs
            .gauge("bft.backlog_depth", &labels, self.backlog.len() as i64);
        self.obs
            .gauge("bft.pending_depth", &labels, self.pending.len() as i64);
        self.obs.gauge(
            "bft.pipeline_depth",
            &labels,
            self.next_seq.0.saturating_sub(self.last_executed.0) as i64,
        );
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// True when this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.config.primary_of(self.view) == self.id
    }

    /// Highest contiguously executed sequence number.
    pub fn last_executed(&self) -> SeqNo {
        self.last_executed
    }

    /// Access to the application state machine.
    pub fn app(&self) -> &S {
        &self.app
    }

    /// Mutable access to the application (tests / fault injection only).
    pub fn app_mut(&mut self) -> &mut S {
        &mut self.app
    }

    /// The protocol log (tests / diagnostics).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// True while a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Drains queued outputs.
    pub fn take_outputs(&mut self) -> Vec<Output> {
        self.obs_depths();
        std::mem::take(&mut self.outputs)
    }

    fn arm_timer(&mut self) {
        self.timer_epoch += 1;
        self.outputs.push(Output::StartViewTimer {
            epoch: self.timer_epoch,
            attempt: self.view_change_attempts,
        });
    }

    // ---------------------------------------------------------------- input

    /// Handles a verified protocol message from `sender`.
    pub fn on_message(&mut self, sender: ReplicaId, message: Message) {
        if self.joining {
            // quiescent onboarding: only checkpoint/state-transfer traffic
            // is acted on; ordering traffic is mined for the senders'
            // current views so the joiner can adopt one on completion
            match message {
                Message::Checkpoint(cp) => self.on_checkpoint(sender, cp),
                Message::StateData(sd) => self.on_state_data(sd),
                Message::PrePrepare(pp) => {
                    if sender == self.config.primary_of(pp.view) {
                        self.note_peer_view(sender, pp.view);
                    }
                }
                Message::Prepare(p) => self.note_peer_view(sender, p.view),
                Message::Commit(c) => self.note_peer_view(sender, c.view),
                Message::NewView(nv) => {
                    if sender == nv.primary {
                        self.note_peer_view(sender, nv.view);
                    }
                }
                _ => {}
            }
            return;
        }
        match message {
            Message::Request(req) => self.on_request(req),
            Message::PrePrepare(pp) => self.on_pre_prepare(sender, pp),
            Message::Prepare(p) => self.on_prepare(sender, p),
            Message::Commit(c) => self.on_commit(sender, c),
            Message::Checkpoint(cp) => self.on_checkpoint(sender, cp),
            Message::ViewChange(vc) => self.on_view_change(sender, vc),
            Message::NewView(nv) => self.on_new_view(sender, nv),
            Message::StateFetch(sf) => self.on_state_fetch(sf),
            Message::StateData(sd) => self.on_state_data(sd),
            Message::Reply(_) => {} // replicas ignore replies
        }
    }

    /// Handles a client request (also called when a backup relays one).
    pub fn on_request(&mut self, request: ClientRequest) {
        self.obs.incr("bft.requests", &self.obs_label());
        if self.joining {
            // quiescent while onboarding: no relays, no ordering — the
            // client's retransmission finds us once we are caught up
            return;
        }
        // exactly-once: resend the cached reply for an executed timestamp
        if let Some(record) = self.client_table.get(&request.client) {
            if request.timestamp <= record.floor {
                return; // ancient: its reply window has passed
            }
            if let Some(reply) = record.replies.get(&request.timestamp) {
                self.outputs.push(Output::ToClient(
                    request.client,
                    Message::Reply(reply.clone()),
                ));
                return;
            }
        }
        let digest = request.digest();
        let newly_pending = self.pending.insert(digest);
        if self.in_view_change {
            return; // ordered after the view change completes (client retransmits)
        }
        if self.is_primary() {
            // a request already ordered in this view or already backlogged
            // (client broadcast + backup relays deliver several copies)
            // must not be assigned a second sequence number
            let already_queued =
                self.ordered.contains(&digest) || self.backlog.iter().any(|r| r.digest() == digest);
            if !already_queued {
                self.enqueue_in_client_order(request);
            }
        } else {
            // backup: relay to the primary and start the view-change timer
            let primary = self.config.primary_of(self.view);
            self.outputs
                .push(Output::ToReplica(primary, Message::Request(request)));
            if newly_pending {
                self.arm_timer();
            }
        }
    }

    /// Admits a deduplicated request to the backlog respecting per-client
    /// timestamp order. A pipelined client has several timestamps on the
    /// wire at once and the multicast + backup-relay paths reorder freely,
    /// so a later timestamp can reach the primary first; parking it until
    /// the gap fills keeps the total order aligned with each client's
    /// submission order.
    fn enqueue_in_client_order(&mut self, request: ClientRequest) {
        let client = request.client;
        let next = self.admitted_ts.get(&client).copied().unwrap_or(0) + 1;
        if request.timestamp > next {
            self.reorder
                .entry(client)
                .or_default()
                .insert(request.timestamp, request);
            return;
        }
        if request.timestamp < next {
            // a view change ordered a later timestamp while this one fell
            // through (its slot lost its prepared proof); submission order
            // is already broken for it, so re-admit out of band rather
            // than starve the client's retransmissions
            self.backlog.push_back(request);
            self.drain_backlog();
            return;
        }
        self.admitted_ts.insert(client, request.timestamp);
        self.backlog.push_back(request);
        // the gap just filled: release consecutive parked successors
        while let Some(buf) = self.reorder.get_mut(&client) {
            let next = self.admitted_ts.get(&client).copied().unwrap_or(0) + 1;
            match buf.remove(&next) {
                Some(parked) => {
                    self.admitted_ts.insert(client, parked.timestamp);
                    self.backlog.push_back(parked);
                }
                None => {
                    if buf.is_empty() {
                        self.reorder.remove(&client);
                    }
                    break;
                }
            }
        }
        self.drain_backlog();
    }

    /// Assigns backlogged requests to sequence numbers, one *batch* per
    /// sequence number. Flush policy: an open pipeline slot takes whatever
    /// is pending immediately (low load ⇒ batches of one, lowest latency);
    /// with all `pipeline_depth` slots occupied, requests accumulate in
    /// the backlog and the next slot to free (execution progress or a
    /// stabilized checkpoint re-opens the window) takes up to a full
    /// batch — so batch size adapts to load with no timer in the loop.
    fn drain_backlog(&mut self) {
        loop {
            let seq = SeqNo(self.next_seq.0 + 1);
            if !self.log.in_window(seq) {
                break; // window full until the next stable checkpoint
            }
            let in_flight = self.next_seq.0.saturating_sub(self.last_executed.0);
            if in_flight >= self.config.pipeline_depth {
                break; // all pipeline slots occupied: accumulate
            }
            if self.backlog.is_empty() {
                break;
            }
            // pack a batch bounded by max_batch requests / max_batch_bytes
            // (a batch always admits its first request, however large)
            let mut requests = Vec::new();
            let mut bytes = 0usize;
            while requests.len() < self.config.max_batch {
                let size = match self.backlog.front() {
                    Some(front) => front.operation.len(),
                    None => break,
                };
                if !requests.is_empty() && bytes.saturating_add(size) > self.config.max_batch_bytes
                {
                    break;
                }
                bytes += size;
                if let Some(front) = self.backlog.pop_front() {
                    requests.push(front);
                }
            }
            let batch = Batch { requests };
            self.next_seq = seq;
            for request in &batch.requests {
                self.ordered.insert(request.digest());
            }
            self.obs
                .observe("bft.batch_size", &self.obs_label(), batch.len() as u64);
            // the primary's ordering phases start when it proposes
            self.obs.span_begin("bft.prepare_us", self.seq_span_id(seq));
            self.obs.span_begin("bft.order_us", self.seq_span_id(seq));
            let pp = PrePrepare {
                view: self.view,
                seq,
                digest: batch.digest(),
                batch,
            };
            let entry = self.log.entry(self.view, seq);
            entry.pre_prepare = Some(pp.clone());
            self.outputs
                .push(Output::ToAllReplicas(Message::PrePrepare(pp)));
            // the primary's pre-prepare counts as its prepare; execution
            // still needs 2f prepares from backups
            self.try_commit(self.view, seq);
        }
    }

    fn on_pre_prepare(&mut self, sender: ReplicaId, pp: PrePrepare) {
        if self.in_view_change
            || pp.view != self.view
            || sender != self.config.primary_of(self.view)
            || !self.log.in_window(pp.seq)
        {
            return;
        }
        if pp.batch.is_empty() || pp.digest != pp.batch.digest() {
            // the primary is lying about its batch contents (or padding
            // the sequence space with empty batches): refuse, and put the
            // self-contradictory message on the flight record — like an
            // equivocation it is hard forensic evidence against the sender
            let labels = [
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(pp.seq.0)),
                ("view", LabelValue::U64(pp.view.0)),
            ];
            self.obs.incr("bft.bad_batches", &self.obs_label());
            self.obs.event("bft.bad_batch_digest", &labels);
            return;
        }
        let view = self.view;
        let entry = self.log.entry(view, pp.seq);
        if let Some(existing) = &entry.pre_prepare {
            if existing.digest != pp.digest {
                // equivocating primary: refuse; the timer will expire and a
                // view change will remove it. The contradiction itself is
                // hard forensic evidence, so put it on the flight record.
                let labels = [
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(pp.seq.0)),
                    ("view", LabelValue::U64(view.0)),
                ];
                self.obs.incr("bft.equivocations", &self.obs_label());
                self.obs.event("bft.equivocation", &labels);
                return;
            }
            return; // duplicate
        }
        entry.pre_prepare = Some(pp.clone());
        let was_idle = self.pending.is_empty();
        for request in &pp.batch.requests {
            // a primary that fell behind can legitimately re-propose a
            // request this replica already executed (its new-view carry was
            // empty); marking it pending again would poison the view-change
            // trigger forever, because execution never revisits old seqs
            let executed = self
                .client_table
                .get(&request.client)
                .is_some_and(|r| r.executed(request.timestamp));
            if !executed {
                self.pending.insert(request.digest());
            }
        }
        self.obs
            .observe("bft.batch_size", &self.obs_label(), pp.batch.len() as u64);
        // a backup's ordering phases start at pre-prepare acceptance
        self.obs
            .span_begin("bft.prepare_us", self.seq_span_id(pp.seq));
        self.obs
            .span_begin("bft.order_us", self.seq_span_id(pp.seq));
        let prepare = Prepare {
            view: self.view,
            seq: pp.seq,
            digest: pp.digest,
            replica: self.id,
        };
        self.log
            .entry(view, pp.seq)
            .prepares
            .insert(self.id, prepare);
        self.outputs
            .push(Output::ToAllReplicas(Message::Prepare(prepare)));
        if was_idle && !self.pending.is_empty() {
            self.arm_timer();
        }
        self.try_commit(view, pp.seq);
    }

    fn on_prepare(&mut self, sender: ReplicaId, prepare: Prepare) {
        if sender != prepare.replica
            || prepare.view != self.view
            || !self.log.in_window(prepare.seq)
        {
            return;
        }
        self.log
            .entry(prepare.view, prepare.seq)
            .prepares
            .insert(prepare.replica, prepare);
        self.try_commit(prepare.view, prepare.seq);
    }

    fn try_commit(&mut self, view: View, seq: SeqNo) {
        let (is_prepared, has_own_commit, digest) = match self.log.entry_ref(view, seq) {
            Some(entry) => (
                entry.prepared(&self.config),
                entry.commits.contains_key(&self.id),
                entry.pre_prepare.as_ref().map(|pp| pp.digest),
            ),
            None => return,
        };
        if !is_prepared || has_own_commit {
            self.try_execute();
            return;
        }
        // prepared implies a pre-prepare digest; an inconsistent entry
        // simply does not advance to commit
        let Some(digest) = digest else {
            return;
        };
        // prepared for the first time: close the prepare phase, open commit
        self.obs
            .span_end("bft.prepare_us", self.seq_span_id(seq), &self.obs_label());
        self.obs.span_begin("bft.commit_us", self.seq_span_id(seq));
        self.obs.event(
            "bft.prepared",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
                ("view", LabelValue::U64(view.0)),
            ],
        );
        let commit = Commit {
            view,
            seq,
            digest,
            replica: self.id,
        };
        self.log.entry(view, seq).commits.insert(self.id, commit);
        self.outputs
            .push(Output::ToAllReplicas(Message::Commit(commit)));
        self.try_execute();
    }

    fn on_commit(&mut self, sender: ReplicaId, commit: Commit) {
        if sender != commit.replica {
            return;
        }
        // a commit far past our execution point means we missed traffic
        // (crash, partition): fetch the latest stable checkpoint instead
        // of waiting for requests that will never be retransmitted
        if commit.seq.0 > self.last_executed.0 + self.config.checkpoint_interval {
            let target = SeqNo(commit.seq.0 - commit.seq.0 % self.config.checkpoint_interval);
            if target > self.last_executed {
                self.request_state(target, Digest::default());
            }
        }
        if commit.view != self.view || !self.log.in_window(commit.seq) {
            return;
        }
        self.log
            .entry(commit.view, commit.seq)
            .commits
            .insert(commit.replica, commit);
        self.try_execute();
    }

    fn try_execute(&mut self) {
        let mut progressed = false;
        loop {
            let next = SeqNo(self.last_executed.0 + 1);
            let view = self.view;
            let batch = match self.log.entry_ref(view, next) {
                Some(entry) if !entry.executed && entry.committed_local(&self.config) => {
                    // committed implies a pre-prepare; stall rather than
                    // panic on an inconsistent entry
                    match entry.pre_prepare.as_ref() {
                        Some(pp) => pp.batch.clone(),
                        None => break,
                    }
                }
                _ => break,
            };
            progressed = true;
            self.log.entry(view, next).executed = true;
            self.last_executed = next;
            let labels = self.obs_label();
            self.obs
                .span_end("bft.commit_us", self.seq_span_id(next), &labels);
            self.obs
                .span_end("bft.order_us", self.seq_span_id(next), &labels);
            // commit certificate reached and applied: the last ordering
            // phase this replica can attest for `next`
            self.obs.event(
                "bft.committed",
                &[
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(next.0)),
                ],
            );
            // unpack the batch in its agreed order; an empty batch (the
            // new-view null operation) executes nothing
            let mut barrier = false;
            for request in batch.requests {
                self.pending.remove(&request.digest());
                // keep the FIFO admission floor current on every replica,
                // so a backup elected primary later admits from the right
                // per-client position
                let floor = self.admitted_ts.entry(request.client).or_insert(0);
                *floor = (*floor).max(request.timestamp);
                // exactly-once at execution: a replayed or doubly-ordered
                // request (Byzantine primary) is skipped, not re-executed
                let record = self.client_table.entry(request.client).or_default();
                if record.executed(request.timestamp) {
                    continue;
                }
                barrier |= self.app.is_barrier(&request.operation);
                let result = self.app.execute(&request.operation);
                let reply = Reply {
                    view,
                    timestamp: request.timestamp,
                    client: request.client,
                    replica: self.id,
                    result: result.clone(),
                };
                let window = self.config.client_reply_window;
                self.client_table.entry(request.client).or_default().record(
                    request.timestamp,
                    reply.clone(),
                    window,
                );
                self.obs.incr("bft.executed", &labels);
                self.outputs
                    .push(Output::ToClient(request.client, Message::Reply(reply)));
                self.outputs.push(Output::Executed {
                    seq: next,
                    request,
                    result,
                });
            }
            if barrier {
                // membership-change barrier: checkpoint immediately so a
                // joiner can state-transfer from a quorum at this exact seq
                self.emit_checkpoint(next);
            } else if next.0 % self.config.checkpoint_interval == 0 {
                self.emit_checkpoint(next);
            }
        }
        // progress resets the view-change timer; with no progress the
        // running timer keeps counting toward a view change
        if progressed {
            if self.pending.is_empty() {
                self.view_change_attempts = 0;
            } else {
                self.arm_timer();
            }
            if self.is_primary() {
                self.drain_backlog();
            }
        }
    }

    fn emit_checkpoint(&mut self, seq: SeqNo) {
        // checkpoint digests use the canonical snapshot digest so state
        // transfer can verify a received snapshot against checkpoint votes;
        // the payload carries the reply cache alongside the application
        // snapshot so a transferred replica keeps exactly-once semantics
        let payload = encode_transfer_payload(&self.app.snapshot(), &self.client_table);
        let state_digest = snapshot_digest(&payload);
        self.log.store_own_checkpoint(seq, state_digest, payload);
        self.obs.incr("bft.checkpoints", &self.obs_label());
        self.obs.event(
            "bft.checkpoint",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
            ],
        );
        let checkpoint = Checkpoint {
            seq,
            state_digest,
            replica: self.id,
        };
        self.log.add_checkpoint(&checkpoint);
        self.outputs
            .push(Output::ToAllReplicas(Message::Checkpoint(checkpoint)));
        self.maybe_stabilize(seq, state_digest);
    }

    fn on_checkpoint(&mut self, sender: ReplicaId, checkpoint: Checkpoint) {
        if sender != checkpoint.replica {
            return;
        }
        self.log.add_checkpoint(&checkpoint);
        self.maybe_stabilize(checkpoint.seq, checkpoint.state_digest);
    }

    fn maybe_stabilize(&mut self, seq: SeqNo, digest: Digest) {
        if self.log.checkpoint_votes(seq, digest) < self.config.quorum() {
            return;
        }
        if self.recovering && seq >= self.last_executed {
            // a fresh-enough stable checkpoint exists: re-issue the fetch
            self.fetching = Some(seq);
            self.outputs
                .push(Output::ToAllReplicas(Message::StateFetch(StateFetch {
                    seq,
                    replica: self.id,
                })));
            return;
        }
        if seq.0 >= self.last_executed.0 + self.config.checkpoint_interval {
            // the group has provably moved a full checkpoint interval past
            // us: fetch state instead of waiting to catch up message by
            // message
            self.request_state(seq, digest);
            return;
        }
        if seq <= self.last_executed && seq > self.log.low() {
            self.log.stabilize(seq);
            self.obs.event(
                "bft.checkpoint_stable",
                &[
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(seq.0)),
                ],
            );
            if self.is_primary() {
                self.drain_backlog();
            }
        }
    }

    fn request_state(&mut self, seq: SeqNo, _digest: Digest) {
        if self.fetching.is_some_and(|s| s >= seq) {
            return;
        }
        self.fetching = Some(seq);
        self.obs.incr("bft.state_fetches", &self.obs_label());
        self.obs
            .span_begin("bft.state_transfer_us", u64::from(self.id.0));
        self.obs.event(
            "bft.state_fetch",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
            ],
        );
        let fetch = StateFetch {
            seq,
            replica: self.id,
        };
        self.outputs
            .push(Output::ToAllReplicas(Message::StateFetch(fetch)));
    }

    fn on_state_fetch(&mut self, fetch: StateFetch) {
        let Some((seq, (digest, snapshot))) = self.log.latest_own_checkpoint() else {
            return;
        };
        if seq < fetch.seq {
            return; // we cannot help yet
        }
        let data = StateData {
            seq,
            snapshot: snapshot.clone(),
            proof: vec![Checkpoint {
                seq,
                state_digest: *digest,
                replica: self.id,
            }],
            replica: self.id,
        };
        self.outputs
            .push(Output::ToReplica(fetch.replica, Message::StateData(data)));
    }

    /// Begins proactive recovery \[6\]: the replica assumes its application
    /// state may have been silently corrupted by an undetected intrusion,
    /// discards trust in it, and restores a snapshot proved by its peers.
    /// (The paper's §3.2 notes Castro–Liskov keeps faulty replicas "in the
    /// system until they are proactively recovered" — this is that path.)
    pub fn start_recovery(&mut self) {
        self.recovering = true;
        self.obs.incr("bft.recoveries", &self.obs_label());
        self.obs
            .span_begin("bft.state_transfer_us", u64::from(self.id.0));
        self.fetching = Some(SeqNo(self.log.low().0.max(1)));
        self.state_offers.clear();
        self.outputs
            .push(Output::ToAllReplicas(Message::StateFetch(StateFetch {
                seq: self.log.low(),
                replica: self.id,
            })));
    }

    /// True while a proactive recovery is in flight.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Begins replacement onboarding: a fresh (empty-state) replica
    /// admitted into a running group stays quiescent — processing only
    /// checkpoint and state-transfer traffic — until a trusted transfer
    /// lands it at the group's current state; it then adopts the (f+1)-th
    /// highest view observed from peers and resumes normal participation.
    /// The admission barrier ([`StateMachine::is_barrier`]) guarantees a
    /// checkpoint quorum exists at the joiner's admission point, even when
    /// the group is still near genesis.
    pub fn begin_onboarding(&mut self) {
        self.joining = true;
        self.recovering = true;
        self.obs.incr("bft.onboardings", &self.obs_label());
        self.obs
            .span_begin("bft.state_transfer_us", u64::from(self.id.0));
        self.fetching = Some(SeqNo(self.log.low().0.max(1)));
        self.state_offers.clear();
        self.outputs
            .push(Output::ToAllReplicas(Message::StateFetch(StateFetch {
                seq: self.log.low(),
                replica: self.id,
            })));
    }

    /// True while replacement onboarding is in flight.
    pub fn is_joining(&self) -> bool {
        self.joining
    }

    fn note_peer_view(&mut self, sender: ReplicaId, view: View) {
        if sender.0 >= self.config.n as u32 {
            return;
        }
        let entry = self.peer_views.entry(sender).or_insert(0);
        *entry = (*entry).max(view.0);
    }

    fn on_state_data(&mut self, data: StateData) {
        if self.fetching.is_none() {
            return;
        }
        if !self.recovering && data.seq <= self.last_executed {
            return;
        }
        if self.recovering && data.seq < self.last_executed {
            // too old to replace our claimed execution point: recovery
            // completes at the next checkpoint boundary (as in PBFT) —
            // `maybe_stabilize` re-issues the fetch when one stabilizes
            return;
        }
        // trust conditions (either suffices):
        //  (a) a 2f+1 checkpoint-vote quorum for the snapshot digest, or
        //  (b) f+1 distinct replicas offering byte-identical snapshots —
        //      at least one of them is correct
        let digest = snapshot_digest(&data.snapshot);
        // an offer is an implicit checkpoint attestation by its
        // envelope-verified sender; absorbing it as a vote keeps a
        // checkpoint certificate assemblable for a stable seq reached via
        // state transfer (the embedded proof field is NOT absorbed — its
        // entries carry no per-entry authentication at this layer)
        self.log.add_checkpoint(&Checkpoint {
            seq: data.seq,
            state_digest: digest,
            replica: data.replica,
        });
        let offers = self.state_offers.entry((data.seq, digest)).or_default();
        offers.insert(data.replica);
        let trusted = self.log.checkpoint_votes(data.seq, digest) >= self.config.quorum()
            || offers.len() > self.config.f;
        if !trusted {
            return;
        }
        // the payload is a correct replica's bytes (trust implies at least
        // one honest attester), so a decode failure means corruption below
        // the trust rules — refuse rather than restore garbage
        let Ok((app_snapshot, reply_cache)) = decode_transfer_payload(&data.snapshot) else {
            return;
        };
        self.app.restore(&app_snapshot);
        if self.joining {
            self.joining = false;
            // adopt the (f+1)-th highest view observed while quiescent:
            // at least one correct replica vouches for it
            let mut views: Vec<u64> = self.peer_views.values().copied().collect();
            views.sort_unstable_by(|a, b| b.cmp(a));
            if let Some(v) = views.get(self.config.f) {
                self.view = self.view.max(View(*v));
            }
            self.peer_views.clear();
            self.obs.event(
                "bft.onboarded",
                &[
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(data.seq.0)),
                    ("view", LabelValue::U64(self.view.0)),
                ],
            );
        }
        // rebuild the duplicate-suppression table from the transferred
        // cache; view/replica are local presentation fields on resend
        self.client_table.clear();
        for (client, floor, replies) in reply_cache {
            let mut record = ClientRecord {
                replies: BTreeMap::new(),
                floor,
            };
            for (timestamp, result) in replies {
                let reply = Reply {
                    view: self.view,
                    timestamp,
                    client,
                    replica: self.id,
                    result,
                };
                record.replies.insert(timestamp, reply);
            }
            self.client_table.insert(client, record);
        }
        self.last_executed = data.seq;
        self.next_seq = self.next_seq.max(data.seq);
        self.log.stabilize(data.seq);
        // own the restored checkpoint: retain the snapshot for serving
        // later transfers and vote for it so the stable certificate
        // survives garbage collection
        self.log
            .store_own_checkpoint(data.seq, digest, data.snapshot.clone());
        let own = Checkpoint {
            seq: data.seq,
            state_digest: digest,
            replica: self.id,
        };
        self.log.add_checkpoint(&own);
        self.outputs
            .push(Output::ToAllReplicas(Message::Checkpoint(own)));
        self.fetching = None;
        self.state_offers.clear();
        self.recovering = false;
        self.pending.clear();
        // rejoin normal operation: any lone view-change attempt we started
        // while stranded is abandoned with our stale state
        self.in_view_change = false;
        self.view_change_attempts = 0;
        let labels = self.obs_label();
        self.obs
            .span_end("bft.state_transfer_us", u64::from(self.id.0), &labels);
        self.obs.event(
            "bft.state_transferred",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(data.seq.0)),
            ],
        );
        self.outputs.push(Output::StateTransferred(data.seq));
    }

    // ---------------------------------------------------------- view change

    /// Handles a view-change timer expiration.
    pub fn on_view_timeout(&mut self, epoch: u64) {
        if epoch != self.timer_epoch || self.pending.is_empty() {
            return;
        }
        // A commit certificate beyond our next execution slot proves the
        // group is live and ordered past us: we crashed or were partitioned,
        // and the missing entries will never be retransmitted. A view change
        // cannot fill that gap — the primary is fine, *we* are the straggler
        // — and nobody would join it, so cascading one per timeout floods
        // the group forever. Go quiet (no timer re-arm) and re-announce a
        // state fetch; checkpoint traffic completes the transfer as soon as
        // a fresh-enough stable checkpoint exists.
        if self.log.committed_beyond(self.last_executed, &self.config) {
            self.fetching = None;
            self.request_state(SeqNo(self.last_executed.0 + 1), Digest::default());
            return;
        }
        self.start_view_change(View(self.view.0 + 1 + self.view_change_attempts as u64));
    }

    fn start_view_change(&mut self, target: View) {
        self.in_view_change = true;
        self.view_change_attempts += 1;
        self.obs.incr("bft.view_changes", &self.obs_label());
        self.obs
            .span_begin("bft.view_change_us", u64::from(self.id.0));
        self.obs.event(
            "bft.view_change",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("target_view", LabelValue::U64(target.0)),
                (
                    "attempt",
                    LabelValue::U64(u64::from(self.view_change_attempts)),
                ),
            ],
        );
        let vc = ViewChange {
            new_view: target,
            stable_seq: self.log.low(),
            // the real f+1 checkpoint certificate proving stable_seq; at
            // genesis (stable_seq 0) there is no checkpoint and nothing to
            // prove, so the certificate is empty
            checkpoint_proof: self.log.stable_certificate(self.config.f + 1),
            prepared: self.log.prepared_proofs(&self.config),
            replica: self.id,
        };
        self.outputs
            .push(Output::ToAllReplicas(Message::ViewChange(vc.clone())));
        self.collect_view_change(vc);
        self.arm_timer(); // cascade to the next view if this one stalls
    }

    fn on_view_change(&mut self, sender: ReplicaId, vc: ViewChange) {
        if sender != vc.replica || vc.new_view <= self.view {
            return;
        }
        if !validate_view_change(&vc, &self.config) {
            return;
        }
        self.collect_view_change(vc.clone());
        // liveness rule: if f+1 replicas are already in a higher view, join
        let target = vc.new_view;
        let count = self.view_changes.get(&target).map(|m| m.len()).unwrap_or(0);
        if count > self.config.f && !self.in_view_change {
            self.start_view_change(target);
        }
    }

    fn collect_view_change(&mut self, vc: ViewChange) {
        let target = vc.new_view;
        self.view_changes
            .entry(target)
            .or_default()
            .insert(vc.replica, vc);
        let set = &self.view_changes[&target];
        if target > self.view
            && set.len() >= self.config.quorum()
            && self.config.primary_of(target) == self.id
        {
            let view_changes: Vec<ViewChange> = set.values().cloned().collect();
            let pre_prepares = compute_new_view_pre_prepares(&view_changes, target);
            let nv = NewView {
                view: target,
                view_changes,
                pre_prepares: pre_prepares.clone(),
                primary: self.id,
            };
            self.outputs
                .push(Output::ToAllReplicas(Message::NewView(nv)));
            self.enter_view(target, pre_prepares);
        }
    }

    fn on_new_view(&mut self, sender: ReplicaId, nv: NewView) {
        if nv.view <= self.view
            || sender != nv.primary
            || self.config.primary_of(nv.view) != nv.primary
        {
            return;
        }
        if nv.view_changes.len() < self.config.quorum() {
            return;
        }
        for vc in &nv.view_changes {
            if vc.new_view != nv.view || !validate_view_change(vc, &self.config) {
                return;
            }
        }
        // recompute the pre-prepare set; a Byzantine primary cannot smuggle
        // in a different order
        let expected = compute_new_view_pre_prepares(&nv.view_changes, nv.view);
        if expected.len() != nv.pre_prepares.len()
            || expected
                .iter()
                .zip(&nv.pre_prepares)
                .any(|(a, b)| a.seq != b.seq || a.digest != b.digest)
        {
            return;
        }
        self.enter_view(nv.view, nv.pre_prepares);
    }

    fn enter_view(&mut self, view: View, pre_prepares: Vec<PrePrepare>) {
        self.view = view;
        self.in_view_change = false;
        self.view_change_attempts = 0;
        self.view_changes.retain(|v, _| *v > view);
        let labels = self.obs_label();
        self.obs
            .span_end("bft.view_change_us", u64::from(self.id.0), &labels);
        self.obs.event(
            "bft.view_entered",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("view", LabelValue::U64(view.0)),
            ],
        );
        self.outputs.push(Output::EnteredView(view));
        // ordering state is per-view: rebuilt from every request carried
        // inside the re-issued batches
        self.ordered = pre_prepares
            .iter()
            .flat_map(|pp| pp.batch.requests.iter().map(|r| r.digest()))
            .collect();
        // carried requests are (re-)assigned sequence numbers, so they
        // advance the FIFO admission floor; parked requests from the old
        // view are dropped — client retransmission re-delivers them
        self.reorder.clear();
        for pp in &pre_prepares {
            for request in &pp.batch.requests {
                let floor = self.admitted_ts.entry(request.client).or_insert(0);
                *floor = (*floor).max(request.timestamp);
            }
        }
        let mut max_seq = self.log.low();
        for pp in pre_prepares {
            max_seq = max_seq.max(pp.seq);
            let already_executed = pp.seq <= self.last_executed;
            let entry = self.log.entry(view, pp.seq);
            entry.pre_prepare = Some(pp.clone());
            if already_executed {
                // executed in a prior view: the flag stops local
                // re-execution, but agreement must still run so a peer
                // that missed the commit can assemble a quorum
                entry.executed = true;
            }
            let prepare = Prepare {
                view,
                seq: pp.seq,
                digest: pp.digest,
                replica: self.id,
            };
            self.log
                .entry(view, pp.seq)
                .prepares
                .insert(self.id, prepare);
            if self.id != self.config.primary_of(view) {
                self.outputs
                    .push(Output::ToAllReplicas(Message::Prepare(prepare)));
            }
            if !already_executed {
                for request in &pp.batch.requests {
                    self.pending.insert(request.digest());
                }
            }
        }
        self.next_seq = max_seq.max(SeqNo(self.last_executed.0));
        if !self.pending.is_empty() {
            self.arm_timer();
        }
        if self.is_primary() {
            self.drain_backlog();
        }
    }
}

/// Structural validation of a view-change message.
fn validate_view_change(vc: &ViewChange, config: &GroupConfig) -> bool {
    // a claimed stable checkpoint must carry its certificate: f+1 distinct
    // in-group replicas checkpointing the same digest at stable_seq (at
    // least one is correct, so the watermark claim is real). Genesis
    // (stable_seq 0) is exempt — there is no checkpoint to prove.
    if vc.stable_seq.0 > 0 {
        let Some(digest) = vc.checkpoint_proof.first().map(|c| c.state_digest) else {
            return false;
        };
        let attesters = vc
            .checkpoint_proof
            .iter()
            .filter(|c| {
                c.seq == vc.stable_seq
                    && c.state_digest == digest
                    && (c.replica.0 as usize) < config.n
            })
            .map(|c| c.replica)
            .collect::<BTreeSet<_>>()
            .len();
        if attesters < config.f + 1 {
            return false;
        }
    }
    for proof in &vc.prepared {
        if proof.pre_prepare.digest != proof.pre_prepare.batch.digest() {
            return false;
        }
        let matching = proof
            .prepares
            .iter()
            .filter(|p| {
                p.digest == proof.pre_prepare.digest
                    && p.view == proof.pre_prepare.view
                    && p.seq == proof.pre_prepare.seq
            })
            .map(|p| p.replica)
            .collect::<BTreeSet<_>>()
            .len();
        if matching < 2 * config.f {
            return false;
        }
    }
    true
}

/// Deterministically derives the new view's re-issued pre-prepares from a
/// set of view changes (used by the primary to build NEW-VIEW and by
/// backups to validate it).
fn compute_new_view_pre_prepares(view_changes: &[ViewChange], view: View) -> Vec<PrePrepare> {
    let min_s = view_changes
        .iter()
        .map(|vc| vc.stable_seq)
        .max()
        .unwrap_or(SeqNo(0));
    // for each seq above min_s, the prepared proof from the highest view wins
    let mut best: BTreeMap<SeqNo, &PreparedProof> = BTreeMap::new();
    for vc in view_changes {
        for proof in &vc.prepared {
            let seq = proof.pre_prepare.seq;
            if seq <= min_s {
                continue;
            }
            let replace = best
                .get(&seq)
                .map(|cur| proof.pre_prepare.view > cur.pre_prepare.view)
                .unwrap_or(true);
            if replace {
                best.insert(seq, proof);
            }
        }
    }
    let max_s = best.keys().next_back().copied().unwrap_or(min_s);
    let mut out = Vec::new();
    for seq_raw in (min_s.0 + 1)..=max_s.0 {
        let seq = SeqNo(seq_raw);
        let pp = match best.get(&seq) {
            // the prepared batch is carried over *whole*: a view change
            // interrupting a partially-agreed batch re-proposes every
            // request in it, in the same order, under the same digest
            Some(proof) => PrePrepare {
                view,
                seq,
                digest: proof.pre_prepare.digest,
                batch: proof.pre_prepare.batch.clone(),
            },
            None => {
                // gap: the null (empty) batch
                let batch = Batch::default();
                PrePrepare {
                    view,
                    seq,
                    digest: batch.digest(),
                    batch,
                }
            }
        };
        out.push(pp);
    }
    out
}

/// Canonical digest rule binding checkpoints to snapshots: replicas
/// checkpoint `H("bft-snapshot" ‖ snapshot)` so state transfer can verify a
/// snapshot against checkpoint votes without re-executing. The digested
/// bytes are the full transfer payload (application snapshot plus reply
/// cache), so the duplicate-suppression table is covered by agreement too.
pub fn snapshot_digest(snapshot: &[u8]) -> Digest {
    Digest::of_parts(&[b"bft-snapshot", snapshot])
}

/// Bound on decoded table lengths (hostile-length defence).
const MAX_TABLE: u32 = 1 << 16;

/// Encodes the state-transfer payload: the application snapshot plus the
/// per-client reply cache, so a transferred replica keeps suppressing
/// duplicates and resending cached replies. Only order-determined fields
/// (client, floor, timestamp, result) are encoded — `Reply::view` and
/// `Reply::replica` vary across correct replicas and would break
/// byte-identical checkpoints.
fn encode_transfer_payload(
    app_snapshot: &[u8],
    table: &BTreeMap<ClientId, ClientRecord>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(app_snapshot);
    w.u32(table.len() as u32);
    for (client, record) in table {
        w.u64(client.0);
        w.u64(record.floor);
        w.u32(record.replies.len() as u32);
        for (timestamp, reply) in &record.replies {
            w.u64(*timestamp);
            w.bytes(&reply.result);
        }
    }
    w.finish()
}

/// One decoded reply-cache record: (client, floor, [(timestamp, result)]).
type DecodedCache = Vec<(ClientId, u64, Vec<(u64, Vec<u8>)>)>;

/// Decodes a transfer payload into the application snapshot and the raw
/// reply-cache records (the restoring replica rebuilds [`Reply`] values
/// with its own id and view).
fn decode_transfer_payload(bytes: &[u8]) -> Result<(Vec<u8>, DecodedCache), WireError> {
    let mut r = Reader::new(bytes);
    let app_snapshot = r.bytes()?.to_vec();
    let n_clients = r.u32()?;
    if n_clients > MAX_TABLE {
        return Err(WireError);
    }
    let mut cache = Vec::with_capacity(n_clients.min(64) as usize);
    for _ in 0..n_clients {
        let client = ClientId(r.u64()?);
        let floor = r.u64()?;
        let n_replies = r.u32()?;
        if n_replies > MAX_TABLE {
            return Err(WireError);
        }
        let mut replies = Vec::with_capacity(n_replies.min(64) as usize);
        for _ in 0..n_replies {
            let timestamp = r.u64()?;
            let result = r.bytes()?.to_vec();
            replies.push((timestamp, result));
        }
        cache.push((client, floor, replies));
    }
    r.expect_end()?;
    Ok((app_snapshot, cache))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CounterMachine;

    fn replica(id: u32) -> Replica<CounterMachine> {
        Replica::new(GroupConfig::for_f(1), ReplicaId(id), CounterMachine::new())
    }

    fn request(ts: u64, delta: i64) -> ClientRequest {
        ClientRequest {
            client: ClientId(1),
            timestamp: ts,
            operation: CounterMachine::op(delta),
        }
    }

    #[test]
    fn transfer_payload_round_trips() {
        let mut table = BTreeMap::new();
        table.insert(
            ClientId(7),
            ClientRecord {
                floor: 3,
                replies: BTreeMap::from([(
                    4u64,
                    Reply {
                        view: View(1),
                        timestamp: 4,
                        client: ClientId(7),
                        replica: ReplicaId(0),
                        result: vec![9, 9],
                    },
                )]),
            },
        );
        let payload = encode_transfer_payload(b"snapshot-bytes", &table);
        let (snapshot, cache) = decode_transfer_payload(&payload).unwrap();
        assert_eq!(snapshot, b"snapshot-bytes");
        assert_eq!(cache, vec![(ClientId(7), 3, vec![(4, vec![9, 9])])]);

        // hostile inputs surface WireError, never a panic
        assert!(decode_transfer_payload(&payload[..payload.len() - 1]).is_err());
        assert!(decode_transfer_payload(&[0xFF; 6]).is_err());
    }

    /// Drives a full in-memory group of 4 replicas by relaying outputs.
    struct Group {
        replicas: Vec<Replica<CounterMachine>>,
        replies: Vec<Reply>,
        executed: Vec<(u32, SeqNo, Vec<u8>)>,
    }

    impl Group {
        fn new() -> Group {
            Group {
                replicas: (0..4).map(replica).collect(),
                replies: Vec::new(),
                executed: Vec::new(),
            }
        }

        /// Delivers every queued output until quiescent. `mute` crashes
        /// those replica ids: they neither send nor receive.
        fn pump(&mut self, mute: &[u32]) {
            loop {
                let mut moved = false;
                for i in 0..self.replicas.len() {
                    let outputs = self.replicas[i].take_outputs();
                    let from = ReplicaId(i as u32);
                    for out in outputs {
                        if mute.contains(&(i as u32)) {
                            continue;
                        }
                        moved = true;
                        match out {
                            Output::ToReplica(to, msg) => {
                                if !mute.contains(&to.0) {
                                    self.replicas[to.0 as usize].on_message(from, msg);
                                }
                            }
                            Output::ToAllReplicas(msg) => {
                                for j in 0..self.replicas.len() {
                                    if j != i && !mute.contains(&(j as u32)) {
                                        let m = msg.clone();
                                        self.replicas[j].on_message(from, m);
                                    }
                                }
                            }
                            Output::ToClient(_, Message::Reply(r)) => self.replies.push(r),
                            Output::ToClient(_, _) => {}
                            Output::Executed { seq, result, .. } => {
                                self.executed.push((i as u32, seq, result));
                            }
                            Output::StartViewTimer { .. }
                            | Output::EnteredView(_)
                            | Output::StateTransferred(_) => {}
                        }
                    }
                }
                if !moved {
                    break;
                }
            }
        }
    }

    fn group_with(cfg: GroupConfig) -> Group {
        Group {
            replicas: (0..cfg.n as u32)
                .map(|i| Replica::new(cfg.clone(), ReplicaId(i), CounterMachine::new()))
                .collect(),
            replies: Vec::new(),
            executed: Vec::new(),
        }
    }

    #[test]
    fn normal_case_executes_on_all_replicas() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.last_executed(), SeqNo(1));
            assert_eq!(r.app().total(), 5);
        }
        // every replica replied to the client
        assert_eq!(g.replies.len(), 4);
        assert!(g.replies.iter().all(|r| r.result == 5i64.to_le_bytes()));
    }

    #[test]
    fn sequential_requests_execute_in_order() {
        let mut g = Group::new();
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 10));
            g.pump(&[]);
        }
        for r in &g.replicas {
            assert_eq!(r.last_executed(), SeqNo(5));
            assert_eq!(r.app().total(), 50);
        }
    }

    #[test]
    fn duplicate_request_resends_cached_reply() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        let before = g.replies.len();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        assert_eq!(g.replies.len(), before + 1, "cached reply resent");
        assert_eq!(g.replicas[0].app().total(), 5, "no re-execution");
    }

    #[test]
    fn backup_relays_request_to_primary() {
        let mut g = Group::new();
        g.replicas[2].on_request(request(1, 7));
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.app().total(), 7);
        }
    }

    #[test]
    fn one_crashed_backup_does_not_block() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 3));
        g.pump(&[3]); // replica 3 silent
        for r in &g.replicas[..3] {
            assert_eq!(r.app().total(), 3);
        }
        assert_eq!(g.replicas[3].app().total(), 0);
    }

    #[test]
    fn view_timeout_triggers_view_change_and_recovery() {
        let mut g = Group::new();
        // primary (0) is crashed: backups receive the request, relay it,
        // nothing happens, timers expire
        for i in 1..4 {
            g.replicas[i].on_request(request(1, 9));
        }
        g.pump(&[0]);
        assert_eq!(g.replicas[1].app().total(), 0, "stuck without primary");
        // timers fire on the three live backups
        for i in 1..4 {
            let epoch = g.replicas[i].timer_epoch;
            g.replicas[i].on_view_timeout(epoch);
        }
        g.pump(&[0]);
        for r in &g.replicas[1..4] {
            assert_eq!(r.view(), View(1), "moved to view 1");
        }
        // re-send the request to the new primary (client retransmission)
        g.replicas[1].on_request(request(1, 9));
        g.pump(&[0]);
        for r in &g.replicas[1..4] {
            assert_eq!(r.app().total(), 9, "executed in the new view");
        }
    }

    #[test]
    fn prepared_request_survives_view_change() {
        let mut g = Group::new();
        // primary 0 pre-prepares then crashes; backups exchange prepares
        // but all COMMITs are dropped, so the request is prepared-not-
        // committed when the view change starts
        g.replicas[0].on_request(request(1, 4));
        let outs = g.replicas[0].take_outputs();
        for out in outs {
            if let Output::ToAllReplicas(Message::PrePrepare(pp)) = out {
                for j in 1..4 {
                    g.replicas[j].on_message(ReplicaId(0), Message::PrePrepare(pp.clone()));
                }
            }
        }
        // deliver prepares between backups, drop everything else
        let mut prepares = Vec::new();
        for i in 1..4 {
            for out in g.replicas[i].take_outputs() {
                if let Output::ToAllReplicas(Message::Prepare(p)) = out {
                    prepares.push((i, p));
                }
            }
        }
        for (from, p) in prepares {
            for j in 1..4 {
                if j != from {
                    g.replicas[j].on_message(ReplicaId(from as u32), Message::Prepare(p));
                }
            }
        }
        // drop the resulting commits
        for i in 1..4 {
            let _ = g.replicas[i].take_outputs();
        }
        assert_eq!(g.replicas[1].app().total(), 0, "not yet executed");
        // view change
        for i in 1..4 {
            let epoch = g.replicas[i].timer_epoch;
            g.replicas[i].on_view_timeout(epoch);
        }
        g.pump(&[0]);
        // the prepared request must be re-executed in view 1 without the
        // client retransmitting
        for r in &g.replicas[1..4] {
            assert_eq!(r.view(), View(1));
            assert_eq!(r.app().total(), 4, "prepared request carried over");
        }
    }

    #[test]
    fn pipeline_depth_bounds_sequences_in_flight() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.max_batch = 1;
        cfg.pipeline_depth = 2;
        let mut g = group_with(cfg);
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 1));
        }
        // with nothing delivered yet, only two sequence numbers may be
        // proposed; the rest wait in the backlog
        assert!(g.replicas[0].log().entry_ref(View(0), SeqNo(2)).is_some());
        assert!(g.replicas[0].log().entry_ref(View(0), SeqNo(3)).is_none());
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(
                r.last_executed(),
                SeqNo(5),
                "backlog drained as slots freed"
            );
            assert_eq!(r.app().total(), 5);
        }
    }

    #[test]
    fn full_pipeline_accumulates_full_batches() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.max_batch = 4;
        cfg.pipeline_depth = 1;
        let mut g = group_with(cfg);
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 1));
        }
        // the single slot was taken by ts=1 alone (open slot ⇒ immediate
        // flush); ts=2..=5 accumulate while it is in flight
        assert!(g.replicas[0].log().entry_ref(View(0), SeqNo(2)).is_none());
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.app().total(), 5);
            assert_eq!(
                r.last_executed(),
                SeqNo(2),
                "five requests agreed as two batches"
            );
        }
        assert_eq!(g.replies.len(), 5 * 4, "one reply per request per replica");
    }

    #[test]
    fn max_batch_bytes_splits_oversized_batches() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.max_batch = 8;
        cfg.max_batch_bytes = 12; // each CounterMachine op is 8 bytes
        cfg.pipeline_depth = 1;
        let mut g = group_with(cfg);
        for ts in 1..=4 {
            g.replicas[0].on_request(request(ts, 1));
        }
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.app().total(), 4);
            assert_eq!(
                r.last_executed(),
                SeqNo(4),
                "byte bound keeps every batch at one op"
            );
        }
    }

    #[test]
    fn out_of_order_timestamps_both_execute() {
        let mut g = Group::new();
        // ts=2 reaches the primary before ts=1 (network reorder under a
        // pipelining client): both must execute, in arrival order
        g.replicas[0].on_request(request(2, 10));
        g.replicas[0].on_request(request(1, 7));
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.app().total(), 17);
        }
        assert_eq!(g.replies.iter().filter(|r| r.timestamp == 1).count(), 4);
        assert_eq!(g.replies.iter().filter(|r| r.timestamp == 2).count(), 4);
    }

    #[test]
    fn batch_interrupted_by_view_change_reproposed_intact() {
        let mut g = Group::new();
        // primary 0 proposes a batch of three requests, then crashes; the
        // backups prepare it but every COMMIT is dropped, so the batch is
        // prepared-not-committed when the view change starts
        let pp = pre_prepare_of(0, 1, vec![request(1, 5), request(2, 6), request(3, 7)]);
        for j in 1..4 {
            g.replicas[j].on_message(ReplicaId(0), Message::PrePrepare(pp.clone()));
        }
        let mut prepares = Vec::new();
        for i in 1..4 {
            for out in g.replicas[i].take_outputs() {
                if let Output::ToAllReplicas(Message::Prepare(p)) = out {
                    prepares.push((i, p));
                }
            }
        }
        for (from, p) in prepares {
            for j in 1..4 {
                if j != from {
                    g.replicas[j].on_message(ReplicaId(from as u32), Message::Prepare(p));
                }
            }
        }
        for i in 1..4 {
            let _ = g.replicas[i].take_outputs(); // drop the commits
        }
        assert_eq!(g.replicas[1].app().total(), 0, "not yet executed");
        for i in 1..4 {
            let epoch = g.replicas[i].timer_epoch;
            g.replicas[i].on_view_timeout(epoch);
        }
        g.pump(&[0]);
        // the whole batch carried over: every request executed exactly
        // once, in the original order, with no client retransmission
        for r in &g.replicas[1..4] {
            assert_eq!(r.view(), View(1));
            assert_eq!(r.last_executed(), SeqNo(1));
            assert_eq!(r.app().total(), 18, "no request lost");
        }
        for ts in 1..=3u64 {
            assert_eq!(
                g.replies.iter().filter(|r| r.timestamp == ts).count(),
                3,
                "one reply per live replica for ts {ts}, none duplicated"
            );
        }
    }

    #[test]
    fn batches_straddling_checkpoint_boundary_gc_correctly() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.max_batch = 2;
        cfg.pipeline_depth = 1;
        let mut g = group_with(cfg);
        // 36 requests agreed mostly as two-request batches: the sequence
        // numbers cross the checkpoints at 16 and beyond
        let mut ts = 0;
        for _round in 0..9 {
            for _ in 0..4 {
                ts += 1;
                g.replicas[0].on_request(request(ts, 1));
            }
            g.pump(&[]);
        }
        for r in &g.replicas {
            assert_eq!(r.app().total(), 36, "every request executed");
            assert!(
                r.log().low() >= SeqNo(16),
                "stable checkpoint advanced past batched entries"
            );
            let live = r.log().len() as u64;
            let above_checkpoint = r.last_executed().0 - r.log().low().0;
            assert!(
                live <= above_checkpoint,
                "entries at or below the checkpoint garbage-collected \
                 ({live} live, low {:?}, executed {:?})",
                r.log().low(),
                r.last_executed()
            );
        }
        for t in 1..=36u64 {
            assert_eq!(
                g.replies.iter().filter(|r| r.timestamp == t).count(),
                4,
                "ts {t} executed exactly once group-wide"
            );
        }
    }

    #[test]
    fn checkpoints_advance_watermarks() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 1));
            g.pump(&[]);
        }
        for r in &g.replicas {
            assert_eq!(r.log().low(), SeqNo(16), "stable checkpoint at 16");
        }
    }

    fn pre_prepare_of(view: u64, seq: u64, requests: Vec<ClientRequest>) -> PrePrepare {
        let batch = Batch { requests };
        PrePrepare {
            view: View(view),
            seq: SeqNo(seq),
            digest: batch.digest(),
            batch,
        }
    }

    #[test]
    fn equivocating_primary_is_refused() {
        let mut r1 = replica(1);
        let pp_a = pre_prepare_of(0, 1, vec![request(1, 1)]);
        let pp_b = pre_prepare_of(0, 1, vec![request(1, 2)]);
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp_a.clone()));
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp_b));
        let entry = r1.log().entry_ref(View(0), SeqNo(1)).unwrap();
        assert_eq!(
            entry.pre_prepare.as_ref().unwrap().digest,
            pp_a.digest,
            "first accepted, conflicting refused"
        );
    }

    #[test]
    fn pre_prepare_from_non_primary_ignored() {
        let mut r1 = replica(1);
        let pp = pre_prepare_of(0, 1, vec![request(1, 1)]);
        r1.on_message(ReplicaId(2), Message::PrePrepare(pp)); // 2 is not primary of view 0
        assert!(r1.log().entry_ref(View(0), SeqNo(1)).is_none());
    }

    #[test]
    fn mismatched_batch_digest_refused_and_audited() {
        let mut r1 = replica(1);
        let (obs, _clock) = Obs::manual();
        r1.set_obs(obs.clone());
        // the digest claims a different batch than the one embedded
        let mut pp = pre_prepare_of(0, 1, vec![request(1, 1)]);
        pp.digest = Digest::of(b"lie");
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp));
        assert!(r1.log().entry_ref(View(0), SeqNo(1)).is_none(), "refused");
        let labels = [("replica", LabelValue::U64(1))];
        assert_eq!(obs.counter_value("bft.bad_batches", &labels), 1);
        let audited = obs
            .with_flight(|f| f.events().any(|e| e.kind == "bft.bad_batch_digest"))
            .unwrap_or(false);
        assert!(audited, "contradiction lands on the flight record");
        // an empty batch from a live primary is refused the same way
        let null = pre_prepare_of(0, 1, Vec::new());
        r1.on_message(ReplicaId(0), Message::PrePrepare(null));
        assert!(r1.log().entry_ref(View(0), SeqNo(1)).is_none());
        assert_eq!(obs.counter_value("bft.bad_batches", &labels), 2);
    }

    #[test]
    fn spoofed_prepare_sender_ignored() {
        let mut r1 = replica(1);
        let req = request(1, 1);
        let prepare = Prepare {
            view: View(0),
            seq: SeqNo(1),
            digest: req.digest(),
            replica: ReplicaId(3),
        };
        // claimed sender 2 != embedded replica 3
        r1.on_message(ReplicaId(2), Message::Prepare(prepare));
        assert!(r1
            .log()
            .entry_ref(View(0), SeqNo(1))
            .map_or(true, |e| e.prepares.is_empty()));
    }

    #[test]
    fn stale_view_timer_is_ignored() {
        let mut g = Group::new();
        g.replicas[1].on_request(request(1, 1));
        let stale = g.replicas[1].timer_epoch;
        g.pump(&[]); // executes; timer epoch advanced / pending cleared
        g.replicas[1].on_view_timeout(stale);
        assert!(!g.replicas[1].in_view_change(), "stale epoch ignored");
        assert_eq!(g.replicas[1].view(), View(0));
    }

    #[test]
    fn proactive_recovery_restores_clean_state() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 3));
            g.pump(&[]);
        }
        // silent corruption of replica 2's application state
        g.replicas[2]
            .app_mut()
            .restore(&CounterMachine::new().snapshot());
        assert_ne!(g.replicas[2].app().digest(), g.replicas[0].app().digest());
        g.replicas[2].start_recovery();
        assert!(g.replicas[2].is_recovering());
        g.pump(&[]);
        // the stable checkpoint at 16 is older than replica 2's execution
        // point (17): recovery waits for the NEXT checkpoint
        for ts in 18..=33 {
            g.replicas[0].on_request(request(ts, 3));
            g.pump(&[]);
        }
        assert!(!g.replicas[2].is_recovering(), "recovered at checkpoint 32");
        assert_eq!(
            g.replicas[2].app().digest(),
            g.replicas[0].app().digest(),
            "clean state restored from peers"
        );
    }

    #[test]
    fn straggler_fetches_state_instead_of_cascading_view_changes() {
        let mut g = Group::new();
        // replica 3 misses requests 1..=5 (crashed / partitioned)
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        // it rejoins and observes request 6 committed at seq 6, which it
        // cannot execute across the gap left by 1..=5
        g.replicas[0].on_request(request(6, 2));
        g.pump(&[]);
        assert_eq!(g.replicas[3].last_executed(), SeqNo(0), "stuck behind gap");
        // its view timer expires: a lone view change would never gather
        // joiners (the primary is live), so it must go quiet and ask for
        // state instead of flooding the group once per timeout
        let epoch = g.replicas[3].timer_epoch;
        g.replicas[3].on_view_timeout(epoch);
        assert!(!g.replicas[3].in_view_change(), "no lone view change");
        let outs = g.replicas[3].take_outputs();
        assert!(
            outs.iter()
                .any(|o| matches!(o, Output::ToAllReplicas(Message::StateFetch(_)))),
            "state fetch announced"
        );
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                Output::ToAllReplicas(Message::ViewChange(_)) | Output::StartViewTimer { .. }
            )),
            "no view-change flood, no timer re-arm"
        );
    }

    #[test]
    fn byzantine_new_view_is_rejected() {
        // the new primary (replica 1) sends a NEW-VIEW whose re-issued
        // pre-prepares do not match the view-change set: backups recompute
        // and refuse to enter the view
        let mut g = Group::new();
        // build a legitimate 2f+1 view-change set for view 1
        let vcs: Vec<ViewChange> = (1..4)
            .map(|i| ViewChange {
                new_view: View(1),
                stable_seq: SeqNo(0),
                checkpoint_proof: Vec::new(),
                prepared: Vec::new(),
                replica: ReplicaId(i),
            })
            .collect();
        // a forged pre-prepare smuggled into the new view
        let forged = pre_prepare_of(1, 1, vec![request(1, 999_999)]);
        let nv = NewView {
            view: View(1),
            view_changes: vcs,
            pre_prepares: vec![forged],
            primary: ReplicaId(1),
        };
        g.replicas[2].on_message(ReplicaId(1), Message::NewView(nv));
        assert_eq!(
            g.replicas[2].view(),
            View(0),
            "backup recomputed the pre-prepare set and refused the forgery"
        );
    }

    #[test]
    fn lagging_replica_catches_up_via_state_transfer() {
        let mut g = Group::new();
        // run 17 requests with replica 3 crashed (misses everything)
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        assert_eq!(g.replicas[3].app().total(), 0);
        // replica 3 comes back and hears checkpoint messages from others:
        // replay checkpoint votes for seq 16 from replicas 0..2
        for i in 0..3u32 {
            let (seq, (digest, _)) = {
                let log = g.replicas[i as usize].log();
                let (s, d) = log.latest_own_checkpoint().expect("checkpointed");
                (s, (d.0, ()))
            };
            let cp = Checkpoint {
                seq,
                state_digest: digest,
                replica: ReplicaId(i),
            };
            g.replicas[3].on_message(ReplicaId(i), Message::Checkpoint(cp));
        }
        g.pump(&[]);
        assert_eq!(g.replicas[3].last_executed(), SeqNo(16));
        assert_eq!(g.replicas[3].app().total(), 32, "restored state at seq 16");
    }

    /// Catches replica 3 up to the group's stable checkpoint by replaying
    /// peer checkpoint votes and pumping the resulting state transfer.
    fn transfer_state_to_replica_3(g: &mut Group) {
        for i in 0..3u32 {
            let (seq, digest) = {
                let log = g.replicas[i as usize].log();
                let (s, d) = log.latest_own_checkpoint().expect("checkpointed");
                (s, d.0)
            };
            let cp = Checkpoint {
                seq,
                state_digest: digest,
                replica: ReplicaId(i),
            };
            g.replicas[3].on_message(ReplicaId(i), Message::Checkpoint(cp));
        }
        g.pump(&[]);
    }

    #[test]
    fn transferred_replica_answers_duplicates_from_its_reply_cache() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        transfer_state_to_replica_3(&mut g);
        assert_eq!(g.replicas[3].last_executed(), SeqNo(16));
        // a duplicate of a timestamp executed BEFORE the transfer must be
        // answered from the transferred reply cache — not relayed, not
        // re-executed (the §10 regression: the table used to arrive empty)
        let total_before = g.replicas[3].app().total();
        g.replicas[3].on_request(request(16, 2));
        let outs = g.replicas[3].take_outputs();
        let cached = outs.iter().any(|o| {
            matches!(o, Output::ToClient(_, Message::Reply(r))
                if r.timestamp == 16 && r.result == 32i64.to_le_bytes())
        });
        assert!(cached, "cached reply resent from transferred table");
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, Output::ToReplica(_, Message::Request(_)))),
            "duplicate not relayed for re-ordering"
        );
        assert_eq!(g.replicas[3].app().total(), total_before, "no re-execution");
    }

    #[test]
    fn view_change_carries_a_real_checkpoint_certificate() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 1));
            g.pump(&[]);
        }
        // the primary goes dark with a request outstanding
        for i in 1..4 {
            g.replicas[i].on_request(request(18, 1));
        }
        g.pump(&[0]);
        let epoch = g.replicas[1].timer_epoch;
        g.replicas[1].on_view_timeout(epoch);
        let vc = g.replicas[1]
            .take_outputs()
            .into_iter()
            .find_map(|o| match o {
                Output::ToAllReplicas(Message::ViewChange(vc)) => Some(vc),
                _ => None,
            })
            .expect("view change started");
        assert_eq!(vc.stable_seq, SeqNo(16));
        assert!(
            vc.checkpoint_proof.len() >= 2,
            "f+1 checkpoint certificate attached, got {}",
            vc.checkpoint_proof.len()
        );
        assert!(vc.checkpoint_proof.iter().all(|c| c.seq == SeqNo(16)));
        let distinct: BTreeSet<ReplicaId> = vc.checkpoint_proof.iter().map(|c| c.replica).collect();
        assert!(distinct.len() >= 2, "distinct attesters");
        // and the certificate passes the receiver-side validation
        assert!(validate_view_change(&vc, &GroupConfig::for_f(1)));
    }

    #[test]
    fn unproven_stable_seq_claim_is_rejected() {
        let cfg = GroupConfig::for_f(1);
        // no certificate at all
        let bare = ViewChange {
            new_view: View(1),
            stable_seq: SeqNo(16),
            checkpoint_proof: Vec::new(),
            prepared: Vec::new(),
            replica: ReplicaId(3),
        };
        assert!(!validate_view_change(&bare, &cfg));
        // a certificate at the wrong seq
        let wrong_seq = ViewChange {
            checkpoint_proof: vec![
                Checkpoint {
                    seq: SeqNo(8),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(0),
                },
                Checkpoint {
                    seq: SeqNo(8),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(1),
                },
            ],
            ..bare.clone()
        };
        assert!(!validate_view_change(&wrong_seq, &cfg));
        // one attester repeated is not f+1 distinct replicas
        let repeated = ViewChange {
            checkpoint_proof: vec![
                Checkpoint {
                    seq: SeqNo(16),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(0),
                },
                Checkpoint {
                    seq: SeqNo(16),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(0),
                },
            ],
            ..bare.clone()
        };
        assert!(!validate_view_change(&repeated, &cfg));
        // out-of-group replica ids do not count
        let foreign = ViewChange {
            checkpoint_proof: vec![
                Checkpoint {
                    seq: SeqNo(16),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(7),
                },
                Checkpoint {
                    seq: SeqNo(16),
                    state_digest: Digest::of(b"s"),
                    replica: ReplicaId(9),
                },
            ],
            ..bare.clone()
        };
        assert!(!validate_view_change(&foreign, &cfg));
        // a receiving replica drops the unproven message entirely
        let mut r2 = replica(2);
        r2.on_message(ReplicaId(3), Message::ViewChange(bare.clone()));
        assert!(r2.view_changes.get(&View(1)).map_or(true, |m| m.is_empty()));
        // genesis claims need no certificate
        let genesis = ViewChange {
            stable_seq: SeqNo(0),
            ..bare
        };
        assert!(validate_view_change(&genesis, &cfg));
    }

    #[test]
    fn barrier_operation_forces_an_off_interval_checkpoint() {
        use crate::queue::{ElementId, QueueMachine, QueueOp};
        let queue = QueueMachine::new(1024, (0..4).map(ElementId));
        let mut r0 = Replica::new(GroupConfig::for_f(1), ReplicaId(0), queue);
        let req = ClientRequest {
            client: ClientId(1),
            timestamp: 1,
            operation: QueueOp::Join(ElementId(9)).encode(),
        };
        r0.on_request(req);
        let digest = r0
            .log()
            .entry_ref(View(0), SeqNo(1))
            .and_then(|e| e.pre_prepare.as_ref())
            .map(|pp| pp.digest)
            .expect("primary proposed the join");
        for i in 1..=2u32 {
            r0.on_message(
                ReplicaId(i),
                Message::Prepare(Prepare {
                    view: View(0),
                    seq: SeqNo(1),
                    digest,
                    replica: ReplicaId(i),
                }),
            );
        }
        for i in 1..=2u32 {
            r0.on_message(
                ReplicaId(i),
                Message::Commit(Commit {
                    view: View(0),
                    seq: SeqNo(1),
                    digest,
                    replica: ReplicaId(i),
                }),
            );
        }
        assert_eq!(r0.last_executed(), SeqNo(1));
        // seq 1 is far from the checkpoint interval (16), yet the Join
        // forced a checkpoint right at the admission barrier
        assert!(r0.log().own_checkpoint(SeqNo(1)).is_some());
        assert!(r0.take_outputs().iter().any(|o| {
            matches!(o, Output::ToAllReplicas(Message::Checkpoint(c)) if c.seq == SeqNo(1))
        }));
    }

    #[test]
    fn onboarding_replica_stays_quiescent_until_caught_up() {
        let mut g = Group::new();
        // exactly one checkpoint interval: the group head IS the stable
        // checkpoint, so the transferred joiner has no gap to re-order
        for ts in 1..=16 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        // slot 3 is replaced: a fresh, empty-state instance onboards
        g.replicas[3] = replica(3);
        g.replicas[3].begin_onboarding();
        assert!(g.replicas[3].is_joining());
        // ordering traffic is ignored while quiescent: no relay, no votes
        g.replicas[3].on_request(request(99, 1));
        let outs = g.replicas[3].take_outputs();
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                Output::ToReplica(..)
                    | Output::ToAllReplicas(Message::Prepare(_))
                    | Output::ToAllReplicas(Message::ViewChange(_))
            )),
            "joining replica neither relays nor votes"
        );
        transfer_state_to_replica_3(&mut g);
        assert!(!g.replicas[3].is_joining(), "onboarding completed");
        assert_eq!(g.replicas[3].last_executed(), SeqNo(16));
        assert_eq!(g.replicas[3].app().total(), 32, "caught up at the barrier");
        // and it now participates normally
        g.replicas[0].on_request(request(17, 2));
        g.pump(&[]);
        assert_eq!(g.replicas[3].app().total(), 34);
    }

    #[test]
    fn onboarding_replica_adopts_a_vouched_view() {
        let mut r3 = replica(3);
        r3.begin_onboarding();
        let d = Digest::of(b"x");
        // two peers (f+1 for f=1) attest view 2; a lone Byzantine claims 9
        for (i, v) in [(0u32, 2u64), (1, 2), (2, 9)] {
            r3.on_message(
                ReplicaId(i),
                Message::Commit(Commit {
                    view: View(v),
                    seq: SeqNo(1),
                    digest: d,
                    replica: ReplicaId(i),
                }),
            );
        }
        // f+1 byte-identical offers complete the transfer
        let payload = encode_transfer_payload(&CounterMachine::new().snapshot(), &BTreeMap::new());
        for i in 0..2u32 {
            r3.on_message(
                ReplicaId(i),
                Message::StateData(StateData {
                    seq: SeqNo(4),
                    snapshot: payload.clone(),
                    proof: Vec::new(),
                    replica: ReplicaId(i),
                }),
            );
        }
        assert!(!r3.is_joining());
        assert_eq!(
            r3.view(),
            View(2),
            "adopts the (f+1)-th highest: the Byzantine outlier is discounted"
        );
    }

    #[test]
    fn byzantine_joiner_lying_about_catchup_cannot_stall_the_group() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 5));
            g.pump(&[3]);
        }
        // slot 3's replacement lies about its catch-up point: it claims a
        // state far ahead of the group instead of onboarding honestly
        g.replicas[3] = replica(3);
        let lie = StateFetch {
            seq: SeqNo(1_000_000),
            replica: ReplicaId(3),
        };
        for i in 0..3usize {
            g.replicas[i].on_message(ReplicaId(3), Message::StateFetch(lie));
            assert!(
                !g.replicas[i]
                    .take_outputs()
                    .iter()
                    .any(|o| matches!(o, Output::ToReplica(ReplicaId(3), Message::StateData(_)))),
                "no replica serves state it does not have"
            );
        }
        // and it votes garbage from its empty state: the live quorum is
        // unaffected
        for ts in 18..=20u64 {
            g.replicas[0].on_request(request(ts, 5));
            for i in 0..3usize {
                g.replicas[i].on_message(
                    ReplicaId(3),
                    Message::Prepare(Prepare {
                        view: View(0),
                        seq: SeqNo(ts),
                        digest: Digest::of(b"garbage"),
                        replica: ReplicaId(3),
                    }),
                );
            }
            g.pump(&[3]);
        }
        for r in &g.replicas[..3] {
            assert_eq!(r.app().total(), 100, "progress despite the lying joiner");
        }
    }
}
