//! The PBFT replica state machine.
//!
//! Pure protocol logic: inputs are verified messages (the
//! [`crate::node`] adapter authenticates envelopes before calling in) and
//! timer expirations; outputs are queued [`Output`] actions drained by the
//! adapter. Normal case, checkpointing, view changes, and state transfer
//! follow Castro–Liskov \[7\]; the ITDOS message-queue adaptation builds on
//! top in [`crate::queue`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itdos_crypto::hash::Digest;
use itdos_obs::{LabelValue, Obs};

use crate::config::{ClientId, GroupConfig, ReplicaId, SeqNo, View};
use crate::log::Log;
use crate::message::{
    Checkpoint, ClientRequest, Commit, Message, NewView, PrePrepare, Prepare, PreparedProof, Reply,
    StateData, StateFetch, ViewChange,
};
use crate::state::StateMachine;

/// An action the protocol asks the transport adapter to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Send to one replica.
    ToReplica(ReplicaId, Message),
    /// Multicast to all other replicas.
    ToAllReplicas(Message),
    /// Send to a client.
    ToClient(ClientId, Message),
    /// A request was executed at `seq` — the upper layer's delivery hook
    /// (in ITDOS this feeds the ORB thread).
    Executed {
        /// Order of execution.
        seq: SeqNo,
        /// The executed request.
        request: ClientRequest,
        /// Result bytes from the state machine.
        result: Vec<u8>,
    },
    /// (Re)arm the view-change timer with the given epoch.
    StartViewTimer {
        /// Epoch used to ignore stale expirations.
        epoch: u64,
        /// Consecutive view-change attempts (adapter doubles the timeout).
        attempt: u32,
    },
    /// The replica moved to a new view.
    EnteredView(View),
    /// The replica fell behind and restored state from a transfer.
    StateTransferred(SeqNo),
}

/// A PBFT replica wrapping an application state machine.
pub struct Replica<S> {
    config: GroupConfig,
    id: ReplicaId,
    app: S,
    log: Log,
    view: View,
    /// Highest contiguously executed sequence number.
    last_executed: SeqNo,
    /// Next sequence the primary will assign.
    next_seq: SeqNo,
    /// Last reply per client (exactly-once semantics).
    client_table: BTreeMap<ClientId, (u64, Option<Reply>)>,
    /// Requests accepted but not yet executed (view-change trigger).
    pending: BTreeSet<Digest>,
    /// Digests this primary has assigned a sequence number in the current
    /// view (prevents double ordering; rebuilt on view entry).
    ordered: BTreeSet<Digest>,
    /// Requests a primary could not yet assign (window full).
    backlog: VecDeque<ClientRequest>,
    timer_epoch: u64,
    view_change_attempts: u32,
    in_view_change: bool,
    /// Collected view-change messages per target view.
    view_changes: BTreeMap<View, BTreeMap<ReplicaId, ViewChange>>,
    /// Outstanding state-transfer target, if any.
    fetching: Option<SeqNo>,
    /// StateData offers received while fetching: (seq, digest) → senders.
    /// `f+1` matching offers prove the snapshot without checkpoint votes
    /// (at least one offer is from a correct replica).
    state_offers: BTreeMap<(SeqNo, Digest), BTreeSet<ReplicaId>>,
    /// True during proactive recovery: the replica distrusts its own app
    /// state and accepts a trusted snapshot even at its current sequence.
    recovering: bool,
    outputs: Vec<Output>,
    /// Instrumentation sink; a disabled handle (the default) makes every
    /// hook a no-op.
    obs: Obs,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("in_view_change", &self.in_view_change)
            .finish()
    }
}

impl<S: StateMachine> Replica<S> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: GroupConfig, id: ReplicaId, app: S) -> Replica<S> {
        config.validate();
        let log = Log::new(&config);
        Replica {
            config,
            id,
            app,
            log,
            view: View(0),
            last_executed: SeqNo(0),
            next_seq: SeqNo(0),
            client_table: BTreeMap::new(),
            pending: BTreeSet::new(),
            ordered: BTreeSet::new(),
            backlog: VecDeque::new(),
            timer_epoch: 0,
            view_change_attempts: 0,
            in_view_change: false,
            view_changes: BTreeMap::new(),
            fetching: None,
            state_offers: BTreeMap::new(),
            recovering: false,
            outputs: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Installs an observability sink. Phase spans (`bft.prepare_us`,
    /// `bft.commit_us`, `bft.order_us`) and protocol events are recorded
    /// against the sink's injected clock; with the default disabled handle
    /// every hook is a zero-allocation no-op.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// This replica's metric label set.
    fn obs_label(&self) -> [itdos_obs::Label; 1] {
        [("replica", LabelValue::U64(u64::from(self.id.0)))]
    }

    /// Span id for a per-sequence phase: the replica id is mixed in so
    /// that replicas of one group sharing a single recorder cannot clobber
    /// each other's spans for the same sequence number. Cross-group
    /// separation comes from the scoped handle the wiring installs
    /// ([`itdos_obs::Obs::scoped`]).
    fn seq_span_id(&self, seq: SeqNo) -> u64 {
        (u64::from(self.id.0) << 48) ^ seq.0
    }

    /// Publishes queue-depth gauges (request backlog and accepted-but-
    /// unexecuted requests).
    fn obs_depths(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        let labels = self.obs_label();
        self.obs
            .gauge("bft.backlog_depth", &labels, self.backlog.len() as i64);
        self.obs
            .gauge("bft.pending_depth", &labels, self.pending.len() as i64);
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// True when this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.config.primary_of(self.view) == self.id
    }

    /// Highest contiguously executed sequence number.
    pub fn last_executed(&self) -> SeqNo {
        self.last_executed
    }

    /// Access to the application state machine.
    pub fn app(&self) -> &S {
        &self.app
    }

    /// Mutable access to the application (tests / fault injection only).
    pub fn app_mut(&mut self) -> &mut S {
        &mut self.app
    }

    /// The protocol log (tests / diagnostics).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// True while a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Drains queued outputs.
    pub fn take_outputs(&mut self) -> Vec<Output> {
        self.obs_depths();
        std::mem::take(&mut self.outputs)
    }

    fn arm_timer(&mut self) {
        self.timer_epoch += 1;
        self.outputs.push(Output::StartViewTimer {
            epoch: self.timer_epoch,
            attempt: self.view_change_attempts,
        });
    }

    // ---------------------------------------------------------------- input

    /// Handles a verified protocol message from `sender`.
    pub fn on_message(&mut self, sender: ReplicaId, message: Message) {
        match message {
            Message::Request(req) => self.on_request(req),
            Message::PrePrepare(pp) => self.on_pre_prepare(sender, pp),
            Message::Prepare(p) => self.on_prepare(sender, p),
            Message::Commit(c) => self.on_commit(sender, c),
            Message::Checkpoint(cp) => self.on_checkpoint(sender, cp),
            Message::ViewChange(vc) => self.on_view_change(sender, vc),
            Message::NewView(nv) => self.on_new_view(sender, nv),
            Message::StateFetch(sf) => self.on_state_fetch(sf),
            Message::StateData(sd) => self.on_state_data(sd),
            Message::Reply(_) => {} // replicas ignore replies
        }
    }

    /// Handles a client request (also called when a backup relays one).
    pub fn on_request(&mut self, request: ClientRequest) {
        self.obs.incr("bft.requests", &self.obs_label());
        // exactly-once: resend cached reply for a repeated timestamp
        if let Some((last_ts, cached)) = self.client_table.get(&request.client) {
            if request.timestamp < *last_ts {
                return;
            }
            if request.timestamp == *last_ts {
                if let Some(reply) = cached.clone() {
                    self.outputs
                        .push(Output::ToClient(request.client, Message::Reply(reply)));
                }
                return;
            }
        }
        let digest = request.digest();
        let newly_pending = self.pending.insert(digest);
        if self.in_view_change {
            return; // ordered after the view change completes (client retransmits)
        }
        if self.is_primary() {
            // a request already ordered in this view or already backlogged
            // (client broadcast + backup relays deliver several copies)
            // must not be assigned a second sequence number
            let already_queued =
                self.ordered.contains(&digest) || self.backlog.iter().any(|r| r.digest() == digest);
            if !already_queued {
                self.backlog.push_back(request);
                self.drain_backlog();
            }
        } else {
            // backup: relay to the primary and start the view-change timer
            let primary = self.config.primary_of(self.view);
            self.outputs
                .push(Output::ToReplica(primary, Message::Request(request)));
            if newly_pending {
                self.arm_timer();
            }
        }
    }

    fn drain_backlog(&mut self) {
        loop {
            let seq = SeqNo(self.next_seq.0 + 1);
            if !self.log.in_window(seq) {
                break; // window full until the next stable checkpoint
            }
            let Some(request) = self.backlog.pop_front() else {
                break;
            };
            self.next_seq = seq;
            self.ordered.insert(request.digest());
            // the primary's ordering phases start when it proposes
            self.obs.span_begin("bft.prepare_us", self.seq_span_id(seq));
            self.obs.span_begin("bft.order_us", self.seq_span_id(seq));
            let pp = PrePrepare {
                view: self.view,
                seq,
                digest: request.digest(),
                request,
            };
            let entry = self.log.entry(self.view, seq);
            entry.pre_prepare = Some(pp.clone());
            self.outputs
                .push(Output::ToAllReplicas(Message::PrePrepare(pp)));
            // the primary's pre-prepare counts as its prepare; execution
            // still needs 2f prepares from backups
            self.try_commit(self.view, seq);
        }
    }

    fn on_pre_prepare(&mut self, sender: ReplicaId, pp: PrePrepare) {
        if self.in_view_change
            || pp.view != self.view
            || sender != self.config.primary_of(self.view)
            || !self.log.in_window(pp.seq)
            || pp.digest != pp.request.digest()
        {
            return;
        }
        let view = self.view;
        let entry = self.log.entry(view, pp.seq);
        if let Some(existing) = &entry.pre_prepare {
            if existing.digest != pp.digest {
                // equivocating primary: refuse; the timer will expire and a
                // view change will remove it. The contradiction itself is
                // hard forensic evidence, so put it on the flight record.
                let labels = [
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(pp.seq.0)),
                    ("view", LabelValue::U64(view.0)),
                ];
                self.obs.incr("bft.equivocations", &self.obs_label());
                self.obs.event("bft.equivocation", &labels);
                return;
            }
            return; // duplicate
        }
        entry.pre_prepare = Some(pp.clone());
        self.pending.insert(pp.digest);
        // a backup's ordering phases start at pre-prepare acceptance
        self.obs
            .span_begin("bft.prepare_us", self.seq_span_id(pp.seq));
        self.obs
            .span_begin("bft.order_us", self.seq_span_id(pp.seq));
        let prepare = Prepare {
            view: self.view,
            seq: pp.seq,
            digest: pp.digest,
            replica: self.id,
        };
        self.log
            .entry(view, pp.seq)
            .prepares
            .insert(self.id, prepare);
        self.outputs
            .push(Output::ToAllReplicas(Message::Prepare(prepare)));
        self.arm_timer_if_first_pending();
        self.try_commit(view, pp.seq);
    }

    fn arm_timer_if_first_pending(&mut self) {
        if self.pending.len() == 1 {
            self.arm_timer();
        }
    }

    fn on_prepare(&mut self, sender: ReplicaId, prepare: Prepare) {
        if sender != prepare.replica
            || prepare.view != self.view
            || !self.log.in_window(prepare.seq)
        {
            return;
        }
        self.log
            .entry(prepare.view, prepare.seq)
            .prepares
            .insert(prepare.replica, prepare);
        self.try_commit(prepare.view, prepare.seq);
    }

    fn try_commit(&mut self, view: View, seq: SeqNo) {
        let (is_prepared, has_own_commit, digest) = match self.log.entry_ref(view, seq) {
            Some(entry) => (
                entry.prepared(&self.config),
                entry.commits.contains_key(&self.id),
                entry.pre_prepare.as_ref().map(|pp| pp.digest),
            ),
            None => return,
        };
        if !is_prepared || has_own_commit {
            self.try_execute();
            return;
        }
        // prepared implies a pre-prepare digest; an inconsistent entry
        // simply does not advance to commit
        let Some(digest) = digest else {
            return;
        };
        // prepared for the first time: close the prepare phase, open commit
        self.obs
            .span_end("bft.prepare_us", self.seq_span_id(seq), &self.obs_label());
        self.obs.span_begin("bft.commit_us", self.seq_span_id(seq));
        self.obs.event(
            "bft.prepared",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
                ("view", LabelValue::U64(view.0)),
            ],
        );
        let commit = Commit {
            view,
            seq,
            digest,
            replica: self.id,
        };
        self.log.entry(view, seq).commits.insert(self.id, commit);
        self.outputs
            .push(Output::ToAllReplicas(Message::Commit(commit)));
        self.try_execute();
    }

    fn on_commit(&mut self, sender: ReplicaId, commit: Commit) {
        if sender != commit.replica {
            return;
        }
        // a commit far past our execution point means we missed traffic
        // (crash, partition): fetch the latest stable checkpoint instead
        // of waiting for requests that will never be retransmitted
        if commit.seq.0 > self.last_executed.0 + self.config.checkpoint_interval {
            let target = SeqNo(commit.seq.0 - commit.seq.0 % self.config.checkpoint_interval);
            if target > self.last_executed {
                self.request_state(target, Digest::default());
            }
        }
        if commit.view != self.view || !self.log.in_window(commit.seq) {
            return;
        }
        self.log
            .entry(commit.view, commit.seq)
            .commits
            .insert(commit.replica, commit);
        self.try_execute();
    }

    fn try_execute(&mut self) {
        let mut progressed = false;
        loop {
            let next = SeqNo(self.last_executed.0 + 1);
            let view = self.view;
            let request = match self.log.entry_ref(view, next) {
                Some(entry) if !entry.executed && entry.committed_local(&self.config) => {
                    // committed implies a pre-prepare; stall rather than
                    // panic on an inconsistent entry
                    match entry.pre_prepare.as_ref() {
                        Some(pp) => pp.request.clone(),
                        None => break,
                    }
                }
                _ => break,
            };
            progressed = true;
            self.log.entry(view, next).executed = true;
            self.last_executed = next;
            self.pending.remove(&request.digest());
            let labels = self.obs_label();
            self.obs
                .span_end("bft.commit_us", self.seq_span_id(next), &labels);
            self.obs
                .span_end("bft.order_us", self.seq_span_id(next), &labels);
            self.obs.incr("bft.executed", &labels);
            // commit certificate reached and applied: the last ordering
            // phase this replica can attest for `next`
            self.obs.event(
                "bft.committed",
                &[
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(next.0)),
                ],
            );
            let is_null = request.operation.is_empty() && request.client == ClientId(0);
            // exactly-once at execution: a replayed or doubly-ordered
            // request (Byzantine primary) is skipped, not re-executed
            let is_stale = self
                .client_table
                .get(&request.client)
                .is_some_and(|(last_ts, _)| request.timestamp <= *last_ts);
            if !is_null && !is_stale {
                let result = self.app.execute(&request.operation);
                let reply = Reply {
                    view: self.view,
                    timestamp: request.timestamp,
                    client: request.client,
                    replica: self.id,
                    result: result.clone(),
                };
                self.client_table
                    .insert(request.client, (request.timestamp, Some(reply.clone())));
                self.outputs
                    .push(Output::ToClient(request.client, Message::Reply(reply)));
                self.outputs.push(Output::Executed {
                    seq: next,
                    request,
                    result,
                });
            }
            if next.0 % self.config.checkpoint_interval == 0 {
                self.emit_checkpoint(next);
            }
        }
        // progress resets the view-change timer; with no progress the
        // running timer keeps counting toward a view change
        if progressed {
            if self.pending.is_empty() {
                self.view_change_attempts = 0;
            } else {
                self.arm_timer();
            }
            if self.is_primary() {
                self.drain_backlog();
            }
        }
    }

    fn emit_checkpoint(&mut self, seq: SeqNo) {
        // checkpoint digests use the canonical snapshot digest so state
        // transfer can verify a received snapshot against checkpoint votes
        let snapshot = self.app.snapshot();
        let state_digest = snapshot_digest(&snapshot);
        self.log.store_own_checkpoint(seq, state_digest, snapshot);
        self.obs.incr("bft.checkpoints", &self.obs_label());
        self.obs.event(
            "bft.checkpoint",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
            ],
        );
        let checkpoint = Checkpoint {
            seq,
            state_digest,
            replica: self.id,
        };
        self.log.add_checkpoint(&checkpoint);
        self.outputs
            .push(Output::ToAllReplicas(Message::Checkpoint(checkpoint)));
        self.maybe_stabilize(seq, state_digest);
    }

    fn on_checkpoint(&mut self, sender: ReplicaId, checkpoint: Checkpoint) {
        if sender != checkpoint.replica {
            return;
        }
        self.log.add_checkpoint(&checkpoint);
        self.maybe_stabilize(checkpoint.seq, checkpoint.state_digest);
    }

    fn maybe_stabilize(&mut self, seq: SeqNo, digest: Digest) {
        if self.log.checkpoint_votes(seq, digest) < self.config.quorum() {
            return;
        }
        if self.recovering && seq >= self.last_executed {
            // a fresh-enough stable checkpoint exists: re-issue the fetch
            self.fetching = Some(seq);
            self.outputs
                .push(Output::ToAllReplicas(Message::StateFetch(StateFetch {
                    seq,
                    replica: self.id,
                })));
            return;
        }
        if seq.0 >= self.last_executed.0 + self.config.checkpoint_interval {
            // the group has provably moved a full checkpoint interval past
            // us: fetch state instead of waiting to catch up message by
            // message
            self.request_state(seq, digest);
            return;
        }
        if seq <= self.last_executed && seq > self.log.low() {
            self.log.stabilize(seq);
            self.obs.event(
                "bft.checkpoint_stable",
                &[
                    ("replica", LabelValue::U64(u64::from(self.id.0))),
                    ("seq", LabelValue::U64(seq.0)),
                ],
            );
            if self.is_primary() {
                self.drain_backlog();
            }
        }
    }

    fn request_state(&mut self, seq: SeqNo, _digest: Digest) {
        if self.fetching.is_some_and(|s| s >= seq) {
            return;
        }
        self.fetching = Some(seq);
        self.obs.incr("bft.state_fetches", &self.obs_label());
        self.obs
            .span_begin("bft.state_transfer_us", u64::from(self.id.0));
        self.obs.event(
            "bft.state_fetch",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(seq.0)),
            ],
        );
        let fetch = StateFetch {
            seq,
            replica: self.id,
        };
        self.outputs
            .push(Output::ToAllReplicas(Message::StateFetch(fetch)));
    }

    fn on_state_fetch(&mut self, fetch: StateFetch) {
        let Some((seq, (digest, snapshot))) = self.log.latest_own_checkpoint() else {
            return;
        };
        if seq < fetch.seq {
            return; // we cannot help yet
        }
        let data = StateData {
            seq,
            snapshot: snapshot.clone(),
            proof: vec![Checkpoint {
                seq,
                state_digest: *digest,
                replica: self.id,
            }],
            replica: self.id,
        };
        self.outputs
            .push(Output::ToReplica(fetch.replica, Message::StateData(data)));
    }

    /// Begins proactive recovery \[6\]: the replica assumes its application
    /// state may have been silently corrupted by an undetected intrusion,
    /// discards trust in it, and restores a snapshot proved by its peers.
    /// (The paper's §3.2 notes Castro–Liskov keeps faulty replicas "in the
    /// system until they are proactively recovered" — this is that path.)
    pub fn start_recovery(&mut self) {
        self.recovering = true;
        self.obs.incr("bft.recoveries", &self.obs_label());
        self.obs
            .span_begin("bft.state_transfer_us", u64::from(self.id.0));
        self.fetching = Some(SeqNo(self.log.low().0.max(1)));
        self.state_offers.clear();
        self.outputs
            .push(Output::ToAllReplicas(Message::StateFetch(StateFetch {
                seq: self.log.low(),
                replica: self.id,
            })));
    }

    /// True while a proactive recovery is in flight.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    fn on_state_data(&mut self, data: StateData) {
        if self.fetching.is_none() {
            return;
        }
        if !self.recovering && data.seq <= self.last_executed {
            return;
        }
        if self.recovering && data.seq < self.last_executed {
            // too old to replace our claimed execution point: recovery
            // completes at the next checkpoint boundary (as in PBFT) —
            // `maybe_stabilize` re-issues the fetch when one stabilizes
            return;
        }
        // trust conditions (either suffices):
        //  (a) a 2f+1 checkpoint-vote quorum for the snapshot digest, or
        //  (b) f+1 distinct replicas offering byte-identical snapshots —
        //      at least one of them is correct
        let digest = snapshot_digest(&data.snapshot);
        let offers = self.state_offers.entry((data.seq, digest)).or_default();
        offers.insert(data.replica);
        let trusted = self.log.checkpoint_votes(data.seq, digest) >= self.config.quorum()
            || offers.len() > self.config.f;
        if !trusted {
            return;
        }
        self.app.restore(&data.snapshot);
        self.last_executed = data.seq;
        self.next_seq = self.next_seq.max(data.seq);
        self.log.stabilize(data.seq);
        self.fetching = None;
        self.state_offers.clear();
        self.recovering = false;
        self.pending.clear();
        // rejoin normal operation: any lone view-change attempt we started
        // while stranded is abandoned with our stale state
        self.in_view_change = false;
        self.view_change_attempts = 0;
        let labels = self.obs_label();
        self.obs
            .span_end("bft.state_transfer_us", u64::from(self.id.0), &labels);
        self.obs.event(
            "bft.state_transferred",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("seq", LabelValue::U64(data.seq.0)),
            ],
        );
        self.outputs.push(Output::StateTransferred(data.seq));
    }

    // ---------------------------------------------------------- view change

    /// Handles a view-change timer expiration.
    pub fn on_view_timeout(&mut self, epoch: u64) {
        if epoch != self.timer_epoch || self.pending.is_empty() {
            return;
        }
        // A commit certificate beyond our next execution slot proves the
        // group is live and ordered past us: we crashed or were partitioned,
        // and the missing entries will never be retransmitted. A view change
        // cannot fill that gap — the primary is fine, *we* are the straggler
        // — and nobody would join it, so cascading one per timeout floods
        // the group forever. Go quiet (no timer re-arm) and re-announce a
        // state fetch; checkpoint traffic completes the transfer as soon as
        // a fresh-enough stable checkpoint exists.
        if self.log.committed_beyond(self.last_executed, &self.config) {
            self.fetching = None;
            self.request_state(SeqNo(self.last_executed.0 + 1), Digest::default());
            return;
        }
        self.start_view_change(View(self.view.0 + 1 + self.view_change_attempts as u64));
    }

    fn start_view_change(&mut self, target: View) {
        self.in_view_change = true;
        self.view_change_attempts += 1;
        self.obs.incr("bft.view_changes", &self.obs_label());
        self.obs
            .span_begin("bft.view_change_us", u64::from(self.id.0));
        self.obs.event(
            "bft.view_change",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("target_view", LabelValue::U64(target.0)),
                (
                    "attempt",
                    LabelValue::U64(u64::from(self.view_change_attempts)),
                ),
            ],
        );
        let vc = ViewChange {
            new_view: target,
            stable_seq: self.log.low(),
            checkpoint_proof: Vec::new(), // adapter-level signatures make
            // the stable_seq claim accountable; full checkpoint certificates
            // add bytes without changing behaviour under our fault model
            prepared: self.log.prepared_proofs(&self.config),
            replica: self.id,
        };
        self.outputs
            .push(Output::ToAllReplicas(Message::ViewChange(vc.clone())));
        self.collect_view_change(vc);
        self.arm_timer(); // cascade to the next view if this one stalls
    }

    fn on_view_change(&mut self, sender: ReplicaId, vc: ViewChange) {
        if sender != vc.replica || vc.new_view <= self.view {
            return;
        }
        if !validate_view_change(&vc, &self.config) {
            return;
        }
        self.collect_view_change(vc.clone());
        // liveness rule: if f+1 replicas are already in a higher view, join
        let target = vc.new_view;
        let count = self.view_changes.get(&target).map(|m| m.len()).unwrap_or(0);
        if count > self.config.f && !self.in_view_change {
            self.start_view_change(target);
        }
    }

    fn collect_view_change(&mut self, vc: ViewChange) {
        let target = vc.new_view;
        self.view_changes
            .entry(target)
            .or_default()
            .insert(vc.replica, vc);
        let set = &self.view_changes[&target];
        if target > self.view
            && set.len() >= self.config.quorum()
            && self.config.primary_of(target) == self.id
        {
            let view_changes: Vec<ViewChange> = set.values().cloned().collect();
            let pre_prepares = compute_new_view_pre_prepares(&view_changes, target);
            let nv = NewView {
                view: target,
                view_changes,
                pre_prepares: pre_prepares.clone(),
                primary: self.id,
            };
            self.outputs
                .push(Output::ToAllReplicas(Message::NewView(nv)));
            self.enter_view(target, pre_prepares);
        }
    }

    fn on_new_view(&mut self, sender: ReplicaId, nv: NewView) {
        if nv.view <= self.view
            || sender != nv.primary
            || self.config.primary_of(nv.view) != nv.primary
        {
            return;
        }
        if nv.view_changes.len() < self.config.quorum() {
            return;
        }
        for vc in &nv.view_changes {
            if vc.new_view != nv.view || !validate_view_change(vc, &self.config) {
                return;
            }
        }
        // recompute the pre-prepare set; a Byzantine primary cannot smuggle
        // in a different order
        let expected = compute_new_view_pre_prepares(&nv.view_changes, nv.view);
        if expected.len() != nv.pre_prepares.len()
            || expected
                .iter()
                .zip(&nv.pre_prepares)
                .any(|(a, b)| a.seq != b.seq || a.digest != b.digest)
        {
            return;
        }
        self.enter_view(nv.view, nv.pre_prepares);
    }

    fn enter_view(&mut self, view: View, pre_prepares: Vec<PrePrepare>) {
        self.view = view;
        self.in_view_change = false;
        self.view_change_attempts = 0;
        self.view_changes.retain(|v, _| *v > view);
        let labels = self.obs_label();
        self.obs
            .span_end("bft.view_change_us", u64::from(self.id.0), &labels);
        self.obs.event(
            "bft.view_entered",
            &[
                ("replica", LabelValue::U64(u64::from(self.id.0))),
                ("view", LabelValue::U64(view.0)),
            ],
        );
        self.outputs.push(Output::EnteredView(view));
        // ordering state is per-view: rebuilt from the carried pre-prepares
        self.ordered = pre_prepares.iter().map(|pp| pp.digest).collect();
        let mut max_seq = self.log.low();
        for pp in pre_prepares {
            max_seq = max_seq.max(pp.seq);
            let entry = self.log.entry(view, pp.seq);
            entry.pre_prepare = Some(pp.clone());
            if pp.seq <= self.last_executed {
                entry.executed = true;
                continue;
            }
            let prepare = Prepare {
                view,
                seq: pp.seq,
                digest: pp.digest,
                replica: self.id,
            };
            self.log
                .entry(view, pp.seq)
                .prepares
                .insert(self.id, prepare);
            if self.id != self.config.primary_of(view) {
                self.outputs
                    .push(Output::ToAllReplicas(Message::Prepare(prepare)));
            }
            self.pending.insert(pp.digest);
        }
        self.next_seq = max_seq.max(SeqNo(self.last_executed.0));
        if !self.pending.is_empty() {
            self.arm_timer();
        }
        if self.is_primary() {
            self.drain_backlog();
        }
    }
}

/// Structural validation of a view-change message.
fn validate_view_change(vc: &ViewChange, config: &GroupConfig) -> bool {
    for proof in &vc.prepared {
        if proof.pre_prepare.digest != proof.pre_prepare.request.digest() {
            return false;
        }
        let matching = proof
            .prepares
            .iter()
            .filter(|p| {
                p.digest == proof.pre_prepare.digest
                    && p.view == proof.pre_prepare.view
                    && p.seq == proof.pre_prepare.seq
            })
            .map(|p| p.replica)
            .collect::<BTreeSet<_>>()
            .len();
        if matching < 2 * config.f {
            return false;
        }
    }
    true
}

/// Deterministically derives the new view's re-issued pre-prepares from a
/// set of view changes (used by the primary to build NEW-VIEW and by
/// backups to validate it).
fn compute_new_view_pre_prepares(view_changes: &[ViewChange], view: View) -> Vec<PrePrepare> {
    let min_s = view_changes
        .iter()
        .map(|vc| vc.stable_seq)
        .max()
        .unwrap_or(SeqNo(0));
    // for each seq above min_s, the prepared proof from the highest view wins
    let mut best: BTreeMap<SeqNo, &PreparedProof> = BTreeMap::new();
    for vc in view_changes {
        for proof in &vc.prepared {
            let seq = proof.pre_prepare.seq;
            if seq <= min_s {
                continue;
            }
            let replace = best
                .get(&seq)
                .map(|cur| proof.pre_prepare.view > cur.pre_prepare.view)
                .unwrap_or(true);
            if replace {
                best.insert(seq, proof);
            }
        }
    }
    let max_s = best.keys().next_back().copied().unwrap_or(min_s);
    let mut out = Vec::new();
    for seq_raw in (min_s.0 + 1)..=max_s.0 {
        let seq = SeqNo(seq_raw);
        let pp = match best.get(&seq) {
            Some(proof) => PrePrepare {
                view,
                seq,
                digest: proof.pre_prepare.digest,
                request: proof.pre_prepare.request.clone(),
            },
            None => {
                // gap: the null request
                let request = ClientRequest {
                    client: ClientId(0),
                    timestamp: 0,
                    operation: Vec::new(),
                };
                PrePrepare {
                    view,
                    seq,
                    digest: request.digest(),
                    request,
                }
            }
        };
        out.push(pp);
    }
    out
}

/// Canonical digest rule binding checkpoints to snapshots: replicas
/// checkpoint `H("bft-snapshot" ‖ snapshot)` so state transfer can verify a
/// snapshot against checkpoint votes without re-executing.
pub fn snapshot_digest(snapshot: &[u8]) -> Digest {
    Digest::of_parts(&[b"bft-snapshot", snapshot])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CounterMachine;

    fn replica(id: u32) -> Replica<CounterMachine> {
        Replica::new(GroupConfig::for_f(1), ReplicaId(id), CounterMachine::new())
    }

    fn request(ts: u64, delta: i64) -> ClientRequest {
        ClientRequest {
            client: ClientId(1),
            timestamp: ts,
            operation: CounterMachine::op(delta),
        }
    }

    /// Drives a full in-memory group of 4 replicas by relaying outputs.
    struct Group {
        replicas: Vec<Replica<CounterMachine>>,
        replies: Vec<Reply>,
        executed: Vec<(u32, SeqNo, Vec<u8>)>,
    }

    impl Group {
        fn new() -> Group {
            Group {
                replicas: (0..4).map(replica).collect(),
                replies: Vec::new(),
                executed: Vec::new(),
            }
        }

        /// Delivers every queued output until quiescent. `mute` crashes
        /// those replica ids: they neither send nor receive.
        fn pump(&mut self, mute: &[u32]) {
            loop {
                let mut moved = false;
                for i in 0..self.replicas.len() {
                    let outputs = self.replicas[i].take_outputs();
                    let from = ReplicaId(i as u32);
                    for out in outputs {
                        if mute.contains(&(i as u32)) {
                            continue;
                        }
                        moved = true;
                        match out {
                            Output::ToReplica(to, msg) => {
                                if !mute.contains(&to.0) {
                                    self.replicas[to.0 as usize].on_message(from, msg);
                                }
                            }
                            Output::ToAllReplicas(msg) => {
                                for j in 0..self.replicas.len() {
                                    if j != i && !mute.contains(&(j as u32)) {
                                        let m = msg.clone();
                                        self.replicas[j].on_message(from, m);
                                    }
                                }
                            }
                            Output::ToClient(_, Message::Reply(r)) => self.replies.push(r),
                            Output::ToClient(_, _) => {}
                            Output::Executed { seq, result, .. } => {
                                self.executed.push((i as u32, seq, result));
                            }
                            Output::StartViewTimer { .. }
                            | Output::EnteredView(_)
                            | Output::StateTransferred(_) => {}
                        }
                    }
                }
                if !moved {
                    break;
                }
            }
        }
    }

    #[test]
    fn normal_case_executes_on_all_replicas() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.last_executed(), SeqNo(1));
            assert_eq!(r.app().total(), 5);
        }
        // every replica replied to the client
        assert_eq!(g.replies.len(), 4);
        assert!(g.replies.iter().all(|r| r.result == 5i64.to_le_bytes()));
    }

    #[test]
    fn sequential_requests_execute_in_order() {
        let mut g = Group::new();
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 10));
            g.pump(&[]);
        }
        for r in &g.replicas {
            assert_eq!(r.last_executed(), SeqNo(5));
            assert_eq!(r.app().total(), 50);
        }
    }

    #[test]
    fn duplicate_request_resends_cached_reply() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        let before = g.replies.len();
        g.replicas[0].on_request(request(1, 5));
        g.pump(&[]);
        assert_eq!(g.replies.len(), before + 1, "cached reply resent");
        assert_eq!(g.replicas[0].app().total(), 5, "no re-execution");
    }

    #[test]
    fn backup_relays_request_to_primary() {
        let mut g = Group::new();
        g.replicas[2].on_request(request(1, 7));
        g.pump(&[]);
        for r in &g.replicas {
            assert_eq!(r.app().total(), 7);
        }
    }

    #[test]
    fn one_crashed_backup_does_not_block() {
        let mut g = Group::new();
        g.replicas[0].on_request(request(1, 3));
        g.pump(&[3]); // replica 3 silent
        for r in &g.replicas[..3] {
            assert_eq!(r.app().total(), 3);
        }
        assert_eq!(g.replicas[3].app().total(), 0);
    }

    #[test]
    fn view_timeout_triggers_view_change_and_recovery() {
        let mut g = Group::new();
        // primary (0) is crashed: backups receive the request, relay it,
        // nothing happens, timers expire
        for i in 1..4 {
            g.replicas[i].on_request(request(1, 9));
        }
        g.pump(&[0]);
        assert_eq!(g.replicas[1].app().total(), 0, "stuck without primary");
        // timers fire on the three live backups
        for i in 1..4 {
            let epoch = g.replicas[i].timer_epoch;
            g.replicas[i].on_view_timeout(epoch);
        }
        g.pump(&[0]);
        for r in &g.replicas[1..4] {
            assert_eq!(r.view(), View(1), "moved to view 1");
        }
        // re-send the request to the new primary (client retransmission)
        g.replicas[1].on_request(request(1, 9));
        g.pump(&[0]);
        for r in &g.replicas[1..4] {
            assert_eq!(r.app().total(), 9, "executed in the new view");
        }
    }

    #[test]
    fn prepared_request_survives_view_change() {
        let mut g = Group::new();
        // primary 0 pre-prepares then crashes; backups exchange prepares
        // but all COMMITs are dropped, so the request is prepared-not-
        // committed when the view change starts
        g.replicas[0].on_request(request(1, 4));
        let outs = g.replicas[0].take_outputs();
        for out in outs {
            if let Output::ToAllReplicas(Message::PrePrepare(pp)) = out {
                for j in 1..4 {
                    g.replicas[j].on_message(ReplicaId(0), Message::PrePrepare(pp.clone()));
                }
            }
        }
        // deliver prepares between backups, drop everything else
        let mut prepares = Vec::new();
        for i in 1..4 {
            for out in g.replicas[i].take_outputs() {
                if let Output::ToAllReplicas(Message::Prepare(p)) = out {
                    prepares.push((i, p));
                }
            }
        }
        for (from, p) in prepares {
            for j in 1..4 {
                if j != from {
                    g.replicas[j].on_message(ReplicaId(from as u32), Message::Prepare(p));
                }
            }
        }
        // drop the resulting commits
        for i in 1..4 {
            let _ = g.replicas[i].take_outputs();
        }
        assert_eq!(g.replicas[1].app().total(), 0, "not yet executed");
        // view change
        for i in 1..4 {
            let epoch = g.replicas[i].timer_epoch;
            g.replicas[i].on_view_timeout(epoch);
        }
        g.pump(&[0]);
        // the prepared request must be re-executed in view 1 without the
        // client retransmitting
        for r in &g.replicas[1..4] {
            assert_eq!(r.view(), View(1));
            assert_eq!(r.app().total(), 4, "prepared request carried over");
        }
    }

    #[test]
    fn checkpoints_advance_watermarks() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 1));
            g.pump(&[]);
        }
        for r in &g.replicas {
            assert_eq!(r.log().low(), SeqNo(16), "stable checkpoint at 16");
        }
    }

    #[test]
    fn equivocating_primary_is_refused() {
        let mut r1 = replica(1);
        let req_a = request(1, 1);
        let req_b = request(1, 2);
        let pp_a = PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: req_a.digest(),
            request: req_a,
        };
        let pp_b = PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: req_b.digest(),
            request: req_b,
        };
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp_a.clone()));
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp_b));
        let entry = r1.log().entry_ref(View(0), SeqNo(1)).unwrap();
        assert_eq!(
            entry.pre_prepare.as_ref().unwrap().digest,
            pp_a.digest,
            "first accepted, conflicting refused"
        );
    }

    #[test]
    fn pre_prepare_from_non_primary_ignored() {
        let mut r1 = replica(1);
        let req = request(1, 1);
        let pp = PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: req.digest(),
            request: req,
        };
        r1.on_message(ReplicaId(2), Message::PrePrepare(pp)); // 2 is not primary of view 0
        assert!(r1.log().entry_ref(View(0), SeqNo(1)).is_none());
    }

    #[test]
    fn mismatched_digest_pre_prepare_ignored() {
        let mut r1 = replica(1);
        let req = request(1, 1);
        let pp = PrePrepare {
            view: View(0),
            seq: SeqNo(1),
            digest: Digest::of(b"lie"),
            request: req,
        };
        r1.on_message(ReplicaId(0), Message::PrePrepare(pp));
        assert!(r1.log().entry_ref(View(0), SeqNo(1)).is_none());
    }

    #[test]
    fn spoofed_prepare_sender_ignored() {
        let mut r1 = replica(1);
        let req = request(1, 1);
        let prepare = Prepare {
            view: View(0),
            seq: SeqNo(1),
            digest: req.digest(),
            replica: ReplicaId(3),
        };
        // claimed sender 2 != embedded replica 3
        r1.on_message(ReplicaId(2), Message::Prepare(prepare));
        assert!(r1
            .log()
            .entry_ref(View(0), SeqNo(1))
            .map_or(true, |e| e.prepares.is_empty()));
    }

    #[test]
    fn stale_view_timer_is_ignored() {
        let mut g = Group::new();
        g.replicas[1].on_request(request(1, 1));
        let stale = g.replicas[1].timer_epoch;
        g.pump(&[]); // executes; timer epoch advanced / pending cleared
        g.replicas[1].on_view_timeout(stale);
        assert!(!g.replicas[1].in_view_change(), "stale epoch ignored");
        assert_eq!(g.replicas[1].view(), View(0));
    }

    #[test]
    fn proactive_recovery_restores_clean_state() {
        let mut g = Group::new();
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 3));
            g.pump(&[]);
        }
        // silent corruption of replica 2's application state
        g.replicas[2]
            .app_mut()
            .restore(&CounterMachine::new().snapshot());
        assert_ne!(g.replicas[2].app().digest(), g.replicas[0].app().digest());
        g.replicas[2].start_recovery();
        assert!(g.replicas[2].is_recovering());
        g.pump(&[]);
        // the stable checkpoint at 16 is older than replica 2's execution
        // point (17): recovery waits for the NEXT checkpoint
        for ts in 18..=33 {
            g.replicas[0].on_request(request(ts, 3));
            g.pump(&[]);
        }
        assert!(!g.replicas[2].is_recovering(), "recovered at checkpoint 32");
        assert_eq!(
            g.replicas[2].app().digest(),
            g.replicas[0].app().digest(),
            "clean state restored from peers"
        );
    }

    #[test]
    fn straggler_fetches_state_instead_of_cascading_view_changes() {
        let mut g = Group::new();
        // replica 3 misses requests 1..=5 (crashed / partitioned)
        for ts in 1..=5 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        // it rejoins and observes request 6 committed at seq 6, which it
        // cannot execute across the gap left by 1..=5
        g.replicas[0].on_request(request(6, 2));
        g.pump(&[]);
        assert_eq!(g.replicas[3].last_executed(), SeqNo(0), "stuck behind gap");
        // its view timer expires: a lone view change would never gather
        // joiners (the primary is live), so it must go quiet and ask for
        // state instead of flooding the group once per timeout
        let epoch = g.replicas[3].timer_epoch;
        g.replicas[3].on_view_timeout(epoch);
        assert!(!g.replicas[3].in_view_change(), "no lone view change");
        let outs = g.replicas[3].take_outputs();
        assert!(
            outs.iter()
                .any(|o| matches!(o, Output::ToAllReplicas(Message::StateFetch(_)))),
            "state fetch announced"
        );
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                Output::ToAllReplicas(Message::ViewChange(_)) | Output::StartViewTimer { .. }
            )),
            "no view-change flood, no timer re-arm"
        );
    }

    #[test]
    fn byzantine_new_view_is_rejected() {
        // the new primary (replica 1) sends a NEW-VIEW whose re-issued
        // pre-prepares do not match the view-change set: backups recompute
        // and refuse to enter the view
        let mut g = Group::new();
        // build a legitimate 2f+1 view-change set for view 1
        let vcs: Vec<ViewChange> = (1..4)
            .map(|i| ViewChange {
                new_view: View(1),
                stable_seq: SeqNo(0),
                checkpoint_proof: Vec::new(),
                prepared: Vec::new(),
                replica: ReplicaId(i),
            })
            .collect();
        // a forged pre-prepare smuggled into the new view
        let rogue = request(1, 999_999);
        let forged = PrePrepare {
            view: View(1),
            seq: SeqNo(1),
            digest: rogue.digest(),
            request: rogue,
        };
        let nv = NewView {
            view: View(1),
            view_changes: vcs,
            pre_prepares: vec![forged],
            primary: ReplicaId(1),
        };
        g.replicas[2].on_message(ReplicaId(1), Message::NewView(nv));
        assert_eq!(
            g.replicas[2].view(),
            View(0),
            "backup recomputed the pre-prepare set and refused the forgery"
        );
    }

    #[test]
    fn lagging_replica_catches_up_via_state_transfer() {
        let mut g = Group::new();
        // run 17 requests with replica 3 crashed (misses everything)
        for ts in 1..=17 {
            g.replicas[0].on_request(request(ts, 2));
            g.pump(&[3]);
        }
        assert_eq!(g.replicas[3].app().total(), 0);
        // replica 3 comes back and hears checkpoint messages from others:
        // replay checkpoint votes for seq 16 from replicas 0..2
        for i in 0..3u32 {
            let (seq, (digest, _)) = {
                let log = g.replicas[i as usize].log();
                let (s, d) = log.latest_own_checkpoint().expect("checkpointed");
                (s, (d.0, ()))
            };
            let cp = Checkpoint {
                seq,
                state_digest: digest,
                replica: ReplicaId(i),
            };
            g.replicas[3].on_message(ReplicaId(i), Message::Checkpoint(cp));
        }
        g.pump(&[]);
        assert_eq!(g.replicas[3].last_executed(), SeqNo(16));
        assert_eq!(g.replicas[3].app().total(), 32, "restored state at seq 16");
    }
}
