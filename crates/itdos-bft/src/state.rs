//! The replicated application interface.
//!
//! PBFT replicates a deterministic state machine \[37\]. The protocol layer
//! drives it through this trait; digests feed checkpoints; snapshots feed
//! state transfer and proactive recovery.

use itdos_crypto::hash::Digest;

/// A deterministic application replicated by the BFT group.
///
/// Implementations must be deterministic: identical operation sequences
/// produce identical results, digests, and snapshots on every correct
/// replica ("without determinism, it is impossible to differentiate
/// between arbitrary faults and non-deterministic behavior", §2).
pub trait StateMachine {
    /// Executes one operation, returning its result bytes.
    fn execute(&mut self, operation: &[u8]) -> Vec<u8>;

    /// A digest of the current state (checkpoint content).
    fn digest(&self) -> Digest;

    /// Serializes the full state for transfer.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot.
    fn restore(&mut self, snapshot: &[u8]);

    /// True when executing `operation` must force an immediate checkpoint
    /// (a membership-change barrier). Every correct replica answers
    /// identically for the same bytes, so the forced checkpoint lands at
    /// the same sequence number group-wide — giving a joining replica a
    /// checkpoint quorum exactly at its admission point. Default: never.
    fn is_barrier(&self, _operation: &[u8]) -> bool {
        false
    }
}

/// A trivial counter machine used by tests and benches: the operation is
/// an i64 delta (little-endian), the result is the new total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterMachine {
    total: i64,
    applied: u64,
}

impl CounterMachine {
    /// Creates a zeroed counter.
    pub fn new() -> CounterMachine {
        CounterMachine::default()
    }

    /// The current total.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Number of operations applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Encodes a delta operation.
    pub fn op(delta: i64) -> Vec<u8> {
        delta.to_le_bytes().to_vec()
    }
}

impl StateMachine for CounterMachine {
    fn execute(&mut self, operation: &[u8]) -> Vec<u8> {
        let delta = operation
            .get(..8)
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(i64::from_le_bytes)
            .unwrap_or(0);
        self.total = self.total.wrapping_add(delta);
        self.applied += 1;
        self.total.to_le_bytes().to_vec()
    }

    fn digest(&self) -> Digest {
        Digest::of_parts(&[
            b"counter",
            &self.total.to_le_bytes(),
            &self.applied.to_le_bytes(),
        ])
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.applied.to_le_bytes());
        out
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let total = snapshot.get(..8).and_then(|b| <[u8; 8]>::try_from(b).ok());
        let applied = snapshot
            .get(8..16)
            .and_then(|b| <[u8; 8]>::try_from(b).ok());
        if let (Some(total), Some(applied)) = (total, applied) {
            self.total = i64::from_le_bytes(total);
            self.applied = u64::from_le_bytes(applied);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_executes_deterministically() {
        let mut a = CounterMachine::new();
        let mut b = CounterMachine::new();
        for delta in [5i64, -3, 100] {
            assert_eq!(
                a.execute(&CounterMachine::op(delta)),
                b.execute(&CounterMachine::op(delta))
            );
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.total(), 102);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut a = CounterMachine::new();
        a.execute(&CounterMachine::op(7));
        a.execute(&CounterMachine::op(-2));
        let snap = a.snapshot();
        let mut b = CounterMachine::new();
        b.restore(&snap);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_tracks_history_length() {
        // same total via different op counts must differ (applied counts)
        let mut a = CounterMachine::new();
        a.execute(&CounterMachine::op(2));
        let mut b = CounterMachine::new();
        b.execute(&CounterMachine::op(1));
        b.execute(&CounterMachine::op(1));
        assert_eq!(a.total(), b.total());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn malformed_op_is_a_noop_delta() {
        let mut a = CounterMachine::new();
        a.execute(&[1, 2]); // too short: delta 0, still counts as applied
        assert_eq!(a.total(), 0);
        assert_eq!(a.applied(), 1);
    }
}
