//! Replica configuration.

use simnet::SimDuration;

/// Identifies a replica within its BFT group (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

/// Identifies a BFT client (in ITDOS: a singleton client process or an
/// element of a client replication domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

/// A protocol view number; the primary of view `v` is replica `v mod n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

/// A sequence number assigned by the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

/// Static configuration shared by all replicas of one group.
///
/// # Examples
///
/// ```
/// use itdos_bft::config::GroupConfig;
///
/// let cfg = GroupConfig::for_f(1);
/// assert_eq!(cfg.n, 4);
/// assert_eq!(cfg.quorum(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Number of replicas (`n >= 3f + 1`).
    pub n: usize,
    /// Maximum simultaneous Byzantine faults tolerated.
    pub f: usize,
    /// Execute a checkpoint every this many sequence numbers.
    pub checkpoint_interval: u64,
    /// Log window size (`H - h`); pre-prepares outside the window are
    /// refused.
    pub watermark_window: u64,
    /// How long a backup waits on an unexecuted request before starting a
    /// view change.
    pub view_timeout: SimDuration,
    /// Maximum requests the primary packs into one batch (one sequence
    /// number orders one batch). `1` disables batching.
    pub max_batch: usize,
    /// Maximum total operation bytes per batch; a batch always admits at
    /// least one request even if that request alone exceeds the bound.
    pub max_batch_bytes: usize,
    /// Maximum sequence numbers concurrently in flight (assigned but not
    /// yet executed) at the primary. `1` disables pipelining; the watermark
    /// window is always a second, outer bound.
    pub pipeline_depth: u64,
    /// Replies retained per client for exactly-once duplicate suppression.
    /// A client pipelining deeper than this window can have an in-flight
    /// request's cached reply evicted before its retransmission arrives,
    /// silently breaking exactly-once — deployments must keep client
    /// pipeline depths at or below this bound.
    pub client_reply_window: usize,
}

impl GroupConfig {
    /// Minimal configuration tolerating `f` faults with `n = 3f + 1`.
    pub fn for_f(f: usize) -> GroupConfig {
        GroupConfig {
            n: 3 * f + 1,
            f,
            checkpoint_interval: 16,
            watermark_window: 64,
            view_timeout: SimDuration::from_millis(50),
            max_batch: 8,
            max_batch_bytes: 1 << 20,
            pipeline_depth: 16,
            client_reply_window: 32,
        }
    }

    /// The same group with batching and pipelining disabled: one request
    /// per sequence number, one sequence number in flight (the pre-batching
    /// protocol, used as the bench baseline).
    pub fn unbatched(mut self) -> GroupConfig {
        self.max_batch = 1;
        self.pipeline_depth = 1;
        self
    }

    /// The 2f+1 quorum used for prepared/committed certificates.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// The primary of `view`.
    pub fn primary_of(&self, view: View) -> ReplicaId {
        ReplicaId((view.0 % self.n as u64) as u32)
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3f + 1` or the checkpoint interval is zero or larger
    /// than the watermark window.
    pub fn validate(&self) {
        assert!(self.n >= 3 * self.f + 1, "n must be at least 3f+1");
        assert!(
            self.checkpoint_interval > 0,
            "checkpoint interval must be positive"
        );
        assert!(
            self.watermark_window >= self.checkpoint_interval,
            "watermark window must cover at least one checkpoint interval"
        );
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            self.max_batch_bytes >= 1,
            "max_batch_bytes must be at least 1"
        );
        assert!(
            self.pipeline_depth >= 1,
            "pipeline_depth must be at least 1"
        );
        assert!(
            self.client_reply_window >= 1,
            "client_reply_window must be at least 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_f_builds_minimal_group() {
        for f in 1..=4 {
            let cfg = GroupConfig::for_f(f);
            cfg.validate();
            assert_eq!(cfg.n, 3 * f + 1);
            assert_eq!(cfg.quorum(), 2 * f + 1);
        }
    }

    #[test]
    fn primary_rotates_by_view() {
        let cfg = GroupConfig::for_f(1);
        assert_eq!(cfg.primary_of(View(0)), ReplicaId(0));
        assert_eq!(cfg.primary_of(View(1)), ReplicaId(1));
        assert_eq!(cfg.primary_of(View(4)), ReplicaId(0));
    }

    #[test]
    #[should_panic(expected = "n must be at least 3f+1")]
    fn undersized_group_rejected() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.n = 3;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "watermark window")]
    fn window_must_cover_checkpoint() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.watermark_window = 8;
        cfg.validate();
    }

    #[test]
    fn unbatched_disables_batching_and_pipelining() {
        let cfg = GroupConfig::for_f(1).unbatched();
        cfg.validate();
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.pipeline_depth, 1);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.max_batch = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "pipeline_depth")]
    fn zero_pipeline_rejected() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.pipeline_depth = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "client_reply_window")]
    fn zero_reply_window_rejected() {
        let mut cfg = GroupConfig::for_f(1);
        cfg.client_reply_window = 0;
        cfg.validate();
    }
}
