//! Message authentication: envelopes, key provisioning, and verification.
//!
//! Normal-case messages use MAC authenticators \[8\] (one MAC per receiver
//! under pairwise keys); view-change/checkpoint/state messages are signed
//! so they remain verifiable when embedded in third-party proofs.
//!
//! Key provisioning is deterministic from a per-domain seed — the paper
//! assumes "authentication tokens for each process are adequately
//! protected" (§2.2) and does not describe a key-exchange protocol, so we
//! provision pairwise keys at configuration time.

use std::collections::BTreeMap;

use itdos_crypto::keys::SymmetricKey;
use itdos_crypto::mac::Authenticator;
use itdos_crypto::sign::{Signature, SigningKey, VerifyingKey};

use crate::config::{ClientId, ReplicaId};
use crate::wire::{Reader, WireError, Writer};

/// A protocol participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Peer {
    /// A group replica.
    Replica(ReplicaId),
    /// An external client.
    Client(ClientId),
}

/// Authentication attached to an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthProof {
    /// MAC authenticator: entry `i` verifies under the pairwise key between
    /// the sender and replica `i`.
    Macs(Authenticator),
    /// Digital signature over the payload.
    Signature(Signature),
}

/// An authenticated protocol envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Who sent it (claimed; verified via `auth`).
    pub sender: Peer,
    /// Encoded [`crate::message::Message`].
    pub payload: Vec<u8>,
    /// MAC authenticator or signature.
    pub auth: AuthProof,
}

impl Envelope {
    /// Serializes the envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self.sender {
            Peer::Replica(id) => {
                w.u8(0);
                w.u64(id.0 as u64);
            }
            Peer::Client(id) => {
                w.u8(1);
                w.u64(id.0);
            }
        }
        w.bytes(&self.payload);
        match &self.auth {
            AuthProof::Macs(a) => {
                w.u8(0);
                w.bytes(&a.to_bytes());
            }
            AuthProof::Signature(s) => {
                w.u8(1);
                w.raw(&s.to_bytes());
            }
        }
        w.finish()
    }

    /// Deserializes an envelope.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformation.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, WireError> {
        let mut r = Reader::new(bytes);
        let sender = match r.u8()? {
            0 => Peer::Replica(ReplicaId(u32::try_from(r.u64()?).map_err(|_| WireError)?)),
            1 => Peer::Client(ClientId(r.u64()?)),
            _ => return Err(WireError),
        };
        let payload = r.bytes()?.to_vec();
        let auth = match r.u8()? {
            0 => {
                let raw = r.bytes()?;
                let (a, used) = Authenticator::from_bytes(raw).ok_or(WireError)?;
                if used != raw.len() {
                    return Err(WireError);
                }
                AuthProof::Macs(a)
            }
            1 => AuthProof::Signature(Signature::from_bytes(
                r.raw(16)?.try_into().map_err(|_| WireError)?,
            )),
            _ => return Err(WireError),
        };
        r.expect_end()?;
        Ok(Envelope {
            sender,
            payload,
            auth,
        })
    }
}

/// Deterministic key provisioning for one BFT group.
#[derive(Debug, Clone)]
pub struct KeyProvisioner {
    seed: [u8; 32],
}

impl KeyProvisioner {
    /// Creates a provisioner from a group seed.
    pub fn new(seed: [u8; 32]) -> KeyProvisioner {
        KeyProvisioner { seed }
    }

    /// Pairwise key between two replicas (symmetric in the pair).
    pub fn replica_pair(&self, a: ReplicaId, b: ReplicaId) -> SymmetricKey {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let mut label = Vec::with_capacity(16);
        label.extend_from_slice(&lo.to_le_bytes());
        label.extend_from_slice(&hi.to_le_bytes());
        SymmetricKey::derive(&self.seed, &[b"rr-pair".as_slice(), &label].concat())
    }

    /// Pairwise key between a client and a replica.
    pub fn client_pair(&self, client: ClientId, replica: ReplicaId) -> SymmetricKey {
        let mut label = Vec::with_capacity(16);
        label.extend_from_slice(&client.0.to_le_bytes());
        label.extend_from_slice(&replica.0.to_le_bytes());
        SymmetricKey::derive(&self.seed, &[b"cr-pair".as_slice(), &label].concat())
    }

    /// A replica's signing key.
    pub fn signing_key(&self, replica: ReplicaId) -> SigningKey {
        SigningKey::from_seed(&[&self.seed[..], &replica.0.to_le_bytes()].concat())
    }

    /// All replicas' verifying keys for a group of size `n`.
    pub fn verifying_keys(&self, n: usize) -> BTreeMap<ReplicaId, VerifyingKey> {
        (0u32..)
            .take(n)
            .map(|i| (ReplicaId(i), self.signing_key(ReplicaId(i)).verifying_key()))
            .collect()
    }
}

/// Per-process authentication state (one replica's or client's view).
#[derive(Debug, Clone)]
pub struct AuthContext {
    me: Peer,
    provisioner: KeyProvisioner,
    n: usize,
    signing: SigningKey,
    verifying: BTreeMap<ReplicaId, VerifyingKey>,
}

impl AuthContext {
    /// Builds the context for replica `id` in a group of `n`.
    pub fn for_replica(provisioner: KeyProvisioner, id: ReplicaId, n: usize) -> AuthContext {
        let signing = provisioner.signing_key(id);
        let verifying = provisioner.verifying_keys(n);
        AuthContext {
            me: Peer::Replica(id),
            provisioner,
            n,
            signing,
            verifying,
        }
    }

    /// Builds the context for an external client.
    pub fn for_client(provisioner: KeyProvisioner, id: ClientId, n: usize) -> AuthContext {
        // clients do not sign protocol messages; derive an unused key
        let signing = SigningKey::from_seed(&[b"client".as_slice(), &id.0.to_le_bytes()].concat());
        let verifying = provisioner.verifying_keys(n);
        AuthContext {
            me: Peer::Client(id),
            provisioner,
            n,
            signing,
            verifying,
        }
    }

    /// This participant's identity.
    pub fn me(&self) -> Peer {
        self.me
    }

    fn pair_with_replica(&self, replica: ReplicaId) -> SymmetricKey {
        match self.me {
            Peer::Replica(id) => self.provisioner.replica_pair(id, replica),
            Peer::Client(id) => self.provisioner.client_pair(id, replica),
        }
    }

    /// Wraps a payload with a MAC authenticator addressed to all replicas.
    pub fn mac_envelope(&self, payload: Vec<u8>) -> Envelope {
        let keys: Vec<SymmetricKey> = (0..self.n as u32)
            .map(|i| self.pair_with_replica(ReplicaId(i)))
            .collect();
        Envelope {
            sender: self.me,
            payload: payload.clone(),
            auth: AuthProof::Macs(Authenticator::generate(&keys, &payload)),
        }
    }

    /// Wraps a payload addressed to a single client (one-entry
    /// authenticator under the client-replica pair key).
    pub fn mac_envelope_for_client(&self, client: ClientId, payload: Vec<u8>) -> Envelope {
        let Peer::Replica(me) = self.me else {
            // itdos-lint: allow(panic-freedom) -- guards our own identity (a local construction invariant), never attacker input; clients are wired without this path
            panic!("only replicas address clients");
        };
        let key = self.provisioner.client_pair(client, me);
        Envelope {
            sender: self.me,
            payload: payload.clone(),
            auth: AuthProof::Macs(Authenticator::generate(
                std::slice::from_ref(&key),
                &payload,
            )),
        }
    }

    /// Wraps a payload with this replica's signature.
    pub fn signed_envelope(&self, payload: Vec<u8>) -> Envelope {
        let signature = self.signing.sign(&payload);
        Envelope {
            sender: self.me,
            payload,
            auth: AuthProof::Signature(signature),
        }
    }

    /// Verifies an incoming envelope at this receiver.
    ///
    /// Returns true when the authenticator entry (or signature) verifies
    /// under the claimed sender's key material.
    pub fn verify(&self, envelope: &Envelope) -> bool {
        match (&envelope.auth, envelope.sender, self.me) {
            (AuthProof::Macs(a), sender, Peer::Replica(me)) => {
                let key = match sender {
                    Peer::Replica(s) => self.provisioner.replica_pair(s, me),
                    Peer::Client(c) => self.provisioner.client_pair(c, me),
                };
                a.verify(me.0 as usize, &key, &envelope.payload)
            }
            (AuthProof::Macs(a), Peer::Replica(s), Peer::Client(me)) => {
                // reply addressed to this client: single-entry authenticator
                let key = self.provisioner.client_pair(me, s);
                a.verify(0, &key, &envelope.payload)
            }
            (AuthProof::Macs(_), Peer::Client(_), Peer::Client(_)) => false,
            (AuthProof::Signature(sig), Peer::Replica(s), _) => self
                .verifying
                .get(&s)
                .is_some_and(|vk| vk.verify(&envelope.payload, sig)),
            (AuthProof::Signature(_), Peer::Client(_), _) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provisioner() -> KeyProvisioner {
        KeyProvisioner::new([7u8; 32])
    }

    #[test]
    fn replica_pairs_are_symmetric() {
        let p = provisioner();
        assert_eq!(
            p.replica_pair(ReplicaId(1), ReplicaId(3)),
            p.replica_pair(ReplicaId(3), ReplicaId(1))
        );
        assert_ne!(
            p.replica_pair(ReplicaId(1), ReplicaId(3)),
            p.replica_pair(ReplicaId(1), ReplicaId(2))
        );
    }

    #[test]
    fn replica_to_replica_mac_verifies() {
        let p = provisioner();
        let sender = AuthContext::for_replica(p.clone(), ReplicaId(0), 4);
        let receiver = AuthContext::for_replica(p, ReplicaId(2), 4);
        let env = sender.mac_envelope(vec![1, 2, 3]);
        assert!(receiver.verify(&env));
    }

    #[test]
    fn tampered_payload_fails_mac() {
        let p = provisioner();
        let sender = AuthContext::for_replica(p.clone(), ReplicaId(0), 4);
        let receiver = AuthContext::for_replica(p, ReplicaId(2), 4);
        let mut env = sender.mac_envelope(vec![1, 2, 3]);
        env.payload[0] ^= 1;
        assert!(!receiver.verify(&env));
    }

    #[test]
    fn impersonation_fails_mac() {
        let p = provisioner();
        let sender = AuthContext::for_replica(p.clone(), ReplicaId(0), 4);
        let receiver = AuthContext::for_replica(p, ReplicaId(2), 4);
        let mut env = sender.mac_envelope(vec![1, 2, 3]);
        env.sender = Peer::Replica(ReplicaId(1)); // claim to be replica 1
        assert!(!receiver.verify(&env));
    }

    #[test]
    fn client_request_verifies_at_each_replica() {
        let p = provisioner();
        let client = AuthContext::for_client(p.clone(), ClientId(42), 4);
        let env = client.mac_envelope(vec![9]);
        for i in 0..4 {
            let r = AuthContext::for_replica(p.clone(), ReplicaId(i), 4);
            assert!(r.verify(&env), "replica {i}");
        }
    }

    #[test]
    fn reply_to_client_verifies_only_at_that_client() {
        let p = provisioner();
        let replica = AuthContext::for_replica(p.clone(), ReplicaId(1), 4);
        let env = replica.mac_envelope_for_client(ClientId(42), vec![5]);
        let right = AuthContext::for_client(p.clone(), ClientId(42), 4);
        let wrong = AuthContext::for_client(p, ClientId(43), 4);
        assert!(right.verify(&env));
        assert!(!wrong.verify(&env));
    }

    #[test]
    fn signed_envelope_verifies_and_rejects_tampering() {
        let p = provisioner();
        let sender = AuthContext::for_replica(p.clone(), ReplicaId(3), 4);
        let receiver = AuthContext::for_replica(p, ReplicaId(0), 4);
        let env = sender.signed_envelope(vec![1, 1, 2, 3, 5]);
        assert!(receiver.verify(&env));
        let mut bad = env.clone();
        bad.payload.push(0);
        assert!(!receiver.verify(&bad));
        let mut forged = env;
        forged.sender = Peer::Replica(ReplicaId(1));
        assert!(!receiver.verify(&forged));
    }

    #[test]
    fn client_cannot_sign() {
        let p = provisioner();
        let client = AuthContext::for_client(p.clone(), ClientId(1), 4);
        let receiver = AuthContext::for_replica(p, ReplicaId(0), 4);
        let env = client.signed_envelope(vec![1]);
        assert!(!receiver.verify(&env), "client signatures are not trusted");
    }

    #[test]
    fn envelope_bytes_round_trip() {
        let p = provisioner();
        let sender = AuthContext::for_replica(p.clone(), ReplicaId(0), 4);
        for env in [
            sender.mac_envelope(vec![1, 2]),
            sender.signed_envelope(vec![3]),
            AuthContext::for_client(p, ClientId(5), 4).mac_envelope(vec![4]),
        ] {
            assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
        }
    }

    #[test]
    fn malformed_envelope_rejected() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[9]).is_err());
        let p = provisioner();
        let env = AuthContext::for_replica(p, ReplicaId(0), 4).mac_envelope(vec![1]);
        let bytes = env.encode();
        assert!(Envelope::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
