//! # itdos-bft — the Castro–Liskov PBFT library with ITDOS adaptations
//!
//! A from-scratch implementation of Practical Byzantine Fault Tolerance
//! \[7\]: the three-phase normal case (pre-prepare / prepare / commit),
//! MAC-authenticator authentication \[8\], checkpoints and watermarks, view
//! changes, state transfer, and the `f+1`-matching client protocol —
//! everything ITDOS uses as its "Secure Reliable Multicast" layer (§3.1).
//!
//! The ITDOS adaptation lives in [`queue`]: the replicated state machine
//! *is a message queue*, converting the request/response + state-transfer
//! model into a message-passing transport, with queue garbage collection
//! re-introducing virtual synchrony (laggards must be expelled for the
//! queue to make progress).
//!
//! Layers:
//!
//! * [`config`] / [`message`] / [`wire`] — identities, protocol messages,
//!   compact codec;
//! * [`auth`] — envelopes: MAC authenticators for the normal case, Schnorr
//!   signatures for view-change/checkpoint/state messages;
//! * [`log`] — per-(view, seq) certificates, watermarks, checkpoint votes;
//! * [`replica`] — the protocol state machine (pure logic, outputs drained
//!   by an adapter);
//! * [`client`] — waits for `f+1` matching replies;
//! * [`state`] — the replicated application trait;
//! * [`queue`] — the ITDOS message-queue state machine;
//! * [`node`] — simnet adapters and a turnkey [`node::build_group`].
//!
//! # Examples
//!
//! ```
//! use xbytes::Bytes;
//! use itdos_bft::config::{ClientId, GroupConfig};
//! use itdos_bft::node::{build_group, ClientNode};
//! use itdos_bft::state::CounterMachine;
//! use simnet::{GroupId, Simulator};
//!
//! let mut sim = Simulator::new(42);
//! let config = GroupConfig::for_f(1);
//! let (_, client, _) = build_group(
//!     &mut sim,
//!     &config,
//!     [1u8; 32],
//!     GroupId::from_raw(0),
//!     ClientId(1),
//! );
//! sim.inject(client, Bytes::from(CounterMachine::op(5)));
//! sim.run();
//! assert_eq!(
//!     sim.process_ref::<ClientNode>(client).results,
//!     vec![5i64.to_le_bytes().to_vec()]
//! );
//! ```

#![warn(missing_docs)]

pub mod auth;
pub mod client;
pub mod config;
pub mod log;
pub mod message;
pub mod node;
pub mod queue;
pub mod replica;
pub mod state;
pub mod wire;

pub use config::{ClientId, GroupConfig, ReplicaId, SeqNo, View};
pub use message::Message;
pub use replica::{Output, Replica};
pub use state::StateMachine;
