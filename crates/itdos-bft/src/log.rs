//! The replica message log: per-(view, seq) certificates and watermarks.

use std::collections::BTreeMap;

use itdos_crypto::hash::Digest;

use crate::config::{GroupConfig, ReplicaId, SeqNo, View};
use crate::message::{Checkpoint, Commit, PrePrepare, Prepare, PreparedProof};

/// Certificate state for one sequence number in one view.
#[derive(Debug, Clone, Default)]
pub struct Entry {
    /// The accepted pre-prepare, if any.
    pub pre_prepare: Option<PrePrepare>,
    /// Prepares received, by replica (at most one counted per replica).
    pub prepares: BTreeMap<ReplicaId, Prepare>,
    /// Commits received, by replica.
    pub commits: BTreeMap<ReplicaId, Commit>,
    /// Whether this entry's request has been executed.
    pub executed: bool,
}

impl Entry {
    /// PBFT `prepared(m, v, n, i)`: pre-prepare plus 2f matching prepares
    /// from *other* replicas (the pre-prepare stands in for the primary's
    /// prepare).
    pub fn prepared(&self, config: &GroupConfig) -> bool {
        let Some(pp) = &self.pre_prepare else {
            return false;
        };
        let matching = self
            .prepares
            .values()
            .filter(|p| p.digest == pp.digest && p.view == pp.view)
            .count();
        matching >= 2 * config.f
    }

    /// PBFT `committed-local(m, v, n, i)`: prepared plus 2f+1 matching
    /// commits (own commit included by the caller inserting it).
    pub fn committed_local(&self, config: &GroupConfig) -> bool {
        if !self.prepared(config) {
            return false;
        }
        let Some(pp) = &self.pre_prepare else {
            return false;
        };
        let matching = self
            .commits
            .values()
            .filter(|c| c.digest == pp.digest && c.view == pp.view)
            .count();
        matching >= config.quorum()
    }
}

/// The log: entries within the watermark window, plus checkpoint
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct Log {
    entries: BTreeMap<(View, SeqNo), Entry>,
    /// Low watermark: sequence of the last stable checkpoint.
    low: SeqNo,
    window: u64,
    /// Checkpoint messages by (seq, digest), sender-deduplicated. The full
    /// messages are retained (not just the sender set) so a view change
    /// can embed a real checkpoint certificate proving its stable seq.
    checkpoints: BTreeMap<(SeqNo, Digest), BTreeMap<ReplicaId, Checkpoint>>,
    /// Own checkpoint snapshots retained for state transfer: seq →
    /// (digest, snapshot bytes).
    own_checkpoints: BTreeMap<SeqNo, (Digest, Vec<u8>)>,
}

impl Log {
    /// Creates an empty log with the configured window.
    pub fn new(config: &GroupConfig) -> Log {
        Log {
            entries: BTreeMap::new(),
            low: SeqNo(0),
            window: config.watermark_window,
            checkpoints: BTreeMap::new(),
            own_checkpoints: BTreeMap::new(),
        }
    }

    /// The low watermark `h`.
    pub fn low(&self) -> SeqNo {
        self.low
    }

    /// The high watermark `H = h + window`.
    pub fn high(&self) -> SeqNo {
        SeqNo(self.low.0 + self.window)
    }

    /// True when `seq` is inside the acceptance window `(h, H]`.
    pub fn in_window(&self, seq: SeqNo) -> bool {
        seq > self.low && seq <= self.high()
    }

    /// The entry for `(view, seq)`, created on first access.
    pub fn entry(&mut self, view: View, seq: SeqNo) -> &mut Entry {
        self.entries.entry((view, seq)).or_default()
    }

    /// Read-only entry access.
    pub fn entry_ref(&self, view: View, seq: SeqNo) -> Option<&Entry> {
        self.entries.get(&(view, seq))
    }

    /// Records a checkpoint vote; returns the set size for `(seq, digest)`.
    pub fn add_checkpoint(&mut self, checkpoint: &Checkpoint) -> usize {
        let set = self
            .checkpoints
            .entry((checkpoint.seq, checkpoint.state_digest))
            .or_default();
        set.insert(checkpoint.replica, *checkpoint);
        set.len()
    }

    /// Number of distinct replicas that checkpointed `(seq, digest)`.
    pub fn checkpoint_votes(&self, seq: SeqNo, digest: Digest) -> usize {
        self.checkpoints
            .get(&(seq, digest))
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// A checkpoint certificate for the current stable checkpoint: `needed`
    /// checkpoint messages from distinct replicas agreeing on one digest at
    /// `low()`. Prefers the digest this replica itself checkpointed; falls
    /// back to any digest group reaching the size. Empty at genesis
    /// (`low() == 0`, nothing to prove) or when no group qualifies.
    pub fn stable_certificate(&self, needed: usize) -> Vec<Checkpoint> {
        if self.low.0 == 0 {
            return Vec::new();
        }
        let own_digest = self.own_checkpoints.get(&self.low).map(|(d, _)| *d);
        let mut fallback = Vec::new();
        for ((seq, digest), msgs) in &self.checkpoints {
            if *seq != self.low || msgs.len() < needed {
                continue;
            }
            let cert: Vec<Checkpoint> = msgs.values().take(needed).copied().collect();
            if own_digest == Some(*digest) {
                return cert;
            }
            if fallback.is_empty() {
                fallback = cert;
            }
        }
        fallback
    }

    /// Stores this replica's own checkpoint snapshot for state transfer.
    pub fn store_own_checkpoint(&mut self, seq: SeqNo, digest: Digest, snapshot: Vec<u8>) {
        self.own_checkpoints.insert(seq, (digest, snapshot));
    }

    /// The snapshot stored at `seq`, if retained.
    pub fn own_checkpoint(&self, seq: SeqNo) -> Option<&(Digest, Vec<u8>)> {
        self.own_checkpoints.get(&seq)
    }

    /// The latest retained own checkpoint at or below `seq`.
    pub fn latest_own_checkpoint(&self) -> Option<(SeqNo, &(Digest, Vec<u8>))> {
        self.own_checkpoints
            .iter()
            .next_back()
            .map(|(s, d)| (*s, d))
    }

    /// Makes `seq` the stable checkpoint: advances the low watermark and
    /// garbage-collects entries, checkpoint votes, and snapshots at or
    /// below it (keeping the stable snapshot itself for state transfer).
    pub fn stabilize(&mut self, seq: SeqNo) {
        if seq <= self.low {
            return;
        }
        self.low = seq;
        self.entries.retain(|(_, s), _| *s > seq);
        self.checkpoints.retain(|(s, _), _| *s >= seq);
        let keep_from = seq;
        self.own_checkpoints.retain(|s, _| *s >= keep_from);
    }

    /// True when some unexecuted entry strictly beyond the next execution
    /// slot (`executed + 1`) holds a full commit certificate: proof that a
    /// live group ordered requests past a gap this replica cannot fill by
    /// itself (it crashed or was partitioned while the traffic flowed).
    pub fn committed_beyond(&self, executed: SeqNo, config: &GroupConfig) -> bool {
        self.entries.iter().any(|((_, seq), entry)| {
            seq.0 > executed.0 + 1 && !entry.executed && entry.committed_local(config)
        })
    }

    /// Collects prepared certificates above the stable checkpoint, for a
    /// view-change message.
    pub fn prepared_proofs(&self, config: &GroupConfig) -> Vec<PreparedProof> {
        let mut out = Vec::new();
        for ((view, seq), entry) in &self.entries {
            if *seq <= self.low || !entry.prepared(config) {
                continue;
            }
            // prepared() implies a pre-prepare is present, but a hostile
            // log state must degrade to "no proof", not a panic
            let Some(pp) = entry.pre_prepare.clone() else {
                continue;
            };
            let prepares: Vec<Prepare> = entry
                .prepares
                .values()
                .filter(|p| p.digest == pp.digest && p.view == *view)
                .take(2 * config.f)
                .copied()
                .collect();
            out.push(PreparedProof {
                pre_prepare: pp,
                prepares,
            });
        }
        out
    }

    /// Number of live entries (diagnostics / GC tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientId;
    use crate::message::ClientRequest;

    fn config() -> GroupConfig {
        GroupConfig::for_f(1)
    }

    fn pre_prepare(view: u64, seq: u64) -> PrePrepare {
        let batch = crate::message::Batch::single(ClientRequest {
            client: ClientId(1),
            timestamp: seq,
            operation: vec![1],
        });
        PrePrepare {
            view: View(view),
            seq: SeqNo(seq),
            digest: batch.digest(),
            batch,
        }
    }

    fn prepare_from(pp: &PrePrepare, replica: u32) -> Prepare {
        Prepare {
            view: pp.view,
            seq: pp.seq,
            digest: pp.digest,
            replica: ReplicaId(replica),
        }
    }

    fn commit_from(pp: &PrePrepare, replica: u32) -> Commit {
        Commit {
            view: pp.view,
            seq: pp.seq,
            digest: pp.digest,
            replica: ReplicaId(replica),
        }
    }

    #[test]
    fn prepared_needs_pre_prepare_and_2f_prepares() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let pp = pre_prepare(0, 1);
        let entry = log.entry(View(0), SeqNo(1));
        assert!(!entry.prepared(&cfg));
        entry.pre_prepare = Some(pp.clone());
        assert!(!entry.prepared(&cfg), "no prepares yet");
        entry.prepares.insert(ReplicaId(1), prepare_from(&pp, 1));
        assert!(!entry.prepared(&cfg), "one prepare insufficient for f=1");
        entry.prepares.insert(ReplicaId(2), prepare_from(&pp, 2));
        assert!(entry.prepared(&cfg));
    }

    #[test]
    fn mismatched_digest_prepares_do_not_count() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let pp = pre_prepare(0, 1);
        let other = pre_prepare(0, 2); // different digest
        let entry = log.entry(View(0), SeqNo(1));
        entry.pre_prepare = Some(pp.clone());
        entry.prepares.insert(
            ReplicaId(1),
            Prepare {
                digest: other.digest,
                ..prepare_from(&pp, 1)
            },
        );
        entry.prepares.insert(ReplicaId(2), prepare_from(&pp, 2));
        assert!(!entry.prepared(&cfg));
    }

    #[test]
    fn committed_local_needs_quorum_commits() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let pp = pre_prepare(0, 1);
        let entry = log.entry(View(0), SeqNo(1));
        entry.pre_prepare = Some(pp.clone());
        for i in 1..=2 {
            entry.prepares.insert(ReplicaId(i), prepare_from(&pp, i));
        }
        for i in 0..=1 {
            entry.commits.insert(ReplicaId(i), commit_from(&pp, i));
        }
        assert!(!entry.committed_local(&cfg), "2 commits < quorum 3");
        entry.commits.insert(ReplicaId(2), commit_from(&pp, 2));
        assert!(entry.committed_local(&cfg));
    }

    #[test]
    fn watermarks_bound_the_window() {
        let cfg = config();
        let log = Log::new(&cfg);
        assert!(!log.in_window(SeqNo(0)));
        assert!(log.in_window(SeqNo(1)));
        assert!(log.in_window(SeqNo(64)));
        assert!(!log.in_window(SeqNo(65)));
    }

    #[test]
    fn stabilize_garbage_collects() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        for seq in 1..=20u64 {
            let pp = pre_prepare(0, seq);
            log.entry(View(0), SeqNo(seq)).pre_prepare = Some(pp);
        }
        assert_eq!(log.len(), 20);
        log.stabilize(SeqNo(16));
        assert_eq!(log.low(), SeqNo(16));
        assert_eq!(log.len(), 4, "entries <= 16 collected");
        assert!(log.in_window(SeqNo(17)));
        assert!(!log.in_window(SeqNo(16)));
        // stale stabilize is a no-op
        log.stabilize(SeqNo(10));
        assert_eq!(log.low(), SeqNo(16));
    }

    #[test]
    fn checkpoint_votes_deduplicate_by_sender() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let cp = Checkpoint {
            seq: SeqNo(16),
            state_digest: Digest::of(b"s"),
            replica: ReplicaId(1),
        };
        assert_eq!(log.add_checkpoint(&cp), 1);
        assert_eq!(log.add_checkpoint(&cp), 1, "duplicate sender not counted");
        let cp2 = Checkpoint {
            replica: ReplicaId(2),
            ..cp
        };
        assert_eq!(log.add_checkpoint(&cp2), 2);
    }

    #[test]
    fn prepared_proofs_collects_only_prepared_entries() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let pp1 = pre_prepare(0, 1);
        let e1 = log.entry(View(0), SeqNo(1));
        e1.pre_prepare = Some(pp1.clone());
        e1.prepares.insert(ReplicaId(1), prepare_from(&pp1, 1));
        e1.prepares.insert(ReplicaId(2), prepare_from(&pp1, 2));
        let pp2 = pre_prepare(0, 2);
        log.entry(View(0), SeqNo(2)).pre_prepare = Some(pp2);
        let proofs = log.prepared_proofs(&cfg);
        assert_eq!(proofs.len(), 1);
        assert_eq!(proofs[0].pre_prepare.seq, SeqNo(1));
        assert_eq!(proofs[0].prepares.len(), 2);
    }

    #[test]
    fn committed_beyond_detects_a_gap() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        // a full commit certificate at seq 6 while nothing below executed
        let pp = pre_prepare(0, 6);
        let entry = log.entry(View(0), SeqNo(6));
        entry.pre_prepare = Some(pp.clone());
        for i in 1..=2 {
            entry.prepares.insert(ReplicaId(i), prepare_from(&pp, i));
        }
        for i in 0..=2 {
            entry.commits.insert(ReplicaId(i), commit_from(&pp, i));
        }
        assert!(log.committed_beyond(SeqNo(0), &cfg), "gap 1..=5 detected");
        // the next execution slot itself does not count as "beyond"
        assert!(!log.committed_beyond(SeqNo(5), &cfg));
        // an executed entry is no longer evidence of a gap
        log.entry(View(0), SeqNo(6)).executed = true;
        assert!(!log.committed_beyond(SeqNo(0), &cfg));
    }

    #[test]
    fn stable_certificate_proves_the_low_watermark() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        assert!(
            log.stable_certificate(2).is_empty(),
            "genesis needs no proof"
        );
        let digest = Digest::of(b"state");
        for i in 0..3u32 {
            log.add_checkpoint(&Checkpoint {
                seq: SeqNo(16),
                state_digest: digest,
                replica: ReplicaId(i),
            });
        }
        log.store_own_checkpoint(SeqNo(16), digest, vec![1]);
        log.stabilize(SeqNo(16));
        let cert = log.stable_certificate(2);
        assert_eq!(cert.len(), 2);
        assert!(cert.iter().all(|c| c.seq == SeqNo(16)));
        assert!(cert.iter().all(|c| c.state_digest == digest));
        assert!(
            log.stable_certificate(4).is_empty(),
            "not enough distinct voters"
        );
    }

    #[test]
    fn stable_certificate_prefers_own_digest() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        let own = Digest::of(b"own");
        let bogus = Digest::of(b"bogus");
        // a Byzantine clique votes a bogus digest; our own digest group
        // also qualifies — the certificate must follow our own state
        for i in 0..2u32 {
            log.add_checkpoint(&Checkpoint {
                seq: SeqNo(16),
                state_digest: bogus,
                replica: ReplicaId(10 + i),
            });
        }
        for i in 0..2u32 {
            log.add_checkpoint(&Checkpoint {
                seq: SeqNo(16),
                state_digest: own,
                replica: ReplicaId(i),
            });
        }
        log.store_own_checkpoint(SeqNo(16), own, vec![1]);
        log.stabilize(SeqNo(16));
        let cert = log.stable_certificate(2);
        assert!(cert.iter().all(|c| c.state_digest == own));
    }

    #[test]
    fn own_checkpoints_retained_for_transfer() {
        let cfg = config();
        let mut log = Log::new(&cfg);
        log.store_own_checkpoint(SeqNo(16), Digest::of(b"a"), vec![1]);
        log.store_own_checkpoint(SeqNo(32), Digest::of(b"b"), vec![2]);
        log.stabilize(SeqNo(32));
        assert!(log.own_checkpoint(SeqNo(16)).is_none(), "old snapshot GCed");
        assert!(log.own_checkpoint(SeqNo(32)).is_some(), "stable kept");
        assert_eq!(log.latest_own_checkpoint().unwrap().0, SeqNo(32));
    }
}
