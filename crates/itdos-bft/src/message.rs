//! PBFT protocol messages and their wire encoding.
//!
//! Message set from Castro–Liskov \[7\]: `REQUEST`, `PRE-PREPARE`,
//! `PREPARE`, `COMMIT`, `REPLY`, `CHECKPOINT`, `VIEW-CHANGE`, `NEW-VIEW`,
//! plus the state-transfer pair (`STATE-FETCH`/`STATE-DATA`) used by
//! proactive recovery and by lagging replicas.
//!
//! Normal-case messages are authenticated with MAC authenticators \[8\];
//! view-change and checkpoint messages are signed (as in the original PBFT
//! paper) so they can be embedded as transferable proofs.

use itdos_crypto::hash::Digest;

use crate::config::{ClientId, ReplicaId, SeqNo, View};
use crate::wire::{Reader, WireError, Writer};

/// A client's operation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRequest {
    /// Requesting client.
    pub client: ClientId,
    /// Client-local timestamp providing exactly-once semantics.
    pub timestamp: u64,
    /// Opaque operation bytes (in ITDOS: an encrypted SMIOP frame).
    pub operation: Vec<u8>,
}

impl ClientRequest {
    /// The request digest used throughout the three-phase protocol.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[
            b"bft-req",
            &self.client.0.to_le_bytes(),
            &self.timestamp.to_le_bytes(),
            &self.operation,
        ])
    }
}

/// An ordered group of requests agreed under one sequence number —
/// Castro–Liskov's batching optimization, amortizing the three-phase
/// quadratic message cost over `len()` requests.
///
/// The batch digest binds the count and every request digest in order, so
/// two batches containing the same requests in different orders (or one
/// with a request dropped or injected) never collide. An *empty* batch is
/// the null operation used by new-view gap filling; it executes nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Batch {
    /// The requests, in execution order.
    pub requests: Vec<ClientRequest>,
}

impl Batch {
    /// A batch of one request (the unbatched protocol).
    pub fn single(request: ClientRequest) -> Batch {
        Batch {
            requests: vec![request],
        }
    }

    /// The batch digest agreed by the three-phase protocol.
    pub fn digest(&self) -> Digest {
        let digests: Vec<Digest> = self.requests.iter().map(|r| r.digest()).collect();
        let count = (self.requests.len() as u64).to_le_bytes();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(digests.len() + 2);
        parts.push(b"bft-batch");
        parts.push(&count);
        for d in &digests {
            parts.push(d.as_bytes());
        }
        Digest::of_parts(&parts)
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True for the null batch.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Primary's ordering proposal for one batch of requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepare {
    /// View in which the order is proposed.
    pub view: View,
    /// Proposed sequence number.
    pub seq: SeqNo,
    /// Digest of the embedded batch.
    pub digest: Digest,
    /// The full batch (piggybacked, as in PBFT).
    pub batch: Batch,
}

/// Backup's agreement to the proposed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepare {
    /// View number.
    pub view: View,
    /// Sequence number.
    pub seq: SeqNo,
    /// Request digest.
    pub digest: Digest,
    /// Sending replica.
    pub replica: ReplicaId,
}

/// Replica's commitment to execute at the agreed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// View number.
    pub view: View,
    /// Sequence number.
    pub seq: SeqNo,
    /// Request digest.
    pub digest: Digest,
    /// Sending replica.
    pub replica: ReplicaId,
}

/// Execution result returned to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// View in which the request executed.
    pub view: View,
    /// Echo of the request timestamp.
    pub timestamp: u64,
    /// The client addressed.
    pub client: ClientId,
    /// Replying replica.
    pub replica: ReplicaId,
    /// Execution result bytes.
    pub result: Vec<u8>,
}

/// Periodic proof of state at a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sequence number of the checkpointed state.
    pub seq: SeqNo,
    /// Digest of the application state at `seq`.
    pub state_digest: Digest,
    /// Sending replica.
    pub replica: ReplicaId,
}

/// A prepared certificate carried in a view change: the pre-prepare plus
/// 2f matching prepares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedProof {
    /// The ordering proposal.
    pub pre_prepare: PrePrepare,
    /// 2f prepares matching it.
    pub prepares: Vec<Prepare>,
}

/// A replica's vote to move to a new view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The view being moved to.
    pub new_view: View,
    /// Last stable checkpoint sequence.
    pub stable_seq: SeqNo,
    /// 2f+1 checkpoint messages proving `stable_seq`.
    pub checkpoint_proof: Vec<Checkpoint>,
    /// Prepared certificates above `stable_seq`.
    pub prepared: Vec<PreparedProof>,
    /// Sending replica.
    pub replica: ReplicaId,
}

/// The new primary's installation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewView {
    /// The view being installed.
    pub view: View,
    /// 2f+1 view-change messages justifying the change.
    pub view_changes: Vec<ViewChange>,
    /// Re-issued pre-prepares for requests that must carry over.
    pub pre_prepares: Vec<PrePrepare>,
    /// The new primary.
    pub primary: ReplicaId,
}

/// Request for state transfer starting at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateFetch {
    /// The requester wants the stable state at or above this sequence.
    pub seq: SeqNo,
    /// Requesting replica.
    pub replica: ReplicaId,
}

/// State transfer payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateData {
    /// Sequence number of the snapshot.
    pub seq: SeqNo,
    /// Application snapshot bytes.
    pub snapshot: Vec<u8>,
    /// 2f+1 checkpoints proving the snapshot digest.
    pub proof: Vec<Checkpoint>,
    /// Sending replica.
    pub replica: ReplicaId,
}

/// Any protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client request.
    Request(ClientRequest),
    /// Ordering proposal.
    PrePrepare(PrePrepare),
    /// Order agreement.
    Prepare(Prepare),
    /// Execution commitment.
    Commit(Commit),
    /// Execution result.
    Reply(Reply),
    /// State proof.
    Checkpoint(Checkpoint),
    /// View-change vote.
    ViewChange(ViewChange),
    /// View installation.
    NewView(NewView),
    /// State transfer request.
    StateFetch(StateFetch),
    /// State transfer payload.
    StateData(StateData),
}

const TAG_REQUEST: u8 = 1;
const TAG_PRE_PREPARE: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_REPLY: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_VIEW_CHANGE: u8 = 7;
const TAG_NEW_VIEW: u8 = 8;
const TAG_STATE_FETCH: u8 = 9;
const TAG_STATE_DATA: u8 = 10;

fn write_digest(w: &mut Writer, d: &Digest) {
    w.raw(d.as_bytes());
}

fn read_digest(r: &mut Reader<'_>) -> Result<Digest, WireError> {
    Ok(Digest(r.raw(32)?.try_into().map_err(|_| WireError)?))
}

fn write_request(w: &mut Writer, m: &ClientRequest) {
    w.u64(m.client.0);
    w.u64(m.timestamp);
    w.bytes(&m.operation);
}

fn read_request(r: &mut Reader<'_>) -> Result<ClientRequest, WireError> {
    Ok(ClientRequest {
        client: ClientId(r.u64()?),
        timestamp: r.u64()?,
        operation: r.bytes()?.to_vec(),
    })
}

fn write_pre_prepare(w: &mut Writer, m: &PrePrepare) {
    w.u64(m.view.0);
    w.u64(m.seq.0);
    write_digest(w, &m.digest);
    w.u32(m.batch.requests.len() as u32);
    for req in &m.batch.requests {
        write_request(w, req);
    }
}

fn read_pre_prepare(r: &mut Reader<'_>) -> Result<PrePrepare, WireError> {
    let view = View(r.u64()?);
    let seq = SeqNo(r.u64()?);
    let digest = read_digest(r)?;
    let n_req = bounded(r.u32()?)?;
    let mut requests = Vec::with_capacity(n_req.min(64) as usize);
    for _ in 0..n_req {
        requests.push(read_request(r)?);
    }
    Ok(PrePrepare {
        view,
        seq,
        digest,
        batch: Batch { requests },
    })
}

fn write_prepare(w: &mut Writer, m: &Prepare) {
    w.u64(m.view.0);
    w.u64(m.seq.0);
    write_digest(w, &m.digest);
    w.u32(m.replica.0);
}

fn read_prepare(r: &mut Reader<'_>) -> Result<Prepare, WireError> {
    Ok(Prepare {
        view: View(r.u64()?),
        seq: SeqNo(r.u64()?),
        digest: read_digest(r)?,
        replica: ReplicaId(r.u32()?),
    })
}

fn write_commit(w: &mut Writer, m: &Commit) {
    w.u64(m.view.0);
    w.u64(m.seq.0);
    write_digest(w, &m.digest);
    w.u32(m.replica.0);
}

fn read_commit(r: &mut Reader<'_>) -> Result<Commit, WireError> {
    Ok(Commit {
        view: View(r.u64()?),
        seq: SeqNo(r.u64()?),
        digest: read_digest(r)?,
        replica: ReplicaId(r.u32()?),
    })
}

fn write_checkpoint(w: &mut Writer, m: &Checkpoint) {
    w.u64(m.seq.0);
    write_digest(w, &m.state_digest);
    w.u32(m.replica.0);
}

fn read_checkpoint(r: &mut Reader<'_>) -> Result<Checkpoint, WireError> {
    Ok(Checkpoint {
        seq: SeqNo(r.u64()?),
        state_digest: read_digest(r)?,
        replica: ReplicaId(r.u32()?),
    })
}

fn write_view_change(w: &mut Writer, m: &ViewChange) {
    w.u64(m.new_view.0);
    w.u64(m.stable_seq.0);
    w.u32(m.checkpoint_proof.len() as u32);
    for c in &m.checkpoint_proof {
        write_checkpoint(w, c);
    }
    w.u32(m.prepared.len() as u32);
    for p in &m.prepared {
        write_pre_prepare(w, &p.pre_prepare);
        w.u32(p.prepares.len() as u32);
        for pr in &p.prepares {
            write_prepare(w, pr);
        }
    }
    w.u32(m.replica.0);
}

const MAX_VEC: u32 = 1 << 16;

fn bounded(len: u32) -> Result<u32, WireError> {
    if len > MAX_VEC {
        Err(WireError)
    } else {
        Ok(len)
    }
}

fn read_view_change(r: &mut Reader<'_>) -> Result<ViewChange, WireError> {
    let new_view = View(r.u64()?);
    let stable_seq = SeqNo(r.u64()?);
    let n_cp = bounded(r.u32()?)?;
    let mut checkpoint_proof = Vec::with_capacity(n_cp.min(64) as usize);
    for _ in 0..n_cp {
        checkpoint_proof.push(read_checkpoint(r)?);
    }
    let n_prep = bounded(r.u32()?)?;
    let mut prepared = Vec::with_capacity(n_prep.min(64) as usize);
    for _ in 0..n_prep {
        let pre_prepare = read_pre_prepare(r)?;
        let n_pr = bounded(r.u32()?)?;
        let mut prepares = Vec::with_capacity(n_pr.min(64) as usize);
        for _ in 0..n_pr {
            prepares.push(read_prepare(r)?);
        }
        prepared.push(PreparedProof {
            pre_prepare,
            prepares,
        });
    }
    Ok(ViewChange {
        new_view,
        stable_seq,
        checkpoint_proof,
        prepared,
        replica: ReplicaId(r.u32()?),
    })
}

impl Message {
    /// Encodes to the compact wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Message::Request(m) => {
                w.u8(TAG_REQUEST);
                write_request(&mut w, m);
            }
            Message::PrePrepare(m) => {
                w.u8(TAG_PRE_PREPARE);
                write_pre_prepare(&mut w, m);
            }
            Message::Prepare(m) => {
                w.u8(TAG_PREPARE);
                write_prepare(&mut w, m);
            }
            Message::Commit(m) => {
                w.u8(TAG_COMMIT);
                write_commit(&mut w, m);
            }
            Message::Reply(m) => {
                w.u8(TAG_REPLY);
                w.u64(m.view.0);
                w.u64(m.timestamp);
                w.u64(m.client.0);
                w.u32(m.replica.0);
                w.bytes(&m.result);
            }
            Message::Checkpoint(m) => {
                w.u8(TAG_CHECKPOINT);
                write_checkpoint(&mut w, m);
            }
            Message::ViewChange(m) => {
                w.u8(TAG_VIEW_CHANGE);
                write_view_change(&mut w, m);
            }
            Message::NewView(m) => {
                w.u8(TAG_NEW_VIEW);
                w.u64(m.view.0);
                w.u32(m.view_changes.len() as u32);
                for vc in &m.view_changes {
                    write_view_change(&mut w, vc);
                }
                w.u32(m.pre_prepares.len() as u32);
                for pp in &m.pre_prepares {
                    write_pre_prepare(&mut w, pp);
                }
                w.u32(m.primary.0);
            }
            Message::StateFetch(m) => {
                w.u8(TAG_STATE_FETCH);
                w.u64(m.seq.0);
                w.u32(m.replica.0);
            }
            Message::StateData(m) => {
                w.u8(TAG_STATE_DATA);
                w.u64(m.seq.0);
                w.bytes(&m.snapshot);
                w.u32(m.proof.len() as u32);
                for c in &m.proof {
                    write_checkpoint(&mut w, c);
                }
                w.u32(m.replica.0);
            }
        }
        w.finish()
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, trailing garbage, unknown tags, or
    /// hostile length fields — all reachable by a Byzantine peer.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            TAG_REQUEST => Message::Request(read_request(&mut r)?),
            TAG_PRE_PREPARE => Message::PrePrepare(read_pre_prepare(&mut r)?),
            TAG_PREPARE => Message::Prepare(read_prepare(&mut r)?),
            TAG_COMMIT => Message::Commit(read_commit(&mut r)?),
            TAG_REPLY => Message::Reply(Reply {
                view: View(r.u64()?),
                timestamp: r.u64()?,
                client: ClientId(r.u64()?),
                replica: ReplicaId(r.u32()?),
                result: r.bytes()?.to_vec(),
            }),
            TAG_CHECKPOINT => Message::Checkpoint(read_checkpoint(&mut r)?),
            TAG_VIEW_CHANGE => Message::ViewChange(read_view_change(&mut r)?),
            TAG_NEW_VIEW => {
                let view = View(r.u64()?);
                let n_vc = bounded(r.u32()?)?;
                let mut view_changes = Vec::with_capacity(n_vc.min(64) as usize);
                for _ in 0..n_vc {
                    view_changes.push(read_view_change(&mut r)?);
                }
                let n_pp = bounded(r.u32()?)?;
                let mut pre_prepares = Vec::with_capacity(n_pp.min(64) as usize);
                for _ in 0..n_pp {
                    pre_prepares.push(read_pre_prepare(&mut r)?);
                }
                Message::NewView(NewView {
                    view,
                    view_changes,
                    pre_prepares,
                    primary: ReplicaId(r.u32()?),
                })
            }
            TAG_STATE_FETCH => Message::StateFetch(StateFetch {
                seq: SeqNo(r.u64()?),
                replica: ReplicaId(r.u32()?),
            }),
            TAG_STATE_DATA => {
                let seq = SeqNo(r.u64()?);
                let snapshot = r.bytes()?.to_vec();
                let n = bounded(r.u32()?)?;
                let mut proof = Vec::with_capacity(n.min(64) as usize);
                for _ in 0..n {
                    proof.push(read_checkpoint(&mut r)?);
                }
                Message::StateData(StateData {
                    seq,
                    snapshot,
                    proof,
                    replica: ReplicaId(r.u32()?),
                })
            }
            _ => return Err(WireError),
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// A short protocol-phase label for network statistics.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Request(_) => "bft-request",
            Message::PrePrepare(_) => "bft-pre-prepare",
            Message::Prepare(_) => "bft-prepare",
            Message::Commit(_) => "bft-commit",
            Message::Reply(_) => "bft-reply",
            Message::Checkpoint(_) => "bft-checkpoint",
            Message::ViewChange(_) => "bft-view-change",
            Message::NewView(_) => "bft-new-view",
            Message::StateFetch(_) => "bft-state-fetch",
            Message::StateData(_) => "bft-state-data",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> ClientRequest {
        ClientRequest {
            client: ClientId(9),
            timestamp: 3,
            operation: vec![1, 2, 3],
        }
    }

    fn sample_pre_prepare() -> PrePrepare {
        let batch = Batch {
            requests: vec![
                sample_request(),
                ClientRequest {
                    client: ClientId(10),
                    timestamp: 1,
                    operation: vec![4, 5],
                },
            ],
        };
        PrePrepare {
            view: View(1),
            seq: SeqNo(5),
            digest: batch.digest(),
            batch,
        }
    }

    fn all_messages() -> Vec<Message> {
        let req = sample_request();
        let pp = sample_pre_prepare();
        let prepare = Prepare {
            view: View(1),
            seq: SeqNo(5),
            digest: req.digest(),
            replica: ReplicaId(2),
        };
        let commit = Commit {
            view: View(1),
            seq: SeqNo(5),
            digest: req.digest(),
            replica: ReplicaId(2),
        };
        let checkpoint = Checkpoint {
            seq: SeqNo(16),
            state_digest: Digest::of(b"state"),
            replica: ReplicaId(1),
        };
        let vc = ViewChange {
            new_view: View(2),
            stable_seq: SeqNo(16),
            checkpoint_proof: vec![checkpoint],
            prepared: vec![PreparedProof {
                pre_prepare: pp.clone(),
                prepares: vec![prepare],
            }],
            replica: ReplicaId(3),
        };
        vec![
            Message::Request(req.clone()),
            Message::PrePrepare(pp.clone()),
            Message::Prepare(prepare),
            Message::Commit(commit),
            Message::Reply(Reply {
                view: View(1),
                timestamp: 3,
                client: ClientId(9),
                replica: ReplicaId(0),
                result: vec![42],
            }),
            Message::Checkpoint(checkpoint),
            Message::ViewChange(vc.clone()),
            Message::NewView(NewView {
                view: View(2),
                view_changes: vec![vc],
                pre_prepares: vec![pp],
                primary: ReplicaId(2),
            }),
            Message::StateFetch(StateFetch {
                seq: SeqNo(16),
                replica: ReplicaId(1),
            }),
            Message::StateData(StateData {
                seq: SeqNo(16),
                snapshot: vec![7, 8],
                proof: vec![checkpoint],
                replica: ReplicaId(0),
            }),
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in all_messages() {
            let bytes = msg.encode();
            assert_eq!(Message::decode(&bytes).unwrap(), msg, "{}", msg.label());
        }
    }

    #[test]
    fn batch_digest_binds_order_count_and_content() {
        let a = sample_request();
        let b = ClientRequest {
            client: ClientId(10),
            timestamp: 1,
            operation: vec![4, 5],
        };
        let ab = Batch {
            requests: vec![a.clone(), b.clone()],
        };
        let ba = Batch {
            requests: vec![b.clone(), a.clone()],
        };
        assert_ne!(ab.digest(), ba.digest(), "order matters");
        let just_a = Batch::single(a.clone());
        assert_ne!(ab.digest(), just_a.digest(), "dropped request detected");
        assert_ne!(just_a.digest(), a.digest(), "batch-of-one != raw request");
        let null = Batch::default();
        assert!(null.is_empty());
        assert_ne!(null.digest(), just_a.digest());
    }

    #[test]
    fn empty_batch_pre_prepare_round_trips() {
        let batch = Batch::default();
        let msg = Message::PrePrepare(PrePrepare {
            view: View(3),
            seq: SeqNo(9),
            digest: batch.digest(),
            batch,
        });
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn hostile_batch_length_rejected() {
        // a PRE-PREPARE claiming 2^30 requests in its batch
        let mut w = Writer::new();
        w.u8(2).u64(0).u64(1);
        w.raw(&[0u8; 32]);
        w.u32(1 << 30);
        assert!(Message::decode(&w.finish()).is_err());
    }

    #[test]
    fn digest_is_content_sensitive() {
        let a = sample_request();
        let mut b = a.clone();
        b.operation[0] ^= 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.timestamp += 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(Message::decode(&[200]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = all_messages()[2].encode();
        bytes.push(0);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_for_every_message() {
        for msg in all_messages() {
            let bytes = msg.encode();
            for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    Message::decode(&bytes[..cut]).is_err(),
                    "{} cut at {cut}",
                    msg.label()
                );
            }
        }
    }

    #[test]
    fn hostile_vector_length_rejected() {
        // craft a NEW-VIEW claiming 2^31 view-changes
        let mut w = Writer::new();
        w.u8(8).u64(1).u32(1 << 31);
        assert!(Message::decode(&w.finish()).is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            all_messages().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), all_messages().len());
    }
}
