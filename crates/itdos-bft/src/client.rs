//! The BFT client protocol.
//!
//! "A singleton client sends an invocation message to a replica group. The
//! replicas decide on the total order … Each replica computes the response
//! and delivers it to the client directly. The client waits for f+1 replies
//! with the same result; this is the result of the operation" (§3.1,
//! describing Castro–Liskov).
//!
//! At this layer replies are compared byte-for-byte — in ITDOS the BFT
//! reply is a *static acknowledgement*, identical on all correct replicas
//! regardless of platform; the real CORBA reply travels separately and is
//! voted by the VVM (§3.1).

use std::collections::BTreeMap;

use crate::config::{ClientId, GroupConfig, ReplicaId};
use crate::message::{ClientRequest, Reply};

/// One in-flight request's reply collection state.
#[derive(Debug, Clone)]
struct Outstanding {
    timestamp: u64,
    request: ClientRequest,
    replies: BTreeMap<ReplicaId, Vec<u8>>,
    decided: bool,
}

/// A BFT client for one replica group.
///
/// Single outstanding request at a time — exactly the ITDOS connection
/// model (§3.6: "only one outstanding request can exist for a connection").
///
/// # Examples
///
/// ```
/// use itdos_bft::client::Client;
/// use itdos_bft::config::{ClientId, GroupConfig};
///
/// let mut client = Client::new(ClientId(7), GroupConfig::for_f(1));
/// let request = client.start_request(vec![1, 2, 3]).expect("no outstanding request");
/// assert_eq!(request.client, ClientId(7));
/// ```
#[derive(Debug, Clone)]
pub struct Client {
    id: ClientId,
    config: GroupConfig,
    next_timestamp: u64,
    outstanding: Option<Outstanding>,
}

impl Client {
    /// Creates a client.
    pub fn new(id: ClientId, config: GroupConfig) -> Client {
        Client {
            id,
            config,
            next_timestamp: 1,
            outstanding: None,
        }
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// True while a request is outstanding and undecided.
    pub fn busy(&self) -> bool {
        self.outstanding.as_ref().is_some_and(|o| !o.decided)
    }

    /// Starts a request; returns the message to send to the group, or
    /// `None` if one is already outstanding.
    pub fn start_request(&mut self, operation: Vec<u8>) -> Option<ClientRequest> {
        if self.busy() {
            return None;
        }
        let timestamp = self.next_timestamp;
        self.next_timestamp += 1;
        let request = ClientRequest {
            client: self.id,
            timestamp,
            operation,
        };
        self.outstanding = Some(Outstanding {
            timestamp,
            request: request.clone(),
            replies: BTreeMap::new(),
            decided: false,
        });
        Some(request)
    }

    /// The current request, for retransmission after a timeout (PBFT
    /// clients retransmit to all replicas, which triggers reply resend or a
    /// view change).
    pub fn retransmit(&self) -> Option<ClientRequest> {
        self.outstanding
            .as_ref()
            .filter(|o| !o.decided)
            .map(|o| o.request.clone())
    }

    /// Processes one reply. Returns the accepted result the first time f+1
    /// matching replies have arrived.
    pub fn on_reply(&mut self, reply: Reply) -> Option<Vec<u8>> {
        let threshold = self.config.f + 1;
        let outstanding = self.outstanding.as_mut()?;
        if reply.client != self.id
            || reply.timestamp != outstanding.timestamp
            || outstanding.decided
        {
            return None; // late or foreign reply: discarded without penalty
        }
        if reply.replica.0 as usize >= self.config.n {
            return None;
        }
        outstanding.replies.insert(reply.replica, reply.result);
        // count matching results
        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in outstanding.replies.values() {
            *counts.entry(result.as_slice()).or_insert(0) += 1;
        }
        let winner = counts
            .iter()
            .find(|(_, c)| **c >= threshold)
            .map(|(r, _)| r.to_vec());
        if let Some(result) = winner {
            outstanding.decided = true;
            return Some(result);
        }
        None
    }

    /// Number of replies collected for the outstanding request.
    pub fn replies_collected(&self) -> usize {
        self.outstanding.as_ref().map_or(0, |o| o.replies.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::View;

    fn reply(client: &Client, replica: u32, ts: u64, result: &[u8]) -> Reply {
        Reply {
            view: View(0),
            timestamp: ts,
            client: client.id(),
            replica: ReplicaId(replica),
            result: result.to_vec(),
        }
    }

    fn client() -> Client {
        Client::new(ClientId(1), GroupConfig::for_f(1))
    }

    #[test]
    fn accepts_on_f_plus_1_matching() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"ok")), None);
        assert_eq!(c.on_reply(reply(&c, 1, 1, b"ok")), Some(b"ok".to_vec()));
    }

    #[test]
    fn byzantine_reply_does_not_count_toward_quorum() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"evil")), None);
        assert_eq!(c.on_reply(reply(&c, 1, 1, b"ok")), None);
        assert_eq!(c.on_reply(reply(&c, 2, 1, b"ok")), Some(b"ok".to_vec()));
    }

    #[test]
    fn duplicate_replica_replies_overwrite_not_double_count() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"ok")), None);
        assert_eq!(
            c.on_reply(reply(&c, 0, 1, b"ok")),
            None,
            "same replica twice"
        );
    }

    #[test]
    fn one_request_at_a_time() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert!(c.start_request(vec![1]).is_none());
        assert!(c.busy());
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        assert!(!c.busy(), "decided");
        assert!(c.start_request(vec![1]).is_some());
    }

    #[test]
    fn stale_timestamp_ignored() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        c.start_request(vec![1]).unwrap();
        // replies for ts=1 arrive late during ts=2
        assert_eq!(c.on_reply(reply(&c, 2, 1, b"ok")), None);
        assert_eq!(c.replies_collected(), 0);
    }

    #[test]
    fn out_of_range_replica_ignored() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 99, 1, b"ok")), None);
        assert_eq!(c.replies_collected(), 0);
    }

    #[test]
    fn retransmit_returns_outstanding_request() {
        let mut c = client();
        let req = c.start_request(vec![5]).unwrap();
        assert_eq!(c.retransmit(), Some(req));
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        assert_eq!(
            c.retransmit(),
            None,
            "decided requests are not retransmitted"
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut c = client();
        let r1 = c.start_request(vec![0]).unwrap();
        c.on_reply(reply(&c, 0, r1.timestamp, b"ok"));
        c.on_reply(reply(&c, 1, r1.timestamp, b"ok"));
        let r2 = c.start_request(vec![1]).unwrap();
        assert!(r2.timestamp > r1.timestamp);
    }
}
