//! The BFT client protocol.
//!
//! "A singleton client sends an invocation message to a replica group. The
//! replicas decide on the total order … Each replica computes the response
//! and delivers it to the client directly. The client waits for f+1 replies
//! with the same result; this is the result of the operation" (§3.1,
//! describing Castro–Liskov).
//!
//! At this layer replies are compared byte-for-byte — in ITDOS the BFT
//! reply is a *static acknowledgement*, identical on all correct replicas
//! regardless of platform; the real CORBA reply travels separately and is
//! voted by the VVM (§3.1).
//!
//! The default window of one outstanding request is the classic PBFT
//! client (and the ITDOS §3.6 connection model); [`Client::set_window`]
//! raises it so a pipelining caller can keep several timestamps in flight
//! and let the primary batch them under one sequence number.

use std::collections::BTreeMap;

use crate::config::{ClientId, GroupConfig, ReplicaId};
use crate::message::{ClientRequest, Reply};

/// One in-flight request's reply collection state.
#[derive(Debug, Clone)]
struct Outstanding {
    request: ClientRequest,
    replies: BTreeMap<ReplicaId, Vec<u8>>,
}

/// A BFT client for one replica group.
///
/// At most `window` undecided requests at a time (default 1 — §3.6: "only
/// one outstanding request can exist for a connection"); each in-flight
/// request collects replies independently, keyed by its timestamp.
///
/// # Examples
///
/// ```
/// use itdos_bft::client::Client;
/// use itdos_bft::config::{ClientId, GroupConfig};
///
/// let mut client = Client::new(ClientId(7), GroupConfig::for_f(1));
/// let request = client.start_request(vec![1, 2, 3]).expect("no outstanding request");
/// assert_eq!(request.client, ClientId(7));
/// ```
#[derive(Debug, Clone)]
pub struct Client {
    id: ClientId,
    config: GroupConfig,
    next_timestamp: u64,
    window: usize,
    /// Undecided requests by timestamp; an entry is removed the moment its
    /// result is accepted, so late replies are discarded without penalty.
    outstanding: BTreeMap<u64, Outstanding>,
}

impl Client {
    /// Creates a client with a window of one outstanding request.
    pub fn new(id: ClientId, config: GroupConfig) -> Client {
        Client {
            id,
            config,
            next_timestamp: 1,
            window: 1,
            outstanding: BTreeMap::new(),
        }
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Sets the number of requests that may be in flight concurrently
    /// (clamped to at least 1).
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// The configured in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// True while the in-flight window is full.
    pub fn busy(&self) -> bool {
        self.outstanding.len() >= self.window
    }

    /// Number of undecided requests in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Starts a request; returns the message to send to the group, or
    /// `None` if the window is full.
    pub fn start_request(&mut self, operation: Vec<u8>) -> Option<ClientRequest> {
        if self.busy() {
            return None;
        }
        let timestamp = self.next_timestamp;
        self.next_timestamp += 1;
        let request = ClientRequest {
            client: self.id,
            timestamp,
            operation,
        };
        self.outstanding.insert(
            timestamp,
            Outstanding {
                request: request.clone(),
                replies: BTreeMap::new(),
            },
        );
        Some(request)
    }

    /// The oldest undecided request, for retransmission after a timeout
    /// (PBFT clients retransmit to all replicas, which triggers reply
    /// resend or a view change).
    pub fn retransmit(&self) -> Option<ClientRequest> {
        self.outstanding.values().next().map(|o| o.request.clone())
    }

    /// Every undecided request, oldest first (pipelined retransmission).
    pub fn retransmit_all(&self) -> Vec<ClientRequest> {
        self.outstanding
            .values()
            .map(|o| o.request.clone())
            .collect()
    }

    /// Processes one reply. Returns `(timestamp, result)` the first time
    /// f+1 matching replies have arrived for that timestamp.
    pub fn on_reply(&mut self, reply: Reply) -> Option<(u64, Vec<u8>)> {
        let threshold = self.config.f + 1;
        if reply.client != self.id || reply.replica.0 as usize >= self.config.n {
            return None;
        }
        let outstanding = self.outstanding.get_mut(&reply.timestamp)?;
        outstanding.replies.insert(reply.replica, reply.result);
        // count matching results
        let mut counts: BTreeMap<&[u8], usize> = BTreeMap::new();
        for result in outstanding.replies.values() {
            *counts.entry(result.as_slice()).or_insert(0) += 1;
        }
        let winner = counts
            .iter()
            .find(|(_, c)| **c >= threshold)
            .map(|(r, _)| r.to_vec());
        if let Some(result) = winner {
            self.outstanding.remove(&reply.timestamp);
            return Some((reply.timestamp, result));
        }
        None
    }

    /// Total replies collected across undecided requests.
    pub fn replies_collected(&self) -> usize {
        self.outstanding.values().map(|o| o.replies.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::View;

    fn reply(client: &Client, replica: u32, ts: u64, result: &[u8]) -> Reply {
        Reply {
            view: View(0),
            timestamp: ts,
            client: client.id(),
            replica: ReplicaId(replica),
            result: result.to_vec(),
        }
    }

    fn client() -> Client {
        Client::new(ClientId(1), GroupConfig::for_f(1))
    }

    #[test]
    fn accepts_on_f_plus_1_matching() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"ok")), None);
        assert_eq!(
            c.on_reply(reply(&c, 1, 1, b"ok")),
            Some((1, b"ok".to_vec()))
        );
    }

    #[test]
    fn byzantine_reply_does_not_count_toward_quorum() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"evil")), None);
        assert_eq!(c.on_reply(reply(&c, 1, 1, b"ok")), None);
        assert_eq!(
            c.on_reply(reply(&c, 2, 1, b"ok")),
            Some((1, b"ok".to_vec()))
        );
    }

    #[test]
    fn duplicate_replica_replies_overwrite_not_double_count() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 0, 1, b"ok")), None);
        assert_eq!(
            c.on_reply(reply(&c, 0, 1, b"ok")),
            None,
            "same replica twice"
        );
    }

    #[test]
    fn one_request_at_a_time_by_default() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert!(c.start_request(vec![1]).is_none());
        assert!(c.busy());
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        assert!(!c.busy(), "decided");
        assert!(c.start_request(vec![1]).is_some());
    }

    #[test]
    fn window_allows_pipelined_requests() {
        let mut c = client();
        c.set_window(3);
        let r1 = c.start_request(vec![1]).unwrap();
        let r2 = c.start_request(vec![2]).unwrap();
        let r3 = c.start_request(vec![3]).unwrap();
        assert!(c.busy(), "window of 3 full");
        assert!(c.start_request(vec![4]).is_none());
        assert!(r1.timestamp < r2.timestamp && r2.timestamp < r3.timestamp);
        // replies may decide out of submission order
        c.on_reply(reply(&c, 0, r2.timestamp, b"b"));
        assert_eq!(
            c.on_reply(reply(&c, 1, r2.timestamp, b"b")),
            Some((r2.timestamp, b"b".to_vec()))
        );
        assert_eq!(c.in_flight(), 2);
        assert!(!c.busy(), "slot freed");
        assert_eq!(c.retransmit().unwrap().timestamp, r1.timestamp, "oldest");
        assert_eq!(c.retransmit_all().len(), 2);
    }

    #[test]
    fn stale_timestamp_ignored() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        c.start_request(vec![1]).unwrap();
        // replies for ts=1 arrive late during ts=2
        assert_eq!(c.on_reply(reply(&c, 2, 1, b"ok")), None);
        assert_eq!(c.replies_collected(), 0);
    }

    #[test]
    fn out_of_range_replica_ignored() {
        let mut c = client();
        c.start_request(vec![0]).unwrap();
        assert_eq!(c.on_reply(reply(&c, 99, 1, b"ok")), None);
        assert_eq!(c.replies_collected(), 0);
    }

    #[test]
    fn retransmit_returns_outstanding_request() {
        let mut c = client();
        let req = c.start_request(vec![5]).unwrap();
        assert_eq!(c.retransmit(), Some(req));
        c.on_reply(reply(&c, 0, 1, b"ok"));
        c.on_reply(reply(&c, 1, 1, b"ok"));
        assert_eq!(
            c.retransmit(),
            None,
            "decided requests are not retransmitted"
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut c = client();
        let r1 = c.start_request(vec![0]).unwrap();
        c.on_reply(reply(&c, 0, r1.timestamp, b"ok"));
        c.on_reply(reply(&c, 1, r1.timestamp, b"ok"));
        let r2 = c.start_request(vec![1]).unwrap();
        assert!(r2.timestamp > r1.timestamp);
    }
}
