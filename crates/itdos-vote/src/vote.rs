//! Threshold voting over candidate values.
//!
//! The §3.6 rules: a voter needs **f+1 identical (equivalent) messages**
//! out of **at least 2f+1 received** to decide, and must *not* wait for all
//! 3f+1 ("that would cause the system to be vulnerable to network delays
//! and faulty processes that may be deliberately slow"). Because inexact
//! equivalence is non-transitive, candidates are clustered around pivots:
//! a candidate supports a pivot if it is equivalent *to the pivot*
//! (Parhami's inexact-voting formulation \[31\]).

use itdos_giop::types::Value;

use crate::comparator::Comparator;

/// Identifies the sender of one candidate value (a replication domain
/// element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SenderId(pub u32);

/// One candidate in a vote.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Who sent it.
    pub sender: SenderId,
    /// The unmarshalled value.
    pub value: Value,
}

/// The outcome of a vote attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum VoteOutcome {
    /// Not enough agreeing candidates yet.
    Pending,
    /// A value reached the decision threshold.
    Decided(Decision),
}

/// A successful vote.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The winning value (the pivot of the winning cluster).
    pub value: Value,
    /// Senders whose candidate supported the winner.
    pub supporters: Vec<SenderId>,
    /// Senders whose candidate did **not** support the winner — fault
    /// suspects (§3.6: detection is not completely reliable; a suspect may
    /// also be a correct replica whose value fell outside the pivot's
    /// tolerance).
    pub dissenters: Vec<SenderId>,
}

/// Runs one vote over `candidates` requiring `threshold` equivalent values.
///
/// Every candidate is tried as a pivot (so a Byzantine value cannot split
/// an honest cluster by arriving first); the first pivot in sender order
/// reaching `threshold` support wins, making the vote deterministic given
/// the candidate list — the property §3.6 relies on so replicated voters
/// need not synchronize.
pub fn vote(candidates: &[Candidate], comparator: &Comparator, threshold: usize) -> VoteOutcome {
    if threshold == 0 || candidates.len() < threshold {
        return VoteOutcome::Pending;
    }
    let mut order: Vec<&Candidate> = candidates.iter().collect();
    order.sort_by_key(|c| c.sender);
    for pivot in &order {
        let supporters: Vec<SenderId> = order
            .iter()
            .filter(|c| comparator.equivalent(&pivot.value, &c.value))
            .map(|c| c.sender)
            .collect();
        if supporters.len() >= threshold {
            let dissenters = order
                .iter()
                .filter(|c| !supporters.contains(&c.sender))
                .map(|c| c.sender)
                .collect();
            return VoteOutcome::Decided(Decision {
                value: pivot.value.clone(),
                supporters,
                dissenters,
            });
        }
    }
    VoteOutcome::Pending
}

/// Vote thresholds for a domain tolerating `f` faults (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Maximum simultaneous faults tolerated.
    pub f: usize,
}

impl Thresholds {
    /// Creates thresholds for `f` tolerated faults.
    pub fn new(f: usize) -> Thresholds {
        Thresholds { f }
    }

    /// Minimum domain size, `3f + 1`.
    pub fn domain_size(&self) -> usize {
        3 * self.f + 1
    }

    /// Identical values required to decide, `f + 1`.
    pub fn decide(&self) -> usize {
        self.f + 1
    }

    /// Messages that must arrive before a vote is attempted, `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(sender: u32, v: i32) -> Candidate {
        Candidate {
            sender: SenderId(sender),
            value: Value::Long(v),
        }
    }

    fn candf(sender: u32, v: f64) -> Candidate {
        Candidate {
            sender: SenderId(sender),
            value: Value::Double(v),
        }
    }

    #[test]
    fn unanimous_vote_decides() {
        let cs = vec![cand(0, 5), cand(1, 5), cand(2, 5)];
        match vote(&cs, &Comparator::Exact, 2) {
            VoteOutcome::Decided(d) => {
                assert_eq!(d.value, Value::Long(5));
                assert_eq!(d.supporters.len(), 3);
                assert!(d.dissenters.is_empty());
            }
            VoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn one_byzantine_value_is_outvoted_and_flagged() {
        let cs = vec![cand(0, 5), cand(1, 999), cand(2, 5)];
        match vote(&cs, &Comparator::Exact, 2) {
            VoteOutcome::Decided(d) => {
                assert_eq!(d.value, Value::Long(5));
                assert_eq!(d.dissenters, vec![SenderId(1)]);
            }
            VoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn below_threshold_is_pending() {
        let cs = vec![cand(0, 5), cand(1, 6)];
        assert_eq!(vote(&cs, &Comparator::Exact, 2), VoteOutcome::Pending);
    }

    #[test]
    fn fewer_candidates_than_threshold_is_pending() {
        let cs = vec![cand(0, 5)];
        assert_eq!(vote(&cs, &Comparator::Exact, 2), VoteOutcome::Pending);
    }

    #[test]
    fn byzantine_pivot_cannot_steal_vote() {
        // Byzantine sender 0 sends a value equivalent (within tolerance) to
        // both honest camps; pivoting must still find an honest cluster.
        let c = Comparator::InexactAbs(1.0);
        let cs = vec![candf(0, 0.9), candf(1, 0.0), candf(2, 0.05)];
        match vote(&cs, &c, 2) {
            VoteOutcome::Decided(d) => {
                // pivot 0 (0.9) is supported by all three -> wins first in
                // sender order; the decided value is within tolerance of the
                // honest values, so the client still gets a correct-enough
                // answer per inexact-voting semantics
                assert!(d.supporters.len() >= 2);
            }
            VoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn non_transitive_cluster_found_via_pivoting() {
        // values 0.0, 0.9, 1.8 with eps 1.0: pivot 0.9 sees all three
        let c = Comparator::InexactAbs(1.0);
        let cs = vec![candf(0, 0.0), candf(1, 0.9), candf(2, 1.8)];
        match vote(&cs, &c, 3) {
            VoteOutcome::Decided(d) => {
                assert_eq!(d.value, Value::Double(0.9), "middle pivot unifies");
                assert_eq!(d.supporters.len(), 3);
            }
            VoteOutcome::Pending => panic!("pivoting should find the middle"),
        }
    }

    #[test]
    fn vote_is_deterministic_in_candidate_order() {
        let a = vec![cand(2, 5), cand(0, 7), cand(1, 5)];
        let b = vec![cand(0, 7), cand(1, 5), cand(2, 5)];
        assert_eq!(
            vote(&a, &Comparator::Exact, 2),
            vote(&b, &Comparator::Exact, 2)
        );
    }

    #[test]
    fn zero_threshold_never_decides() {
        let cs = vec![cand(0, 5)];
        assert_eq!(vote(&cs, &Comparator::Exact, 0), VoteOutcome::Pending);
    }

    #[test]
    fn thresholds_match_paper() {
        let t = Thresholds::new(2);
        assert_eq!(t.domain_size(), 7);
        assert_eq!(t.decide(), 3);
        assert_eq!(t.quorum(), 5);
    }

    #[test]
    fn split_vote_with_no_majority_is_pending() {
        let cs = vec![cand(0, 1), cand(1, 2), cand(2, 3)];
        assert_eq!(vote(&cs, &Comparator::Exact, 2), VoteOutcome::Pending);
    }
}
