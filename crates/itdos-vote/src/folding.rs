//! Mapping GIOP messages to votable [`Value`] trees and back.
//!
//! The voter compares *unmarshalled* messages (§3.6). A whole request or
//! reply — headers and body — is folded into one `Value` so a single
//! comparator program covers it: headers compare exactly, the body uses
//! the interface's registered program (e.g. inexact floats).

use crate::comparator::Comparator;
use itdos_giop::giop::{ReplyBody, ReplyMessage, RequestMessage};
use itdos_giop::types::Value;

/// Folds a request into a votable value:
/// `{interface, operation, object_key, args…}`.
pub fn request_to_value(request: &RequestMessage) -> Value {
    Value::Struct(vec![
        Value::String(request.interface.clone()),
        Value::String(request.operation.clone()),
        Value::Sequence(
            request
                .object_key
                .iter()
                .map(|b| Value::Octet(*b))
                .collect(),
        ),
        Value::Struct(request.args.clone()),
    ])
}

/// Reconstructs a request from a decided value.
///
/// Returns `None` when the value does not have request shape (possible
/// only if the voter decided on Byzantine-crafted values, which the
/// comparator's exact header comparison makes require f+1 colluders).
pub fn value_to_request(request_id: u64, value: &Value) -> Option<RequestMessage> {
    let Value::Struct(parts) = value else {
        return None;
    };
    let [Value::String(interface), Value::String(operation), Value::Sequence(key), Value::Struct(args)] =
        parts.as_slice()
    else {
        return None;
    };
    let object_key: Option<Vec<u8>> = key
        .iter()
        .map(|v| match v {
            Value::Octet(b) => Some(*b),
            _ => None,
        })
        .collect();
    Some(RequestMessage {
        request_id,
        response_expected: true,
        object_key: object_key?,
        interface: interface.clone(),
        operation: operation.clone(),
        args: args.clone(),
    })
}

const STATUS_RESULT: u32 = 0;
const STATUS_USER: u32 = 1;
const STATUS_SYSTEM: u32 = 2;

/// Folds a reply into a votable value: `{interface, operation, status,
/// payload}`.
pub fn reply_to_value(reply: &ReplyMessage) -> Value {
    let (status, payload) = match &reply.body {
        ReplyBody::Result(v) => (STATUS_RESULT, v.clone()),
        ReplyBody::UserException { name } => (STATUS_USER, Value::String(name.clone())),
        ReplyBody::SystemException { minor } => (STATUS_SYSTEM, Value::ULong(*minor)),
    };
    Value::Struct(vec![
        Value::String(reply.interface.clone()),
        Value::String(reply.operation.clone()),
        Value::ULong(status),
        payload,
    ])
}

/// Reconstructs a reply from a decided value.
pub fn value_to_reply(request_id: u64, value: &Value) -> Option<ReplyMessage> {
    let Value::Struct(parts) = value else {
        return None;
    };
    let [Value::String(interface), Value::String(operation), Value::ULong(status), payload] =
        parts.as_slice()
    else {
        return None;
    };
    let body = match *status {
        STATUS_RESULT => ReplyBody::Result(payload.clone()),
        STATUS_USER => match payload {
            Value::String(name) => ReplyBody::UserException { name: name.clone() },
            _ => return None,
        },
        STATUS_SYSTEM => match payload {
            Value::ULong(minor) => ReplyBody::SystemException { minor: *minor },
            _ => return None,
        },
        _ => return None,
    };
    Some(ReplyMessage {
        request_id,
        interface: interface.clone(),
        operation: operation.clone(),
        body,
    })
}

/// The comparator for folded messages: exact headers, the interface's
/// program on the body.
pub fn folded_comparator(body: Comparator) -> Comparator {
    Comparator::Struct(vec![
        Comparator::Exact, // interface
        Comparator::Exact, // operation / status position varies but both exact
        Comparator::Exact, // object key or status
        body,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> RequestMessage {
        RequestMessage {
            request_id: 7,
            response_expected: true,
            object_key: vec![1, 2],
            interface: "I".into(),
            operation: "op".into(),
            args: vec![Value::Long(5), Value::Double(1.5)],
        }
    }

    #[test]
    fn request_round_trips() {
        let r = request();
        let v = request_to_value(&r);
        assert_eq!(value_to_request(7, &v), Some(r));
    }

    #[test]
    fn reply_round_trips_all_bodies() {
        for body in [
            ReplyBody::Result(Value::Double(2.5)),
            ReplyBody::UserException { name: "E".into() },
            ReplyBody::SystemException { minor: 3 },
        ] {
            let r = ReplyMessage {
                request_id: 9,
                interface: "I".into(),
                operation: "op".into(),
                body,
            };
            let v = reply_to_value(&r);
            assert_eq!(value_to_reply(9, &v), Some(r));
        }
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(value_to_request(1, &Value::Long(1)).is_none());
        assert!(value_to_reply(1, &Value::Struct(vec![])).is_none());
        // wrong key element type
        let v = Value::Struct(vec![
            Value::String("I".into()),
            Value::String("op".into()),
            Value::Sequence(vec![Value::Long(1)]),
            Value::Struct(vec![]),
        ]);
        assert!(value_to_request(1, &v).is_none());
    }

    #[test]
    fn folded_comparator_inexact_body_exact_headers() {
        let cmp = folded_comparator(Comparator::InexactRel(1e-6));
        let mut a = request();
        let mut b = request();
        b.args = vec![Value::Long(5), Value::Double(1.5 + 1e-9)];
        assert!(cmp.equivalent(&request_to_value(&a), &request_to_value(&b)));
        // header mismatch is never tolerated
        b.operation = "other".into();
        assert!(!cmp.equivalent(&request_to_value(&a), &request_to_value(&b)));
        // body beyond tolerance
        b = request();
        b.args = vec![Value::Long(5), Value::Double(2.5)];
        a.args = vec![Value::Long(5), Value::Double(1.5)];
        assert!(!cmp.equivalent(&request_to_value(&a), &request_to_value(&b)));
    }

    #[test]
    fn reply_comparator_distinguishes_statuses() {
        let cmp = folded_comparator(Comparator::InexactRel(1e-6));
        let result = ReplyMessage {
            request_id: 1,
            interface: "I".into(),
            operation: "op".into(),
            body: ReplyBody::Result(Value::ULong(3)),
        };
        let exc = ReplyMessage {
            request_id: 1,
            interface: "I".into(),
            operation: "op".into(),
            body: ReplyBody::SystemException { minor: 3 },
        };
        assert!(!cmp.equivalent(&reply_to_value(&result), &reply_to_value(&exc)));
    }
}
