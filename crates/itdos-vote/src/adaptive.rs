//! Adaptive voting (the paper's §4 future-work item, implemented as an
//! extension).
//!
//! "We are considering the possibility of adaptive voting such as outlined
//! in \[32\]" — Parameswaran, Blough & Bakken's precision-vs-fault-tolerance
//! trade-off: a *tighter* epsilon yields a more precise agreed value but
//! tolerates less platform divergence (correct replicas fall outside the
//! cluster); a *looser* epsilon masks more divergence but lets a Byzantine
//! value hide inside the tolerance band.
//!
//! The adaptive voter walks an epsilon ladder: it starts at the most
//! precise step and widens only until a decision is reached, then reports
//! the precision actually achieved — benchmark E12 sweeps this trade-off.

use crate::comparator::Comparator;
use crate::vote::{vote, Candidate, Decision, VoteOutcome};

/// Outcome of an adaptive vote.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDecision {
    /// The decision reached.
    pub decision: Decision,
    /// The epsilon at which consensus was achieved (smaller = more
    /// precise).
    pub epsilon: f64,
    /// How many ladder steps were widened before deciding (0 = decided at
    /// the most precise step).
    pub widenings: usize,
}

/// An adaptive voter with a fixed epsilon ladder.
///
/// # Examples
///
/// ```
/// use itdos_giop::types::Value;
/// use itdos_vote::adaptive::AdaptiveVoter;
/// use itdos_vote::vote::{Candidate, SenderId};
///
/// let voter = AdaptiveVoter::new(vec![1e-12, 1e-9, 1e-6]);
/// let candidates: Vec<Candidate> = [100.0, 100.0000001, 100.0000002]
///     .iter()
///     .enumerate()
///     .map(|(i, v)| Candidate { sender: SenderId(i as u32), value: Value::Double(*v) })
///     .collect();
/// let d = voter.vote(&candidates, 3).expect("consensus");
/// assert!(d.epsilon <= 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveVoter {
    ladder: Vec<f64>,
}

impl AdaptiveVoter {
    /// Creates a voter from an epsilon ladder, sorted ascending (most
    /// precise first).
    ///
    /// # Panics
    ///
    /// Panics on an empty ladder or non-positive epsilon.
    pub fn new(mut ladder: Vec<f64>) -> AdaptiveVoter {
        assert!(!ladder.is_empty(), "epsilon ladder must not be empty");
        assert!(ladder.iter().all(|e| *e > 0.0), "epsilons must be positive");
        ladder.sort_by(|a, b| a.partial_cmp(b).expect("no NaN epsilons"));
        AdaptiveVoter { ladder }
    }

    /// A default ladder spanning float noise (1e-12) to measurement-grade
    /// tolerance (1e-3).
    pub fn default_ladder() -> AdaptiveVoter {
        AdaptiveVoter::new(vec![1e-12, 1e-9, 1e-6, 1e-3])
    }

    /// The ladder in use.
    pub fn ladder(&self) -> &[f64] {
        &self.ladder
    }

    /// Votes, widening epsilon until `threshold` support is found.
    ///
    /// Returns `None` if even the loosest epsilon cannot decide.
    pub fn vote(&self, candidates: &[Candidate], threshold: usize) -> Option<AdaptiveDecision> {
        for (widenings, &epsilon) in self.ladder.iter().enumerate() {
            let comparator = Comparator::InexactRel(epsilon);
            if let VoteOutcome::Decided(decision) = vote(candidates, &comparator, threshold) {
                return Some(AdaptiveDecision {
                    decision,
                    epsilon,
                    widenings,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::SenderId;
    use itdos_giop::types::Value;

    fn candidates(values: &[f64]) -> Vec<Candidate> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| Candidate {
                sender: SenderId(i as u32),
                value: Value::Double(*v),
            })
            .collect()
    }

    #[test]
    fn tight_agreement_decides_at_most_precise_step() {
        let voter = AdaptiveVoter::default_ladder();
        let cs = candidates(&[5.0, 5.0, 5.0]);
        let d = voter.vote(&cs, 3).unwrap();
        assert_eq!(d.widenings, 0);
        assert_eq!(d.epsilon, 1e-12);
    }

    #[test]
    fn platform_divergence_forces_widening() {
        let voter = AdaptiveVoter::default_ladder();
        // values diverge by ~1e-7 relative: 1e-12 and 1e-9 fail, 1e-6 works
        let cs = candidates(&[1.0, 1.0 + 1e-7, 1.0 - 1e-7]);
        let d = voter.vote(&cs, 3).unwrap();
        assert_eq!(d.epsilon, 1e-6);
        assert!(d.widenings >= 1);
    }

    #[test]
    fn hopeless_disagreement_returns_none() {
        let voter = AdaptiveVoter::default_ladder();
        let cs = candidates(&[1.0, 2.0, 3.0]);
        assert!(voter.vote(&cs, 2).is_none());
    }

    #[test]
    fn byzantine_outlier_excluded_at_tight_epsilon() {
        let voter = AdaptiveVoter::default_ladder();
        let cs = candidates(&[10.0, 10.0, 10.5]);
        let d = voter.vote(&cs, 2).unwrap();
        assert_eq!(d.widenings, 0, "two exact copies decide immediately");
        assert_eq!(d.decision.dissenters, vec![SenderId(2)]);
    }

    #[test]
    fn looser_epsilon_hides_byzantine_value_tradeoff() {
        // the dark side of widening: at 1e-3 a subtly wrong value becomes a
        // supporter — precision lost, fault masked
        let voter = AdaptiveVoter::new(vec![1e-3]);
        let cs = candidates(&[10.0, 10.0, 10.005]);
        let d = voter.vote(&cs, 3).unwrap();
        assert!(
            d.decision.dissenters.is_empty(),
            "outlier admitted at loose eps"
        );
    }

    #[test]
    fn ladder_is_sorted_on_construction() {
        let voter = AdaptiveVoter::new(vec![1e-3, 1e-9, 1e-6]);
        assert_eq!(voter.ladder(), &[1e-9, 1e-6, 1e-3]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_ladder_panics() {
        AdaptiveVoter::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_epsilon_panics() {
        AdaptiveVoter::new(vec![0.0]);
    }
}
