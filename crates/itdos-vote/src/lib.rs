//! # itdos-vote — voting on unmarshalled CORBA values
//!
//! The key to heterogeneous intrusion tolerance (§3.6 of the paper):
//! because marshalled GIOP differs across platforms, ITDOS votes in
//! middleware *after* unmarshalling, using a Voting Virtual Machine whose
//! programs ([`comparator::Comparator`]) select exact or inexact
//! comparison per component.
//!
//! * [`comparator`] — the VVM instruction set: exact, inexact
//!   (absolute/relative epsilon, deliberately non-transitive), ignore,
//!   struct/sequence sub-programs;
//! * [`vote`] — pivot-based threshold voting: decide on `f+1` equivalent
//!   of at least `2f+1` received, never waiting for all `3f+1`;
//! * [`collator`] — the per-connection voter object: request-id matching,
//!   discard-without-penalty, late-arrival fault flagging, and garbage
//!   collection;
//! * [`detector`] — signed-message fault proofs and Group-Manager-side
//!   proof validation (signatures, replay watermarks, unmarshal, re-vote);
//! * [`byte`] — the byte-by-byte baseline (Immune-style) that fails under
//!   heterogeneity, kept for experiment E6;
//! * [`approval`] — Parhami-style approval voting \[31\]: an arbitrary
//!   (possibly asymmetric) acceptance relation replaces equivalence;
//! * [`adaptive`] — the §4 future-work adaptive voter (precision vs fault
//!   tolerance ladder), implemented as an extension for experiment E12.
//!
//! # Examples
//!
//! ```
//! use itdos_giop::types::Value;
//! use itdos_vote::collator::{Accept, Collator};
//! use itdos_vote::comparator::Comparator;
//! use itdos_vote::vote::{SenderId, Thresholds};
//!
//! // An f = 1 replicated sensor: replicas on different platforms return
//! // slightly different doubles; inexact voting unifies them.
//! let mut voter = Collator::new(Thresholds::new(1), Comparator::InexactRel(1e-6));
//! voter.begin(1);
//! voter.offer(1, SenderId(0), Value::Double(20.000000));
//! voter.offer(1, SenderId(1), Value::Double(20.000001));
//! match voter.offer(1, SenderId(2), Value::Double(99.9)) {
//!     Accept::Decided(d) => assert_eq!(d.dissenters, vec![SenderId(2)]),
//!     other => panic!("expected decision, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod approval;
pub mod byte;
pub mod collator;
pub mod comparator;
pub mod detector;
pub mod folding;
pub mod vote;

pub use collator::{Accept, Collator};
pub use comparator::Comparator;
pub use detector::{FaultProof, SignedReply, Verdict};
pub use vote::{Decision, SenderId, Thresholds};
