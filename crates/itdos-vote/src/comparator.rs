//! Equivalence comparators — the instruction set of the Voting Virtual
//! Machine.
//!
//! ITDOS "bases its voting mechanism on the Voting Virtual Machine \[3\]"
//! (§3.6): instead of comparing raw bytes, a per-connection *program*
//! describes how to compare unmarshalled values, field by field. The
//! program mirrors the value's type structure and selects exact or inexact
//! comparison per component.
//!
//! Inexact comparison is deliberately **non-transitive** (§3.6: "if a = b
//! and b = c, this does not imply that a = c"), which is why voting uses
//! pivot-based clustering rather than equivalence classes.

use itdos_giop::types::Value;

/// A comparator program node.
///
/// # Examples
///
/// ```
/// use itdos_giop::types::Value;
/// use itdos_vote::comparator::Comparator;
///
/// // A struct whose first field must match exactly and whose second is a
/// // measured float compared within 1e-6 relative error.
/// let cmp = Comparator::Struct(vec![
///     Comparator::Exact,
///     Comparator::InexactRel(1e-6),
/// ]);
/// let a = Value::Struct(vec![Value::Long(1), Value::Double(100.0)]);
/// let b = Value::Struct(vec![Value::Long(1), Value::Double(100.00001)]);
/// assert!(cmp.equivalent(&a, &b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Comparator {
    /// Values must be structurally identical (exact voting).
    Exact,
    /// Numeric values may differ by at most `epsilon` absolutely; applies
    /// recursively to every numeric leaf under this node.
    InexactAbs(f64),
    /// Numeric values may differ by at most `epsilon · max(|a|, |b|)`;
    /// applies recursively to every numeric leaf under this node.
    InexactRel(f64),
    /// This component carries no voted semantics (e.g. a timestamp) and is
    /// ignored.
    Ignore,
    /// Compare struct fields with per-field sub-programs.
    Struct(Vec<Comparator>),
    /// Compare sequences element-wise with one element program (lengths
    /// must match).
    Sequence(Box<Comparator>),
}

impl Comparator {
    /// A comparator suitable for a value whose floats are measurements:
    /// exact on everything except floats, relative-epsilon on floats.
    pub fn inexact_floats(epsilon: f64) -> Comparator {
        Comparator::InexactRel(epsilon)
    }

    /// Tests whether `a` and `b` are equivalent under this program.
    ///
    /// Mismatched kinds or arities are never equivalent (a Byzantine
    /// replica may send an arbitrary value, so this must be total).
    pub fn equivalent(&self, a: &Value, b: &Value) -> bool {
        match self {
            Comparator::Exact => exact_eq(a, b),
            Comparator::InexactAbs(eps) => inexact_eq(a, b, &Tolerance::Abs(*eps)),
            Comparator::InexactRel(eps) => inexact_eq(a, b, &Tolerance::Rel(*eps)),
            Comparator::Ignore => true,
            Comparator::Struct(fields) => match (a, b) {
                (Value::Struct(xs), Value::Struct(ys)) => {
                    xs.len() == ys.len()
                        && xs.len() == fields.len()
                        && fields
                            .iter()
                            .zip(xs.iter().zip(ys))
                            .all(|(c, (x, y))| c.equivalent(x, y))
                }
                _ => false,
            },
            Comparator::Sequence(elem) => match (a, b) {
                (Value::Sequence(xs), Value::Sequence(ys)) => {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| elem.equivalent(x, y))
                }
                _ => false,
            },
        }
    }
}

enum Tolerance {
    Abs(f64),
    Rel(f64),
}

impl Tolerance {
    fn floats_eq(&self, x: f64, y: f64) -> bool {
        if x == y {
            return true; // covers infinities of equal sign
        }
        if x.is_nan() && y.is_nan() {
            return true; // both replicas failed the same way
        }
        if !x.is_finite() || !y.is_finite() {
            return false; // distinct infinities/NaN-vs-number never match
        }
        match self {
            Tolerance::Abs(eps) => (x - y).abs() <= *eps,
            Tolerance::Rel(eps) => (x - y).abs() <= *eps * x.abs().max(y.abs()),
        }
    }
}

fn exact_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // bitwise float equality for exact voting (NaN == NaN bitwise-wise
        // is what byte voting would see; mirror it)
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::Sequence(xs), Value::Sequence(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| exact_eq(x, y))
        }
        (Value::Struct(xs), Value::Struct(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| exact_eq(x, y))
        }
        _ => a == b,
    }
}

fn inexact_eq(a: &Value, b: &Value, tol: &Tolerance) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => tol.floats_eq(*x as f64, *y as f64),
        (Value::Double(x), Value::Double(y)) => tol.floats_eq(*x, *y),
        (Value::Sequence(xs), Value::Sequence(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| inexact_eq(x, y, tol))
        }
        (Value::Struct(xs), Value::Struct(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| inexact_eq(x, y, tol))
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_identical_values() {
        let v = Value::Struct(vec![Value::Long(1), Value::String("x".into())]);
        assert!(Comparator::Exact.equivalent(&v, &v.clone()));
        let w = Value::Struct(vec![Value::Long(2), Value::String("x".into())]);
        assert!(!Comparator::Exact.equivalent(&v, &w));
    }

    #[test]
    fn exact_floats_are_bitwise() {
        let a = Value::Double(1.0);
        let b = Value::Double(1.0 + 1e-15);
        assert!(!Comparator::Exact.equivalent(&a, &b));
        let nan1 = Value::Double(f64::NAN);
        let nan2 = Value::Double(f64::NAN);
        assert!(Comparator::Exact.equivalent(&nan1, &nan2));
    }

    #[test]
    fn inexact_abs_tolerates_small_differences() {
        let c = Comparator::InexactAbs(0.01);
        assert!(c.equivalent(&Value::Double(1.0), &Value::Double(1.005)));
        assert!(!c.equivalent(&Value::Double(1.0), &Value::Double(1.02)));
    }

    #[test]
    fn inexact_rel_scales_with_magnitude() {
        let c = Comparator::InexactRel(1e-6);
        assert!(c.equivalent(&Value::Double(1e9), &Value::Double(1e9 + 100.0)));
        assert!(!c.equivalent(&Value::Double(1.0), &Value::Double(1.001)));
    }

    #[test]
    fn inexact_equivalence_is_not_transitive() {
        // the paper's explicit point: a = b, b = c, but a != c
        let c = Comparator::InexactAbs(1.0);
        let a = Value::Double(0.0);
        let b = Value::Double(0.9);
        let d = Value::Double(1.8);
        assert!(c.equivalent(&a, &b));
        assert!(c.equivalent(&b, &d));
        assert!(!c.equivalent(&a, &d));
    }

    #[test]
    fn inexact_recurses_into_composites() {
        let c = Comparator::InexactRel(1e-6);
        let a = Value::Sequence(vec![Value::Double(1.0), Value::Double(2.0)]);
        let b = Value::Sequence(vec![Value::Double(1.0 + 1e-8), Value::Double(2.0 - 1e-8)]);
        assert!(c.equivalent(&a, &b));
    }

    #[test]
    fn inexact_still_exact_on_non_floats() {
        let c = Comparator::InexactAbs(10.0);
        assert!(!c.equivalent(&Value::Long(1), &Value::Long(2)));
        assert!(c.equivalent(&Value::Long(1), &Value::Long(1)));
        assert!(!c.equivalent(&Value::String("a".into()), &Value::String("b".into())));
    }

    #[test]
    fn struct_program_applies_per_field() {
        let c = Comparator::Struct(vec![Comparator::Exact, Comparator::InexactAbs(0.1)]);
        let a = Value::Struct(vec![Value::Long(1), Value::Double(5.0)]);
        let b = Value::Struct(vec![Value::Long(1), Value::Double(5.05)]);
        let w = Value::Struct(vec![Value::Long(2), Value::Double(5.0)]);
        assert!(c.equivalent(&a, &b));
        assert!(!c.equivalent(&a, &w));
    }

    #[test]
    fn arity_mismatch_never_equivalent() {
        let c = Comparator::Struct(vec![Comparator::Exact]);
        let a = Value::Struct(vec![Value::Long(1)]);
        let b = Value::Struct(vec![Value::Long(1), Value::Long(2)]);
        assert!(!c.equivalent(&a, &b));
    }

    #[test]
    fn kind_mismatch_never_equivalent() {
        let c = Comparator::InexactAbs(1e9); // huge tolerance can't cross kinds
        assert!(!c.equivalent(&Value::Double(1.0), &Value::Long(1)));
        assert!(!c.equivalent(&Value::Struct(vec![]), &Value::Sequence(vec![])));
    }

    #[test]
    fn ignore_accepts_anything() {
        let c = Comparator::Struct(vec![Comparator::Exact, Comparator::Ignore]);
        let a = Value::Struct(vec![Value::Long(1), Value::ULongLong(111)]);
        let b = Value::Struct(vec![Value::Long(1), Value::ULongLong(999)]);
        assert!(c.equivalent(&a, &b));
    }

    #[test]
    fn sequence_program_checks_lengths() {
        let c = Comparator::Sequence(Box::new(Comparator::Exact));
        let a = Value::Sequence(vec![Value::Long(1)]);
        let b = Value::Sequence(vec![Value::Long(1), Value::Long(2)]);
        assert!(!c.equivalent(&a, &b));
    }

    #[test]
    fn infinities_compare_equal_to_themselves() {
        let c = Comparator::InexactRel(1e-9);
        assert!(c.equivalent(&Value::Double(f64::INFINITY), &Value::Double(f64::INFINITY)));
        assert!(!c.equivalent(
            &Value::Double(f64::INFINITY),
            &Value::Double(f64::NEG_INFINITY)
        ));
    }
}
