//! Fault detection and signed-message proofs.
//!
//! §3.6: when a *singleton* client detects a faulty value it must convince
//! the Group Manager — otherwise a malicious client could expel correct
//! replicas. "The proof is the set of signed messages through which the
//! faulty value was detected. Since each message contains a sequence number
//! to protect against replay, and each message is signed, the Group Manager
//! can determine the validity of the proof. The Group Manager must perform
//! a vote on the values just as the client did — on unmarshalled data."
//!
//! This module builds proofs on the client side and validates them on the
//! Group Manager side, re-running the vote via the marshalling engine
//! (GIOP + interface repository — possible outside an ORB only because the
//! ITDOS GIOP extension carries the full interface name).

use std::collections::BTreeMap;

use itdos_crypto::sign::{Signature, SigningKey, VerifyingKey};
use itdos_giop::giop::{decode_message, GiopMessage};
use itdos_giop::idl::InterfaceRepository;
use itdos_giop::types::Value;

use crate::comparator::Comparator;
use crate::vote::{vote, Candidate, SenderId, Thresholds, VoteOutcome};

/// A signed reply frame as relayed in a fault proof.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedReply {
    /// The replication domain element that produced the reply.
    pub sender: SenderId,
    /// Anti-replay sequence number, strictly increasing per sender.
    pub sequence: u64,
    /// The raw GIOP Reply frame exactly as the element sent it.
    pub frame: Vec<u8>,
    /// Signature over `(sender, sequence, frame)`.
    pub signature: Signature,
}

fn signing_payload(sender: SenderId, sequence: u64, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.len() + 20);
    out.extend_from_slice(b"itdos-reply:");
    out.extend_from_slice(&sender.0.to_le_bytes());
    out.extend_from_slice(&sequence.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

impl SignedReply {
    /// Signs a reply frame (done by each replica for every reply it emits).
    pub fn sign(key: &SigningKey, sender: SenderId, sequence: u64, frame: Vec<u8>) -> SignedReply {
        let signature = key.sign(&signing_payload(sender, sequence, &frame));
        SignedReply {
            sender,
            sequence,
            frame,
            signature,
        }
    }

    /// Verifies the signature with the sender's public key.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        key.verify(
            &signing_payload(self.sender, self.sequence, &self.frame),
            &self.signature,
        )
    }
}

/// A fault proof assembled by a singleton client for the Group Manager.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProof {
    /// Elements the sender accuses of Byzantine values.
    pub accused: Vec<SenderId>,
    /// The request these replies answered.
    pub request_id: u64,
    /// The signed replies through which the fault was detected.
    pub messages: Vec<SignedReply>,
}

/// Why a proof was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofError {
    /// A message's signature did not verify.
    BadSignature(SenderId),
    /// A sender has no registered public key.
    UnknownSender(SenderId),
    /// A message's sequence number was at or below the replay watermark.
    Replayed {
        /// The offending sender.
        sender: SenderId,
        /// The stale sequence number.
        sequence: u64,
    },
    /// A frame failed to decode as a GIOP reply.
    Undecodable(SenderId),
    /// A frame's request id did not match the proof's request id.
    RequestIdMismatch(SenderId),
    /// Two messages from the same sender.
    DuplicateSender(SenderId),
    /// The re-vote over the supplied messages did not reach a decision.
    VoteInconclusive,
    /// An accused element's value actually supported the winning value —
    /// the accusation is bogus (malicious or confused client).
    AccusedNotFaulty(SenderId),
    /// The accused list was empty.
    NothingAccused,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::BadSignature(s) => write!(f, "bad signature from element {}", s.0),
            ProofError::UnknownSender(s) => write!(f, "unknown element {}", s.0),
            ProofError::Replayed { sender, sequence } => {
                write!(
                    f,
                    "replayed message from element {} (seq {sequence})",
                    sender.0
                )
            }
            ProofError::Undecodable(s) => write!(f, "undecodable frame from element {}", s.0),
            ProofError::RequestIdMismatch(s) => {
                write!(f, "request id mismatch in frame from element {}", s.0)
            }
            ProofError::DuplicateSender(s) => {
                write!(f, "duplicate message from element {}", s.0)
            }
            ProofError::VoteInconclusive => write!(f, "proof messages do not decide a vote"),
            ProofError::AccusedNotFaulty(s) => {
                write!(f, "accused element {} supported the winning value", s.0)
            }
            ProofError::NothingAccused => write!(f, "proof accuses no element"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A validated verdict: which accused elements are confirmed faulty.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Accused elements confirmed faulty by the re-vote.
    pub confirmed: Vec<SenderId>,
    /// The value the re-vote decided.
    pub decided_value: Value,
    /// Per-sender sequence numbers consumed (callers advance their replay
    /// watermarks with these).
    pub sequences: Vec<(SenderId, u64)>,
}

/// Extracts the folded, votable reply value from a signed frame — the
/// *same* folding ([`crate::folding::reply_to_value`]) the live voters
/// use, so the Group Manager "must perform a vote on the values just as
/// the client did" holds literally.
fn reply_value(
    message: &SignedReply,
    repo: &InterfaceRepository,
    request_id: u64,
) -> Result<Value, ProofError> {
    let decoded = decode_message(&message.frame, repo)
        .map_err(|_| ProofError::Undecodable(message.sender))?;
    let GiopMessage::Reply(reply) = decoded else {
        return Err(ProofError::Undecodable(message.sender));
    };
    if reply.request_id != request_id {
        return Err(ProofError::RequestIdMismatch(message.sender));
    }
    Ok(crate::folding::reply_to_value(&reply))
}

/// Validates a fault proof exactly as the Group Manager does (§3.6):
/// signatures, replay watermarks, unmarshalling via the repository, and a
/// re-vote with the connection's comparator.
///
/// # Errors
///
/// Any [`ProofError`]; a rejected proof must not trigger expulsion.
pub fn verify_proof(
    proof: &FaultProof,
    keys: &BTreeMap<SenderId, VerifyingKey>,
    watermarks: &BTreeMap<SenderId, u64>,
    repo: &InterfaceRepository,
    comparator: &Comparator,
    thresholds: Thresholds,
) -> Result<Verdict, ProofError> {
    if proof.accused.is_empty() {
        return Err(ProofError::NothingAccused);
    }
    let mut candidates = Vec::with_capacity(proof.messages.len());
    let mut sequences = Vec::with_capacity(proof.messages.len());
    for (k, message) in proof.messages.iter().enumerate() {
        if proof.messages[..k]
            .iter()
            .any(|m| m.sender == message.sender)
        {
            return Err(ProofError::DuplicateSender(message.sender));
        }
        let key = keys
            .get(&message.sender)
            .ok_or(ProofError::UnknownSender(message.sender))?;
        if !message.verify(key) {
            return Err(ProofError::BadSignature(message.sender));
        }
        if let Some(&mark) = watermarks.get(&message.sender) {
            if message.sequence <= mark {
                return Err(ProofError::Replayed {
                    sender: message.sender,
                    sequence: message.sequence,
                });
            }
        }
        sequences.push((message.sender, message.sequence));
        candidates.push(Candidate {
            sender: message.sender,
            value: reply_value(message, repo, proof.request_id)?,
        });
    }
    let VoteOutcome::Decided(decision) = vote(&candidates, comparator, thresholds.decide()) else {
        return Err(ProofError::VoteInconclusive);
    };
    for accused in &proof.accused {
        if decision.supporters.contains(accused) {
            return Err(ProofError::AccusedNotFaulty(*accused));
        }
        if !decision.dissenters.contains(accused) {
            // accused element not even present in the evidence
            return Err(ProofError::AccusedNotFaulty(*accused));
        }
    }
    Ok(Verdict {
        confirmed: proof.accused.clone(),
        decided_value: decision.value,
        sequences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_giop::cdr::Endianness;
    use itdos_giop::giop::{encode_message, ReplyBody, ReplyMessage};
    use itdos_giop::idl::{InterfaceDef, OperationDef};
    use itdos_giop::types::TypeDesc;

    fn repo() -> InterfaceRepository {
        let mut repo = InterfaceRepository::new();
        repo.register(InterfaceDef::new("Acct").with_operation(OperationDef::new(
            "balance",
            vec![],
            TypeDesc::LongLong,
        )));
        repo
    }

    fn keyring(n: u32) -> (Vec<SigningKey>, BTreeMap<SenderId, VerifyingKey>) {
        let sks: Vec<SigningKey> = (0..n)
            .map(|i| SigningKey::from_seed(&i.to_le_bytes()))
            .collect();
        let vks = sks
            .iter()
            .enumerate()
            .map(|(i, sk)| (SenderId(i as u32), sk.verifying_key()))
            .collect();
        (sks, vks)
    }

    fn reply_frame(request_id: u64, value: i64, endianness: Endianness) -> Vec<u8> {
        encode_message(
            &GiopMessage::Reply(ReplyMessage {
                request_id,
                interface: "Acct".into(),
                operation: "balance".into(),
                body: ReplyBody::Result(Value::LongLong(value)),
            }),
            &repo(),
            endianness,
        )
        .expect("encode")
    }

    /// Builds a proof where replicas 0,1,2 said `good` and replica 3 said
    /// `bad`, accusing replica 3.
    fn sample_proof(good: i64, bad: i64) -> (FaultProof, BTreeMap<SenderId, VerifyingKey>) {
        let (sks, vks) = keyring(4);
        let mut messages = Vec::new();
        for (i, sk) in sks.iter().enumerate() {
            let value = if i == 3 { bad } else { good };
            // heterogeneity: alternate endianness per replica
            let e = if i % 2 == 0 {
                Endianness::Big
            } else {
                Endianness::Little
            };
            let frame = reply_frame(7, value, e);
            messages.push(SignedReply::sign(
                sk,
                SenderId(i as u32),
                100 + i as u64,
                frame,
            ));
        }
        (
            FaultProof {
                accused: vec![SenderId(3)],
                request_id: 7,
                messages,
            },
            vks,
        )
    }

    fn verify(
        proof: &FaultProof,
        vks: &BTreeMap<SenderId, VerifyingKey>,
    ) -> Result<Verdict, ProofError> {
        verify_proof(
            proof,
            vks,
            &BTreeMap::new(),
            &repo(),
            &Comparator::Exact,
            Thresholds::new(1),
        )
    }

    #[test]
    fn valid_proof_confirms_accused() {
        let (proof, vks) = sample_proof(100, 666);
        let verdict = verify(&proof, &vks).unwrap();
        assert_eq!(verdict.confirmed, vec![SenderId(3)]);
        // the decided value is the folded reply (headers + body)
        assert_eq!(
            verdict.decided_value,
            Value::Struct(vec![
                Value::String("Acct".into()),
                Value::String("balance".into()),
                Value::ULong(0),
                Value::LongLong(100),
            ])
        );
        assert_eq!(verdict.sequences.len(), 4);
    }

    #[test]
    fn heterogeneous_frames_vote_correctly() {
        // frames in the proof use mixed endianness; the GM's marshalling
        // engine must still unify them
        let (proof, vks) = sample_proof(42, 43);
        assert!(verify(&proof, &vks).is_ok());
    }

    #[test]
    fn malicious_client_cannot_expel_correct_replica() {
        // all four replicas agree; client accuses replica 3 anyway
        let (mut proof, vks) = sample_proof(100, 100);
        proof.accused = vec![SenderId(3)];
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::AccusedNotFaulty(SenderId(3)))
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut proof, vks) = sample_proof(100, 666);
        proof.messages[1].frame = reply_frame(7, 999, Endianness::Big);
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::BadSignature(SenderId(1)))
        );
    }

    #[test]
    fn replayed_message_rejected() {
        let (proof, vks) = sample_proof(100, 666);
        let mut marks = BTreeMap::new();
        marks.insert(SenderId(0), 100u64); // watermark at the message's seq
        let err = verify_proof(
            &proof,
            &vks,
            &marks,
            &repo(),
            &Comparator::Exact,
            Thresholds::new(1),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProofError::Replayed {
                sender: SenderId(0),
                sequence: 100
            }
        );
    }

    #[test]
    fn unknown_sender_rejected() {
        let (proof, mut vks) = sample_proof(100, 666);
        vks.remove(&SenderId(2));
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::UnknownSender(SenderId(2)))
        );
    }

    #[test]
    fn duplicate_sender_rejected() {
        let (mut proof, vks) = sample_proof(100, 666);
        let dup = proof.messages[0].clone();
        proof.messages.push(dup);
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::DuplicateSender(SenderId(0)))
        );
    }

    #[test]
    fn mismatched_request_id_rejected() {
        let (sks, vks) = keyring(4);
        let mut messages = Vec::new();
        for (i, sk) in sks.iter().enumerate() {
            let rid = if i == 2 { 8 } else { 7 }; // replica 2's frame answers another request
            let frame = reply_frame(rid, 100, Endianness::Big);
            messages.push(SignedReply::sign(sk, SenderId(i as u32), 1, frame));
        }
        let proof = FaultProof {
            accused: vec![SenderId(3)],
            request_id: 7,
            messages,
        };
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::RequestIdMismatch(SenderId(2)))
        );
    }

    #[test]
    fn inconclusive_evidence_rejected() {
        // two messages only, all distinct values: no f+1 cluster
        let (sks, vks) = keyring(4);
        let messages = vec![
            SignedReply::sign(&sks[0], SenderId(0), 1, reply_frame(7, 1, Endianness::Big)),
            SignedReply::sign(&sks[1], SenderId(1), 1, reply_frame(7, 2, Endianness::Big)),
        ];
        let proof = FaultProof {
            accused: vec![SenderId(1)],
            request_id: 7,
            messages,
        };
        assert_eq!(verify(&proof, &vks), Err(ProofError::VoteInconclusive));
    }

    #[test]
    fn empty_accusation_rejected() {
        let (mut proof, vks) = sample_proof(100, 666);
        proof.accused.clear();
        assert_eq!(verify(&proof, &vks), Err(ProofError::NothingAccused));
    }

    #[test]
    fn garbage_frame_rejected() {
        let (mut proof, vks) = sample_proof(100, 666);
        // re-sign a garbage frame so the signature verifies but decode fails
        let sk = SigningKey::from_seed(&0u32.to_le_bytes());
        proof.messages[0] = SignedReply::sign(&sk, SenderId(0), 200, vec![1, 2, 3]);
        assert_eq!(
            verify(&proof, &vks),
            Err(ProofError::Undecodable(SenderId(0)))
        );
    }

    #[test]
    fn exception_reply_counts_as_distinct_value() {
        let (sks, vks) = keyring(4);
        let exception_frame = encode_message(
            &GiopMessage::Reply(ReplyMessage {
                request_id: 7,
                interface: "Acct".into(),
                operation: "balance".into(),
                body: ReplyBody::SystemException { minor: 2 },
            }),
            &repo(),
            Endianness::Big,
        )
        .unwrap();
        let mut messages: Vec<SignedReply> = (0..3)
            .map(|i| {
                SignedReply::sign(
                    &sks[i],
                    SenderId(i as u32),
                    1,
                    reply_frame(7, 100, Endianness::Big),
                )
            })
            .collect();
        messages.push(SignedReply::sign(&sks[3], SenderId(3), 1, exception_frame));
        let proof = FaultProof {
            accused: vec![SenderId(3)],
            request_id: 7,
            messages,
        };
        let verdict = verify(&proof, &vks).unwrap();
        assert_eq!(verdict.confirmed, vec![SenderId(3)]);
    }
}
