//! Approval voting (Parhami \[31\]).
//!
//! §3.6 cites Parhami's "Optimal Algorithms for Exact, Inexact, and
//! Approval Voting". In approval voting, equivalence is replaced by an
//! *approval relation*: candidate `a` approves candidate `b`'s value when
//! `b` falls inside `a`'s acceptance region. The relation need not be
//! symmetric (a tight sensor approves a sloppy one but not vice versa),
//! which generalizes the inexact comparator and lets a connection vote on
//! "acceptable" rather than "equal" results.

use itdos_giop::types::Value;

use crate::vote::{Candidate, Decision, SenderId, VoteOutcome};

/// Runs an approval vote: the winning value is the candidate (in sender
/// order) approved by at least `threshold` candidates, where candidate
/// `x` approves pivot `p` when `approve(&x.value, &p.value)` holds.
///
/// With a symmetric `approve` this degenerates to pivot-based inexact
/// voting; an asymmetric relation expresses per-replica acceptance
/// regions.
///
/// # Examples
///
/// ```
/// use itdos_giop::types::Value;
/// use itdos_vote::approval::approval_vote;
/// use itdos_vote::vote::{Candidate, SenderId, VoteOutcome};
///
/// // each replica reports (value, tolerance); a replica approves any
/// // pivot within ITS OWN tolerance of its value
/// let candidates: Vec<Candidate> = [(10.0, 0.5), (10.2, 0.5), (10.1, 0.05)]
///     .iter()
///     .enumerate()
///     .map(|(i, (v, tol))| Candidate {
///         sender: SenderId(i as u32),
///         value: Value::Struct(vec![Value::Double(*v), Value::Double(*tol)]),
///     })
///     .collect();
/// let approve = |mine: &Value, pivot: &Value| {
///     let (Value::Struct(m), Value::Struct(p)) = (mine, pivot) else { return false };
///     let (Value::Double(mv), Value::Double(mt)) = (&m[0], &m[1]) else { return false };
///     let Value::Double(pv) = &p[0] else { return false };
///     (mv - pv).abs() <= *mt
/// };
/// match approval_vote(&candidates, approve, 3) {
///     VoteOutcome::Decided(d) => assert_eq!(d.supporters.len(), 3),
///     VoteOutcome::Pending => panic!("expected decision"),
/// }
/// ```
pub fn approval_vote<F>(candidates: &[Candidate], approve: F, threshold: usize) -> VoteOutcome
where
    F: Fn(&Value, &Value) -> bool,
{
    if threshold == 0 || candidates.len() < threshold {
        return VoteOutcome::Pending;
    }
    let mut order: Vec<&Candidate> = candidates.iter().collect();
    order.sort_by_key(|c| c.sender);
    for pivot in &order {
        let supporters: Vec<SenderId> = order
            .iter()
            .filter(|c| approve(&c.value, &pivot.value))
            .map(|c| c.sender)
            .collect();
        if supporters.len() >= threshold {
            let dissenters = order
                .iter()
                .filter(|c| !supporters.contains(&c.sender))
                .map(|c| c.sender)
                .collect();
            return VoteOutcome::Decided(Decision {
                value: pivot.value.clone(),
                supporters,
                dissenters,
            });
        }
    }
    VoteOutcome::Pending
}

#[cfg(test)]
mod tests {
    use super::*;

    /// candidates carry (value, own tolerance)
    fn cand(sender: u32, value: f64, tolerance: f64) -> Candidate {
        Candidate {
            sender: SenderId(sender),
            value: Value::Struct(vec![Value::Double(value), Value::Double(tolerance)]),
        }
    }

    fn approve(mine: &Value, pivot: &Value) -> bool {
        let (Value::Struct(m), Value::Struct(p)) = (mine, pivot) else {
            return false;
        };
        let (Value::Double(mv), Value::Double(mt)) = (&m[0], &m[1]) else {
            return false;
        };
        let Value::Double(pv) = &p[0] else {
            return false;
        };
        (mv - pv).abs() <= *mt
    }

    #[test]
    fn symmetric_case_behaves_like_inexact() {
        let cs = vec![cand(0, 10.0, 0.5), cand(1, 10.2, 0.5), cand(2, 99.0, 0.5)];
        match approval_vote(&cs, approve, 2) {
            VoteOutcome::Decided(d) => {
                assert_eq!(d.supporters, vec![SenderId(0), SenderId(1)]);
                assert_eq!(d.dissenters, vec![SenderId(2)]);
            }
            VoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn asymmetric_approval_is_respected() {
        // the tight replica (tol 0.01) does NOT approve the loose pivot,
        // but the loose replicas approve each other and the tight one
        let cs = vec![cand(0, 10.0, 1.0), cand(1, 10.5, 1.0), cand(2, 10.4, 0.01)];
        match approval_vote(&cs, approve, 3) {
            VoteOutcome::Decided(d) => {
                // pivot must be a value ALL THREE approve: 10.4 ± each
                // replica's own tolerance — candidate 2's value qualifies
                assert_eq!(
                    d.value,
                    Value::Struct(vec![Value::Double(10.4), Value::Double(0.01)])
                );
            }
            VoteOutcome::Pending => panic!("a universally approved pivot exists"),
        }
    }

    #[test]
    fn no_approved_pivot_is_pending() {
        let cs = vec![cand(0, 1.0, 0.1), cand(1, 2.0, 0.1), cand(2, 3.0, 0.1)];
        assert_eq!(approval_vote(&cs, approve, 2), VoteOutcome::Pending);
    }

    #[test]
    fn threshold_and_size_guards() {
        let cs = vec![cand(0, 1.0, 1.0)];
        assert_eq!(approval_vote(&cs, approve, 0), VoteOutcome::Pending);
        assert_eq!(approval_vote(&cs, approve, 2), VoteOutcome::Pending);
    }

    #[test]
    fn deterministic_in_sender_order() {
        let a = vec![cand(2, 10.0, 1.0), cand(0, 10.1, 1.0), cand(1, 10.2, 1.0)];
        let b = vec![cand(0, 10.1, 1.0), cand(1, 10.2, 1.0), cand(2, 10.0, 1.0)];
        assert_eq!(approval_vote(&a, approve, 2), approval_vote(&b, approve, 2));
    }
}
