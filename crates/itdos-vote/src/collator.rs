//! Per-connection vote collation.
//!
//! "In the ITDOS protocol stack, each connection has a voter object that
//! collates messages on a connection basis" (§3.6). The collator enforces
//! the paper's rules:
//!
//! * a single outstanding request per connection (single-threaded client);
//! * a just-received message whose request identifier does not match the
//!   outstanding request is **discarded** — "the receiver neither uses the
//!   message's value nor penalizes the sender", because a late reply is
//!   indistinguishable from a Byzantine one;
//! * the vote fires once **2f+1** messages have arrived and some **f+1**
//!   of them are equivalent; the voter does not wait for all 3f+1;
//! * messages arriving after the decision are still checked so that slow
//!   faulty values can be flagged;
//! * state is garbage-collected when the next request begins.

use std::collections::BTreeSet;

use itdos_giop::types::Value;
use itdos_obs::{LabelValue, Obs};

use crate::comparator::Comparator;
use crate::vote::{vote, Candidate, Decision, SenderId, Thresholds, VoteOutcome};

/// Static label distinguishing exact from inexact voting in metrics.
fn comparator_kind(comparator: &Comparator) -> &'static str {
    match comparator {
        Comparator::Exact => "exact",
        _ => "inexact",
    }
}

/// Why a message was discarded without prejudice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardReason {
    /// No request is outstanding on this connection.
    NoOutstandingRequest,
    /// The request id did not match the outstanding request.
    WrongRequestId {
        /// Id carried by the message.
        got: u64,
        /// Id of the outstanding request.
        expected: u64,
    },
    /// This sender already contributed a candidate for this request.
    DuplicateSender,
}

/// Result of offering one message to the collator.
#[derive(Debug, Clone, PartialEq)]
pub enum Accept {
    /// Stored; not enough messages to decide yet.
    Collected,
    /// This message completed the vote.
    Decided(Decision),
    /// Arrived after the decision; `suspect` is set if its value dissents.
    Late {
        /// Sender flagged as suspect by this late message, if any.
        suspect: Option<SenderId>,
    },
    /// Discarded per §3.6 rules (no penalty to the sender).
    Discarded(DiscardReason),
}

/// Statistics for one collation round (feeds the voter's garbage
/// collection and the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollationStats {
    /// Messages accepted as candidates.
    pub accepted: u64,
    /// Messages discarded (wrong id, duplicates, no outstanding request).
    pub discarded: u64,
    /// Whether the round reached a decision.
    pub decided: bool,
}

/// The per-connection voter.
///
/// # Examples
///
/// ```
/// use itdos_giop::types::Value;
/// use itdos_vote::collator::{Accept, Collator};
/// use itdos_vote::comparator::Comparator;
/// use itdos_vote::vote::{SenderId, Thresholds};
///
/// // f = 1: decide on 2 equivalent of at least 3 received.
/// let mut voter = Collator::new(Thresholds::new(1), Comparator::Exact);
/// voter.begin(1);
/// assert_eq!(voter.offer(1, SenderId(0), Value::Long(10)), Accept::Collected);
/// assert_eq!(voter.offer(1, SenderId(1), Value::Long(99)), Accept::Collected);
/// match voter.offer(1, SenderId(2), Value::Long(10)) {
///     Accept::Decided(d) => assert_eq!(d.value, Value::Long(10)),
///     other => panic!("expected decision, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Collator {
    thresholds: Thresholds,
    comparator: Comparator,
    outstanding: Option<u64>,
    candidates: Vec<Candidate>,
    seen: BTreeSet<SenderId>,
    decision: Option<Decision>,
    late_suspects: Vec<SenderId>,
    stats: CollationStats,
    obs: Obs,
}

impl Collator {
    /// Creates a voter for a domain tolerating `f` faults, comparing with
    /// `comparator`.
    pub fn new(thresholds: Thresholds, comparator: Comparator) -> Collator {
        Collator {
            thresholds,
            comparator,
            outstanding: None,
            candidates: Vec::new(),
            seen: BTreeSet::new(),
            decision: None,
            late_suspects: Vec::new(),
            stats: CollationStats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Installs an observability sink recording votes held, exact-vs-
    /// inexact outcomes, and divergent-replica detections. The default
    /// disabled handle makes every hook a no-op.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Begins collation for a new outstanding request, garbage-collecting
    /// any previous round's state ("the voter must perform garbage
    /// collection to continue making progress and limit the resources it
    /// uses", §3.6). Returns the previous round's statistics.
    pub fn begin(&mut self, request_id: u64) -> CollationStats {
        let prev = self.stats;
        self.outstanding = Some(request_id);
        self.candidates.clear();
        self.seen.clear();
        self.decision = None;
        self.late_suspects.clear();
        self.stats = CollationStats::default();
        // round marker: request ids restart per connection, so an offline
        // auditor needs this to avoid pairing a new round's ballots with a
        // stale same-id decision
        self.obs
            .event("vote.begin", &[("request", LabelValue::U64(request_id))]);
        prev
    }

    /// The outstanding request id, if any.
    pub fn outstanding(&self) -> Option<u64> {
        self.outstanding
    }

    /// The decision, if the round has decided.
    pub fn decision(&self) -> Option<&Decision> {
        self.decision.as_ref()
    }

    /// All fault suspects so far: dissenters at decision time plus late
    /// dissenting arrivals.
    pub fn suspects(&self) -> Vec<SenderId> {
        let mut out = self
            .decision
            .as_ref()
            .map(|d| d.dissenters.clone())
            .unwrap_or_default();
        for s in &self.late_suspects {
            if !out.contains(s) {
                out.push(*s);
            }
        }
        out
    }

    /// Statistics for the current round.
    pub fn stats(&self) -> CollationStats {
        self.stats
    }

    /// Number of candidates collected this round.
    pub fn collected(&self) -> usize {
        self.candidates.len()
    }

    /// Offers one unmarshalled reply/request value for collation.
    pub fn offer(&mut self, request_id: u64, sender: SenderId, value: Value) -> Accept {
        let Some(expected) = self.outstanding else {
            self.stats.discarded += 1;
            return Accept::Discarded(DiscardReason::NoOutstandingRequest);
        };
        if request_id != expected {
            self.stats.discarded += 1;
            return Accept::Discarded(DiscardReason::WrongRequestId {
                got: request_id,
                expected,
            });
        }
        if !self.seen.insert(sender) {
            self.stats.discarded += 1;
            return Accept::Discarded(DiscardReason::DuplicateSender);
        }
        self.stats.accepted += 1;
        // every accepted ballot goes on the flight record: the per-sender
        // arrival timestamps are what lets an offline auditor measure how
        // far behind the decision a straggling replica's replies land
        self.obs.event(
            "vote.reply",
            &[
                ("request", LabelValue::U64(request_id)),
                ("sender", LabelValue::U64(u64::from(sender.0))),
            ],
        );
        if let Some(decision) = &self.decision {
            // post-decision arrival: check against the decided value
            let suspect = if self.comparator.equivalent(&decision.value, &value) {
                None
            } else {
                self.late_suspects.push(sender);
                self.obs.incr("vote.divergent", &[]);
                self.obs.event(
                    "vote.late_dissent",
                    &[
                        ("request", LabelValue::U64(request_id)),
                        ("sender", LabelValue::U64(u64::from(sender.0))),
                    ],
                );
                Some(sender)
            };
            self.obs.incr("vote.late", &[]);
            return Accept::Late { suspect };
        }
        self.candidates.push(Candidate { sender, value });
        // §3.6: attempt only once the 2f+1 quorum has arrived
        if self.candidates.len() < self.thresholds.quorum() {
            return Accept::Collected;
        }
        match vote(&self.candidates, &self.comparator, self.thresholds.decide()) {
            VoteOutcome::Decided(decision) => {
                self.decision = Some(decision.clone());
                self.stats.decided = true;
                if self.obs.is_enabled() {
                    let kind = comparator_kind(&self.comparator);
                    let labels = [("comparator", LabelValue::Str(kind))];
                    self.obs.incr("vote.decided", &labels);
                    self.obs
                        .event("vote.decided", &[("request", LabelValue::U64(request_id))]);
                    self.obs
                        .observe("vote.votes_held", &labels, self.candidates.len() as u64);
                    self.obs
                        .add("vote.divergent", &[], decision.dissenters.len() as u64);
                    for dissenter in &decision.dissenters {
                        self.obs.event(
                            "vote.dissent",
                            &[
                                ("request", LabelValue::U64(request_id)),
                                ("sender", LabelValue::U64(u64::from(dissenter.0))),
                            ],
                        );
                    }
                }
                Accept::Decided(decision)
            }
            VoteOutcome::Pending => Accept::Collected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collator(f: usize) -> Collator {
        let mut c = Collator::new(Thresholds::new(f), Comparator::Exact);
        c.begin(1);
        c
    }

    fn long(v: i32) -> Value {
        Value::Long(v)
    }

    #[test]
    fn decides_at_quorum_with_majority() {
        let mut c = collator(1);
        assert_eq!(c.offer(1, SenderId(0), long(5)), Accept::Collected);
        assert_eq!(c.offer(1, SenderId(1), long(5)), Accept::Collected);
        // third message reaches 2f+1 = 3 quorum
        match c.offer(1, SenderId(2), long(7)) {
            Accept::Decided(d) => {
                assert_eq!(d.value, long(5));
                assert_eq!(d.dissenters, vec![SenderId(2)]);
            }
            other => panic!("expected decision, got {other:?}"),
        }
    }

    #[test]
    fn does_not_vote_before_quorum_even_with_enough_identicals() {
        // f=1: two identical messages = decide threshold, but quorum is 3
        let mut c = collator(1);
        assert_eq!(c.offer(1, SenderId(0), long(5)), Accept::Collected);
        assert_eq!(
            c.offer(1, SenderId(1), long(5)),
            Accept::Collected,
            "must wait for 2f+1 arrivals"
        );
    }

    #[test]
    fn wrong_request_id_discarded_without_penalty() {
        let mut c = collator(1);
        assert_eq!(
            c.offer(99, SenderId(0), long(5)),
            Accept::Discarded(DiscardReason::WrongRequestId {
                got: 99,
                expected: 1
            })
        );
        assert!(c.suspects().is_empty(), "no penalty for late/wrong id");
        assert_eq!(c.stats().discarded, 1);
    }

    #[test]
    fn duplicate_sender_discarded() {
        let mut c = collator(1);
        c.offer(1, SenderId(0), long(5));
        assert_eq!(
            c.offer(1, SenderId(0), long(5)),
            Accept::Discarded(DiscardReason::DuplicateSender)
        );
    }

    #[test]
    fn no_outstanding_request_discards() {
        let mut c = Collator::new(Thresholds::new(1), Comparator::Exact);
        assert_eq!(
            c.offer(1, SenderId(0), long(5)),
            Accept::Discarded(DiscardReason::NoOutstandingRequest)
        );
    }

    #[test]
    fn late_equivalent_message_is_benign() {
        let mut c = collator(1);
        c.offer(1, SenderId(0), long(5));
        c.offer(1, SenderId(1), long(5));
        c.offer(1, SenderId(2), long(5));
        assert_eq!(
            c.offer(1, SenderId(3), long(5)),
            Accept::Late { suspect: None }
        );
        assert!(c.suspects().is_empty());
    }

    #[test]
    fn late_dissenting_message_flags_suspect() {
        let mut c = collator(1);
        c.offer(1, SenderId(0), long(5));
        c.offer(1, SenderId(1), long(5));
        c.offer(1, SenderId(2), long(5));
        assert_eq!(
            c.offer(1, SenderId(3), long(666)),
            Accept::Late {
                suspect: Some(SenderId(3))
            }
        );
        assert_eq!(c.suspects(), vec![SenderId(3)]);
    }

    #[test]
    fn split_quorum_waits_for_more_messages() {
        // f=1, values 1,2,3 at quorum: no f+1 cluster -> pending; a 4th
        // message matching one of them decides
        let mut c = collator(1);
        c.offer(1, SenderId(0), long(1));
        c.offer(1, SenderId(1), long(2));
        assert_eq!(c.offer(1, SenderId(2), long(3)), Accept::Collected);
        match c.offer(1, SenderId(3), long(2)) {
            Accept::Decided(d) => assert_eq!(d.value, long(2)),
            other => panic!("expected decision, got {other:?}"),
        }
    }

    #[test]
    fn begin_garbage_collects_and_reports_stats() {
        let mut c = collator(1);
        c.offer(1, SenderId(0), long(5));
        c.offer(99, SenderId(1), long(5));
        let stats = c.begin(2);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.discarded, 1);
        assert!(!stats.decided);
        assert_eq!(c.collected(), 0, "state cleared");
        assert_eq!(c.outstanding(), Some(2));
        // old senders may contribute again for the new request
        assert_eq!(c.offer(2, SenderId(0), long(1)), Accept::Collected);
    }

    #[test]
    fn f2_needs_three_identical_of_five() {
        let mut c = Collator::new(Thresholds::new(2), Comparator::Exact);
        c.begin(1);
        c.offer(1, SenderId(0), long(8));
        c.offer(1, SenderId(1), long(9));
        c.offer(1, SenderId(2), long(8));
        assert_eq!(c.offer(1, SenderId(3), long(9)), Accept::Collected);
        match c.offer(1, SenderId(4), long(8)) {
            Accept::Decided(d) => {
                assert_eq!(d.value, long(8));
                assert_eq!(d.supporters.len(), 3);
            }
            other => panic!("expected decision, got {other:?}"),
        }
    }

    #[test]
    fn inexact_collation_decides_across_heterogeneous_values() {
        let mut c = Collator::new(Thresholds::new(1), Comparator::InexactRel(1e-6));
        c.begin(1);
        c.offer(1, SenderId(0), Value::Double(100.0));
        c.offer(1, SenderId(1), Value::Double(100.000001));
        match c.offer(1, SenderId(2), Value::Double(250.0)) {
            Accept::Decided(d) => {
                assert_eq!(d.dissenters, vec![SenderId(2)]);
            }
            other => panic!("expected decision, got {other:?}"),
        }
    }
}
