//! Byte-by-byte voting baseline (Immune-style).
//!
//! §3.7: Immune \[25\] and the BFTM systems (Rampart, Castro–Liskov) compare
//! raw message bytes, which "does not work correctly in the presence of
//! heterogeneity \[3\] or inexact values". This baseline exists so experiment
//! E6 can measure exactly that failure: correct heterogeneous replicas are
//! rejected by byte voting and accepted by the VVM.

use std::collections::BTreeMap;

use crate::vote::SenderId;

/// Outcome of a byte-level vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteVoteOutcome {
    /// Not enough identical frames yet.
    Pending,
    /// Some frame reached the threshold.
    Decided {
        /// The winning raw frame.
        frame: Vec<u8>,
        /// Senders whose frame was byte-identical to the winner.
        supporters: Vec<SenderId>,
        /// Everyone else — under byte voting these are (wrongly, when
        /// replicas are heterogeneous) treated as faulty.
        dissenters: Vec<SenderId>,
    },
}

/// Votes on raw frames: a frame wins when `threshold` byte-identical copies
/// exist.
///
/// # Examples
///
/// ```
/// use itdos_vote::byte::{byte_vote, ByteVoteOutcome};
/// use itdos_vote::vote::SenderId;
///
/// let frames = vec![
///     (SenderId(0), vec![1, 2, 3]),
///     (SenderId(1), vec![1, 2, 3]),
///     (SenderId(2), vec![9, 9, 9]),
/// ];
/// match byte_vote(&frames, 2) {
///     ByteVoteOutcome::Decided { frame, .. } => assert_eq!(frame, vec![1, 2, 3]),
///     ByteVoteOutcome::Pending => panic!("expected decision"),
/// }
/// ```
pub fn byte_vote(frames: &[(SenderId, Vec<u8>)], threshold: usize) -> ByteVoteOutcome {
    if threshold == 0 {
        return ByteVoteOutcome::Pending;
    }
    let mut buckets: BTreeMap<&[u8], Vec<SenderId>> = BTreeMap::new();
    for (sender, frame) in frames {
        buckets.entry(frame.as_slice()).or_default().push(*sender);
    }
    // deterministic winner: among buckets reaching threshold, the one whose
    // lowest sender id is smallest
    let winner = buckets
        .iter()
        .filter(|(_, senders)| senders.len() >= threshold)
        .min_by_key(|(_, senders)| senders.iter().min().copied());
    match winner {
        Some((frame, supporters)) => {
            let supporters = supporters.clone();
            let dissenters = frames
                .iter()
                .map(|(s, _)| *s)
                .filter(|s| !supporters.contains(s))
                .collect();
            ByteVoteOutcome::Decided {
                frame: frame.to_vec(),
                supporters,
                dissenters,
            }
        }
        None => ByteVoteOutcome::Pending,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_decide() {
        let frames = vec![
            (SenderId(0), vec![1]),
            (SenderId(1), vec![1]),
            (SenderId(2), vec![1]),
        ];
        match byte_vote(&frames, 2) {
            ByteVoteOutcome::Decided {
                supporters,
                dissenters,
                ..
            } => {
                assert_eq!(supporters.len(), 3);
                assert!(dissenters.is_empty());
            }
            ByteVoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn heterogeneous_correct_replicas_fail_byte_voting() {
        // the same i32 value marshalled big- vs little-endian: semantically
        // equal, byte-distinct — byte voting cannot find 2 identical
        let value = 0x01020304i32;
        let frames = vec![
            (SenderId(0), value.to_be_bytes().to_vec()),
            (SenderId(1), value.to_le_bytes().to_vec()),
            (SenderId(2), value.to_be_bytes().to_vec()),
        ];
        // threshold 3 (all correct!): pending forever — the E6 failure mode
        assert_eq!(byte_vote(&frames, 3), ByteVoteOutcome::Pending);
        // at threshold 2 it "decides" but wrongly brands replica 1 faulty
        match byte_vote(&frames, 2) {
            ByteVoteOutcome::Decided { dissenters, .. } => {
                assert_eq!(
                    dissenters,
                    vec![SenderId(1)],
                    "correct replica branded faulty"
                );
            }
            ByteVoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn pending_below_threshold() {
        let frames = vec![(SenderId(0), vec![1]), (SenderId(1), vec![2])];
        assert_eq!(byte_vote(&frames, 2), ByteVoteOutcome::Pending);
    }

    #[test]
    fn deterministic_among_tied_buckets() {
        let frames = vec![
            (SenderId(3), vec![9]),
            (SenderId(1), vec![9]),
            (SenderId(0), vec![4]),
            (SenderId(2), vec![4]),
        ];
        match byte_vote(&frames, 2) {
            ByteVoteOutcome::Decided { frame, .. } => {
                assert_eq!(frame, vec![4], "bucket containing lowest sender wins")
            }
            ByteVoteOutcome::Pending => panic!("expected decision"),
        }
    }

    #[test]
    fn zero_threshold_pending() {
        assert_eq!(byte_vote(&[], 0), ByteVoteOutcome::Pending);
    }
}
