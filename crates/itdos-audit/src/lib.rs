//! # itdos-audit — cross-replica forensic audit for ITDOS dumps
//!
//! The paper's intrusion-tolerance story tells you *that* the system
//! masked a fault (the voter out-voted a corrupt reply, the GM expelled
//! a replica); this crate answers *which replica was faulty, what kind of
//! fault it was, and when the evidence appeared*. It is an offline
//! consumer of the `itdos-obs` telemetry:
//!
//! 1. **Ingest** — a JSONL dump (or several, one per process) is parsed
//!    by `itdos_obs::jsonl::parse_dump`; every flight record carries its
//!    emitting process's scope, and `System::audit_jsonl` embeds the
//!    deployment [`Topology`] as `{"type":"topology",…}` lines, so one
//!    file is a complete forensic artifact with no out-of-band maps.
//! 2. **Merge** — per-process event streams become one causally ordered
//!    timeline keyed by `(sim-time, global seq, scope)`
//!    (`itdos_obs::jsonl::merge_events`).
//! 3. **Analyze** — a pluggable pipeline of deterministic [`Analyzer`]s:
//!    [`DivergenceAnalyzer`] (voter dissents × client fault proofs ×
//!    peer accusations × GM expulsions), [`ParticipationAnalyzer`]
//!    (silent replicas), and [`LivenessAnalyzer`] (primary equivocation,
//!    straggler stalls against per-round decisions, view-change storms,
//!    state-transfer loops, phase-latency budgets).
//! 4. **Score** — every finding debits the implicated replica's health
//!    (100 = clean, 0 = condemned); [`AuditReport::export_health`]
//!    writes the scores back through `itdos-obs` as the
//!    `replica.health{element}` gauge.
//!
//! Like everything in the workspace, the output is a pure function of
//! the input bytes: this crate is on the itdos-lint L2 determinism list,
//! stores everything in `BTreeMap`s, and never reads a clock, so
//! identical seeded runs produce byte-identical reports.

#![warn(missing_docs)]

pub mod analyze;
pub mod report;
pub mod topology;

pub use analyze::{
    Analyzer, AuditConfig, AuditInput, DivergenceAnalyzer, Finding, LivenessAnalyzer,
    ParticipationAnalyzer, Severity,
};
pub use report::{AuditReport, TimelineSummary};
pub use topology::{ElementInfo, Topology};

use std::collections::BTreeSet;

use itdos_obs::jsonl::{merge_events, parse_dump, Dump};

/// The audit pipeline: a topology, a configuration, and an ordered list
/// of analyzers.
pub struct Auditor {
    topology: Topology,
    config: AuditConfig,
    analyzers: Vec<Box<dyn Analyzer>>,
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("analyzers", &self.analyzers.len())
            .finish()
    }
}

impl Auditor {
    /// An auditor with the default pipeline and budgets.
    pub fn new(topology: Topology) -> Auditor {
        Auditor::with_config(topology, AuditConfig::default())
    }

    /// An auditor with explicit budgets.
    pub fn with_config(topology: Topology, config: AuditConfig) -> Auditor {
        Auditor {
            topology,
            config,
            analyzers: vec![
                Box::new(DivergenceAnalyzer),
                Box::new(ParticipationAnalyzer),
                Box::new(LivenessAnalyzer),
            ],
        }
    }

    /// An auditor whose topology is read from the dump itself (the
    /// `{"type":"topology",…}` lines `System::audit_jsonl` embeds).
    pub fn from_dump_text(text: &str) -> Result<Auditor, String> {
        let dump = parse_dump(text)?;
        let topology = Topology::from_dump(&dump).ok_or("dump carries no topology records")?;
        Ok(Auditor::new(topology))
    }

    /// Appends a custom analyzer to the pipeline (runs after the built-in
    /// ones; its findings sort into the same report).
    pub fn push_analyzer(&mut self, analyzer: Box<dyn Analyzer>) -> &mut Auditor {
        self.analyzers.push(analyzer);
        self
    }

    /// The topology under audit.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Audits one dump.
    pub fn audit(&self, text: &str) -> Result<AuditReport, String> {
        self.audit_streams(&[text])
    }

    /// Audits several per-process dumps as one system: registries are
    /// concatenated and the event streams merged into a single causally
    /// ordered timeline.
    pub fn audit_streams(&self, texts: &[&str]) -> Result<AuditReport, String> {
        let mut combined = Dump::default();
        let mut streams = Vec::with_capacity(texts.len());
        for text in texts {
            let mut dump = parse_dump(text)?;
            streams.push(std::mem::take(&mut dump.events));
            combined.counters.append(&mut dump.counters);
            combined.gauges.append(&mut dump.gauges);
            combined.histograms.append(&mut dump.histograms);
            combined.extras.append(&mut dump.extras);
        }
        combined.events = merge_events(streams);
        Ok(self.audit_dump(&combined))
    }

    /// Audits an already-parsed dump (events are re-merged into timeline
    /// order first).
    pub fn audit_dump(&self, dump: &Dump) -> AuditReport {
        let mut dump = dump.clone();
        dump.events = merge_events(vec![std::mem::take(&mut dump.events)]);

        let timeline = summarize(&dump);
        let input = AuditInput {
            dump: &dump,
            events: &dump.events,
            topology: &self.topology,
            config: &self.config,
        };
        let mut findings = Vec::new();
        if timeline.evicted > 0 {
            findings.push(Finding {
                analyzer: "timeline",
                severity: Severity::Info,
                kind: "truncated",
                element: None,
                domain: None,
                count: timeline.evicted,
                detail: format!(
                    "{} event(s) evicted from the flight ring before the dump; \
                     early evidence may be missing (raise the flight capacity)",
                    timeline.evicted
                ),
            });
        }
        for analyzer in &self.analyzers {
            findings.extend(analyzer.run(&input));
        }
        // most severe first; full key ordering keeps the report stable no
        // matter how analyzers interleave their output
        findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.element.cmp(&b.element))
                .then_with(|| a.analyzer.cmp(b.analyzer))
                .then_with(|| a.kind.cmp(b.kind))
                .then_with(|| a.detail.cmp(&b.detail))
        });

        let mut report = AuditReport {
            findings,
            health: Default::default(),
            timeline,
            topology: self.topology.clone(),
        };
        report.score_health();
        report
    }
}

fn summarize(dump: &Dump) -> TimelineSummary {
    let mut summary = TimelineSummary::default();
    if dump.events.is_empty() {
        return summary;
    }
    summary.events = dump.events.len() as u64;
    summary.first_seq = dump.events.iter().map(|e| e.seq).min().unwrap_or(0);
    summary.last_seq = dump.events.iter().map(|e| e.seq).max().unwrap_or(0);
    // sequence numbers are global within one recorder: a dump whose
    // smallest seq is nonzero lost that many events to ring eviction
    summary.evicted = summary.first_seq;
    let scopes: BTreeSet<u64> = dump.events.iter().map(|e| e.scope).collect();
    summary.processes = scopes.len() as u64;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology {
            gm_domain: 0,
            ..Topology::default()
        };
        t.domain_f.insert(0, 1);
        t.domain_f.insert(1, 1);
        for index in 0..4u64 {
            t.elements.insert(
                index,
                ElementInfo {
                    domain: 0,
                    index,
                    scope: 1_000_000 + index,
                },
            );
            t.elements.insert(
                4 + index,
                ElementInfo {
                    domain: 1,
                    index,
                    scope: 1_000_004 + index,
                },
            );
        }
        t.clients.insert(1, 1);
        t
    }

    fn event(seq: u64, at_us: u64, scope: u64, kind: &str, labels: &[(&str, u64)]) -> String {
        let mut l = String::new();
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                l.push(',');
            }
            l.push_str(&format!("\"{k}\":{v}"));
        }
        format!(
            "{{\"type\":\"event\",\"seq\":{seq},\"at_us\":{at_us},\"scope\":{scope},\"kind\":\"{kind}\",\"labels\":{{{l}}}}}\n"
        )
    }

    #[test]
    fn dissent_and_proof_localize_divergence() {
        let mut dump = String::new();
        dump.push_str(&event(
            0,
            10,
            1,
            "vote.dissent",
            &[("request", 1), ("sender", 7)],
        ));
        dump.push_str(&event(
            1,
            12,
            1,
            "client.accused",
            &[("client", 1), ("request", 1), ("accused", 7)],
        ));
        dump.push_str(&event(
            2,
            90,
            1_000_000,
            "gm.expelled",
            &[("domain", 1), ("element", 7)],
        ));
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.blamed_elements(), vec![7]);
        let f = &report.findings[0];
        assert_eq!((f.severity, f.kind), (Severity::Blame, "divergence"));
        assert_eq!(f.domain, Some(1));
        assert!(f.detail.contains("1 signed fault proof"));
        assert!(f.detail.contains("expelled by GM"));
        assert!(report.health[&7] < 100, "blame debits health");
        assert_eq!(report.health[&4], 100, "peers untouched");
    }

    #[test]
    fn silent_replica_blamed_only_when_domain_served_traffic() {
        let mut dump = String::new();
        for e in [4u64, 5, 6] {
            dump.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"element.replies\",\"labels\":{{\"element\":{e}}},\"value\":3}}\n"
            ));
        }
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.blamed_elements(), vec![7], "the quiet one");
        assert_eq!(report.findings[0].kind, "silent");
        // with no replies at all the domain proves nothing
        let empty = Auditor::new(topo()).audit("").unwrap();
        assert!(empty.blamed_elements().is_empty());
        assert_eq!(empty.health.values().filter(|&&h| h == 100).count(), 8);
    }

    #[test]
    fn pre_admission_silence_is_benign_post_admission_silence_is_not() {
        // elements 4..6 of domain 1 replied; element 7 never did — but it
        // was admitted mid-run (replica replacement), after which the
        // domain served nothing: benign, reported as Info only
        let mut dump = String::new();
        for e in [4u64, 5, 6] {
            dump.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"element.replies\",\"labels\":{{\"element\":{e}}},\"value\":3}}\n"
            ));
        }
        dump.push_str(&event(
            0,
            40,
            1,
            "vote.reply",
            &[("request", 1), ("sender", 4)],
        ));
        dump.push_str(&event(
            1,
            500,
            1_000_000,
            "gm.admitted",
            &[("domain", 1), ("element", 7), ("replaced", 6), ("epoch", 1)],
        ));
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert!(
            report.blamed_elements().is_empty(),
            "pre-admission silence smeared: {}",
            report.render()
        );
        assert!(report.findings.iter().any(|f| f.kind == "quiet-joiner"
            && f.element == Some(7)
            && f.severity == Severity::Info));
        assert_eq!(report.health[&7], 100, "no health debit for the joiner");

        // …but once peers answer voted rounds AFTER the admission and the
        // joiner still says nothing, the silence is real
        dump.push_str(&event(
            2,
            900,
            1,
            "vote.reply",
            &[("request", 2), ("sender", 4)],
        ));
        dump.push_str(&event(
            3,
            905,
            1,
            "vote.reply",
            &[("request", 2), ("sender", 5)],
        ));
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.blamed_elements(), vec![7]);
        let f = &report.findings[0];
        assert_eq!((f.kind, f.count), ("silent", 2));
        assert!(f.detail.contains("after its admission"));
    }

    #[test]
    fn stalls_respect_round_markers() {
        let c = AuditConfig::default();
        let late = c.stall_budget_us + 1;
        let mut dump = String::new();
        // round 1: decided at t=100, element 6 replies way past budget
        dump.push_str(&event(0, 50, 1, "vote.begin", &[("request", 1)]));
        dump.push_str(&event(
            1,
            60,
            1,
            "vote.reply",
            &[("request", 1), ("sender", 4)],
        ));
        dump.push_str(&event(2, 100, 1, "vote.decided", &[("request", 1)]));
        dump.push_str(&event(
            3,
            100 + late,
            1,
            "vote.reply",
            &[("request", 1), ("sender", 6)],
        ));
        // round 2 reuses request id 1 much later: its pre-decision replies
        // must NOT count as stalls against round 1's decision
        let t2 = 10 * late;
        dump.push_str(&event(4, t2, 1, "vote.begin", &[("request", 1)]));
        dump.push_str(&event(
            5,
            t2 + 5,
            1,
            "vote.reply",
            &[("request", 1), ("sender", 4)],
        ));
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.blamed_elements(), vec![6]);
        assert_eq!(report.findings[0].kind, "stall");
        assert_eq!(report.findings[0].count, 1);
    }

    #[test]
    fn equivocation_blames_the_view_primary() {
        let mut dump = String::new();
        // two backups of domain 1 (elements 5 and 6) refuse contradictory
        // pre-prepares in view 0 -> primary is element 4
        dump.push_str(&event(
            0,
            10,
            1_000_005,
            "bft.equivocation",
            &[("replica", 1), ("seq", 3), ("view", 0)],
        ));
        dump.push_str(&event(
            1,
            11,
            1_000_006,
            "bft.equivocation",
            &[("replica", 2), ("seq", 3), ("view", 0)],
        ));
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.blamed_elements(), vec![4]);
        let f = &report.findings[0];
        assert_eq!(f.kind, "equivocation");
        assert_eq!(f.count, 1, "same slot reported twice, deduplicated");
    }

    #[test]
    fn truncated_timeline_is_reported_not_ignored() {
        let dump = event(40, 10, 1, "vote.begin", &[("request", 1)]);
        let report = Auditor::new(topo()).audit(&dump).unwrap();
        assert_eq!(report.timeline.evicted, 40);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == "truncated" && f.severity == Severity::Info));
        assert!(report.render().contains("TRUNCATED"));
    }

    #[test]
    fn reports_are_deterministic_and_render_blame() {
        let mut dump = String::new();
        dump.push_str(&event(
            0,
            10,
            1,
            "vote.dissent",
            &[("request", 1), ("sender", 5)],
        ));
        let auditor = Auditor::new(topo());
        let a = auditor.audit(&dump).unwrap();
        let b = auditor.audit(&dump).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("blame: elements [5]"));
        assert!(a.render().contains("== forensic audit =="));
    }
}
