//! Deployment topology, self-described inside the dump.
//!
//! The auditor needs to know which scopes are replicas of which domain,
//! what each domain's fault bound `f` is, and which scopes are clients —
//! none of which the raw telemetry carries. Rather than requiring an
//! out-of-band process map, `System::audit_jsonl` appends a few
//! `{"type":"topology",…}` lines to the dump; [`Topology::from_dump`]
//! reads them back, so a dump file is a complete, portable forensic
//! artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use itdos_obs::jsonl::{Dump, JsonValue};

/// One replica's place in the deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElementInfo {
    /// Replication domain the element belongs to.
    pub domain: u64,
    /// Replica index within the domain (0-based construction order).
    pub index: u64,
    /// The element's observability scope (its endpoint code).
    pub scope: u64,
}

/// The deployment map the analyzers run against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Topology {
    /// The Group Manager's domain id.
    pub gm_domain: u64,
    /// Fault bound `f` per domain (GM domain included).
    pub domain_f: BTreeMap<u64, u64>,
    /// Every element, keyed by global element id.
    pub elements: BTreeMap<u64, ElementInfo>,
    /// Singleton clients: client id → scope.
    pub clients: BTreeMap<u64, u64>,
}

impl Topology {
    /// The element whose telemetry carries `scope`, if any.
    pub fn element_of_scope(&self, scope: u64) -> Option<u64> {
        self.elements
            .iter()
            .find(|(_, info)| info.scope == scope)
            .map(|(&id, _)| id)
    }

    /// Element ids of one domain, ordered by replica index.
    pub fn domain_members(&self, domain: u64) -> Vec<u64> {
        let mut members: Vec<(u64, u64)> = self
            .elements
            .iter()
            .filter(|(_, info)| info.domain == domain)
            .map(|(&id, info)| (info.index, id))
            .collect();
        members.sort_unstable();
        members.into_iter().map(|(_, id)| id).collect()
    }

    /// The primary element of `domain` in `view` (round-robin rotation,
    /// matching `itdos_bft::config::GroupConfig::primary_of`).
    pub fn primary_of(&self, domain: u64, view: u64) -> Option<u64> {
        let members = self.domain_members(domain);
        if members.is_empty() {
            return None;
        }
        Some(members[(view % members.len() as u64) as usize])
    }

    /// Server (non-GM) domain ids in ascending order.
    pub fn server_domains(&self) -> Vec<u64> {
        self.domain_f
            .keys()
            .copied()
            .filter(|&d| d != self.gm_domain)
            .collect()
    }

    /// Serializes the topology as JSONL records appended to a dump.
    pub fn to_jsonl(&self, out: &mut String) {
        for (&domain, &f) in &self.domain_f {
            let gm = u64::from(domain == self.gm_domain);
            let _ = writeln!(
                out,
                "{{\"type\":\"topology\",\"kind\":\"domain\",\"domain\":{domain},\"f\":{f},\"gm\":{gm}}}"
            );
        }
        for (&element, info) in &self.elements {
            let _ = writeln!(
                out,
                "{{\"type\":\"topology\",\"kind\":\"element\",\"element\":{element},\"domain\":{},\"index\":{},\"scope\":{}}}",
                info.domain, info.index, info.scope
            );
        }
        for (&client, &scope) in &self.clients {
            let _ = writeln!(
                out,
                "{{\"type\":\"topology\",\"kind\":\"client\",\"client\":{client},\"scope\":{scope}}}"
            );
        }
    }

    /// Reconstructs a topology from the `{"type":"topology",…}` records a
    /// parsed dump preserved in [`Dump::extras`]. `None` when the dump
    /// carries no topology at all.
    pub fn from_dump(dump: &Dump) -> Option<Topology> {
        let mut topo = Topology::default();
        let mut seen = false;
        for extra in &dump.extras {
            if extra.get("type").and_then(JsonValue::as_str) != Some("topology") {
                continue;
            }
            match extra.get("kind").and_then(JsonValue::as_str) {
                Some("domain") => {
                    let domain = extra.get("domain")?.as_u64()?;
                    let f = extra.get("f")?.as_u64()?;
                    topo.domain_f.insert(domain, f);
                    if extra.get("gm")?.as_u64()? == 1 {
                        topo.gm_domain = domain;
                    }
                    seen = true;
                }
                Some("element") => {
                    let element = extra.get("element")?.as_u64()?;
                    topo.elements.insert(
                        element,
                        ElementInfo {
                            domain: extra.get("domain")?.as_u64()?,
                            index: extra.get("index")?.as_u64()?,
                            scope: extra.get("scope")?.as_u64()?,
                        },
                    );
                    seen = true;
                }
                Some("client") => {
                    let client = extra.get("client")?.as_u64()?;
                    let scope = extra.get("scope")?.as_u64()?;
                    topo.clients.insert(client, scope);
                    seen = true;
                }
                _ => {}
            }
        }
        seen.then_some(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_obs::jsonl::parse_dump;

    fn sample() -> Topology {
        let mut t = Topology {
            gm_domain: 0,
            ..Topology::default()
        };
        t.domain_f.insert(0, 1);
        t.domain_f.insert(1, 1);
        for (element, domain, index) in [(0, 0, 0), (1, 0, 1), (4, 1, 0), (5, 1, 1)] {
            t.elements.insert(
                element,
                ElementInfo {
                    domain,
                    index,
                    scope: 1_000_000 + element,
                },
            );
        }
        t.clients.insert(7, 7);
        t
    }

    #[test]
    fn round_trips_through_jsonl() {
        let topo = sample();
        let mut out = String::new();
        topo.to_jsonl(&mut out);
        let dump = parse_dump(&out).expect("topology lines parse");
        assert_eq!(Topology::from_dump(&dump), Some(topo));
    }

    #[test]
    fn lookups_and_primary_rotation() {
        let topo = sample();
        assert_eq!(topo.element_of_scope(1_000_004), Some(4));
        assert_eq!(topo.element_of_scope(99), None);
        assert_eq!(topo.domain_members(1), vec![4, 5]);
        assert_eq!(topo.primary_of(1, 0), Some(4));
        assert_eq!(topo.primary_of(1, 3), Some(5));
        assert_eq!(topo.primary_of(9, 0), None);
        assert_eq!(topo.server_domains(), vec![1]);
    }

    #[test]
    fn from_dump_is_none_without_topology_records() {
        let dump = parse_dump("{\"type\":\"other\"}\n").unwrap();
        assert_eq!(Topology::from_dump(&dump), None);
    }
}
