//! The audit report: findings, per-replica health, and rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use itdos_obs::{LabelValue, Obs};

use crate::analyze::{penalty_weight, Finding, Severity};
use crate::topology::Topology;

/// Summary of the merged event timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Events in the merged timeline.
    pub events: u64,
    /// Smallest sequence number retained.
    pub first_seq: u64,
    /// Largest sequence number retained.
    pub last_seq: u64,
    /// Events evicted from the bounded flight ring before the dump —
    /// nonzero means the timeline is truncated and early evidence is
    /// gone. Reported, never silently ignored.
    pub evicted: u64,
    /// Distinct scopes (processes) that emitted events.
    pub processes: u64,
}

/// The auditor's output for one dump.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All findings, most severe first (ties broken deterministically).
    pub findings: Vec<Finding>,
    /// Health score per element, `0..=100`; every element of the
    /// topology is present, healthy ones at 100.
    pub health: BTreeMap<u64, i64>,
    /// Timeline coverage.
    pub timeline: TimelineSummary,
    /// The topology the analysis ran against.
    pub topology: Topology,
}

impl AuditReport {
    /// Elements concluded faulty (ascending, deduplicated).
    pub fn blamed_elements(&self) -> Vec<u64> {
        let mut blamed: Vec<u64> = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Blame)
            .filter_map(|f| f.element)
            .collect();
        blamed.sort_unstable();
        blamed.dedup();
        blamed
    }

    /// Computes health from the findings: every element starts at 100 and
    /// loses `penalty_weight(kind) × min(count, 3)` per finding against
    /// it, floored at 0.
    pub(crate) fn score_health(&mut self) {
        self.health = self
            .topology
            .elements
            .keys()
            .map(|&e| (e, 100i64))
            .collect();
        for f in &self.findings {
            let Some(element) = f.element else { continue };
            let Some(slot) = self.health.get_mut(&element) else {
                continue;
            };
            *slot = (*slot - penalty_weight(f.kind, f.severity) * f.count.min(3) as i64).max(0);
        }
    }

    /// Exports the health scores back through the observability layer as
    /// the `replica.health{element}` gauge, so the GM or a drill can read
    /// them like any other metric.
    pub fn export_health(&self, obs: &Obs) {
        for (&element, &health) in &self.health {
            obs.gauge(
                "replica.health",
                &[("element", LabelValue::U64(element))],
                health,
            );
        }
    }

    /// Renders the deterministic human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== forensic audit ==\n");
        let t = &self.timeline;
        if t.events == 0 {
            out.push_str("timeline: no events\n");
        } else {
            let _ = write!(
                out,
                "timeline: {} event(s), seq {}..{}, {} process(es)",
                t.events, t.first_seq, t.last_seq, t.processes
            );
            if t.evicted > 0 {
                let _ = write!(out, " [TRUNCATED: {} earlier event(s) evicted]", t.evicted);
            }
            out.push('\n');
        }
        let blamed = self.blamed_elements();
        if blamed.is_empty() {
            out.push_str("blame: none\n");
        } else {
            let _ = write!(out, "blame: elements [");
            for (i, e) in blamed.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{e}");
            }
            out.push_str("]\n");
        }
        if self.findings.is_empty() {
            out.push_str("findings: none\n");
        } else {
            out.push_str("findings:\n");
            for f in &self.findings {
                let _ = write!(out, "  [{}] {}/{}", f.severity.tag(), f.analyzer, f.kind);
                if let Some(e) = f.element {
                    let _ = write!(out, " element {e}");
                }
                if let Some(d) = f.domain {
                    let _ = write!(out, " (domain {d})");
                }
                let _ = writeln!(out, ": {}", f.detail);
            }
        }
        if !self.health.is_empty() {
            out.push_str("health:\n");
            for (&element, &health) in &self.health {
                let place = self
                    .topology
                    .elements
                    .get(&element)
                    .map(|i| format!("domain {} replica {}", i.domain, i.index))
                    .unwrap_or_else(|| "unknown".to_string());
                let _ = writeln!(out, "  element {element:<4} ({place:<20}) {health:>3}");
            }
        }
        out
    }
}
