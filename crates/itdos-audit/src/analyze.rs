//! The deterministic analyzer pipeline.
//!
//! Each [`Analyzer`] reads the same immutable [`AuditInput`] — the typed
//! dump, the merged event timeline, the topology, and the budget
//! configuration — and emits [`Finding`]s. Analyzers are pure functions
//! of their input and iterate only ordered structures, so the pipeline's
//! output is byte-stable for identical dumps; plugging in an extra
//! analyzer (see [`crate::Auditor::push_analyzer`]) cannot perturb the
//! findings of the built-in ones.

use std::collections::{BTreeMap, BTreeSet};

use itdos_obs::jsonl::{Dump, EventRecord};

use crate::topology::Topology;

/// Latency budgets and thresholds the detectors judge against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditConfig {
    /// A voted reply landing this long (µs) after its round's decision is
    /// a stall round for the sender.
    pub stall_budget_us: u64,
    /// Stall rounds needed before a sender is blamed as a straggler.
    pub min_stall_rounds: u64,
    /// View-change attempts by one replica before it counts as a storm.
    pub view_change_storm: u64,
    /// State fetches by one replica before it counts as a transfer loop.
    pub state_fetch_loop: u64,
    /// p99 budget (µs) for the BFT ordering-phase histograms.
    pub phase_budget_us: u64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            stall_budget_us: 50_000,
            min_stall_rounds: 1,
            view_change_storm: 4,
            state_fetch_loop: 3,
            phase_budget_us: 1_000_000,
        }
    }
}

/// How strongly a finding implicates its subject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth reporting; implicates nobody.
    Info,
    /// Suspicious but below the evidence bar for blame.
    Warn,
    /// The subject element is concluded faulty.
    Blame,
}

impl Severity {
    /// Fixed-width display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Info => "INFO ",
            Severity::Warn => "WARN ",
            Severity::Blame => "BLAME",
        }
    }
}

/// One conclusion drawn from the timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Name of the analyzer that produced it.
    pub analyzer: &'static str,
    /// Evidence strength.
    pub severity: Severity,
    /// Short machine-readable kind (`divergence`, `silent`, `stall`, …).
    pub kind: &'static str,
    /// Implicated element, when the finding localizes to one.
    pub element: Option<u64>,
    /// The element's domain, when known.
    pub domain: Option<u64>,
    /// Number of independent pieces of evidence (rounds, events).
    pub count: u64,
    /// Human-readable explanation, deterministic for identical dumps.
    pub detail: String,
}

/// Everything an analyzer may read.
pub struct AuditInput<'a> {
    /// The typed dump (counters, gauges, histograms).
    pub dump: &'a Dump,
    /// Flight events, merged into `(at_us, seq, scope)` order.
    pub events: &'a [EventRecord],
    /// The deployment map.
    pub topology: &'a Topology,
    /// Budgets and thresholds.
    pub config: &'a AuditConfig,
}

/// One stage of the pipeline.
pub trait Analyzer {
    /// Stable analyzer name (used in findings and reports).
    fn name(&self) -> &'static str;
    /// Runs over the input and returns findings in deterministic order.
    fn run(&self, input: &AuditInput<'_>) -> Vec<Finding>;
}

/// Health-score penalty per evidence unit for a finding kind. Applied as
/// `weight × min(count, 3)` and clamped so health stays in `0..=100`
/// (the formula documented in DESIGN.md §12).
pub fn penalty_weight(kind: &str, severity: Severity) -> i64 {
    match kind {
        "divergence" => 30,
        "expelled" => 40,
        "accused" => 25,
        "silent" => 60,
        "stall" => 20,
        "equivocation" => 50,
        "accusation" => 10,
        "view-change-storm" => 5,
        "state-transfer-loop" => 5,
        _ => match severity {
            Severity::Blame => 25,
            Severity::Warn => 5,
            Severity::Info => 0,
        },
    }
}

fn domain_of(topology: &Topology, element: u64) -> Option<u64> {
    topology.elements.get(&element).map(|info| info.domain)
}

/// Divergence localization: correlates voter dissents (`vote.dissent`,
/// `vote.late_dissent`), client fault proofs (`client.accused`),
/// element-level accusations (`element.accuse`), and GM expulsions
/// (`gm.expelled`) into per-element blame.
pub struct DivergenceAnalyzer;

impl Analyzer for DivergenceAnalyzer {
    fn name(&self) -> &'static str {
        "divergence"
    }

    fn run(&self, input: &AuditInput<'_>) -> Vec<Finding> {
        let mut dissent_rounds: BTreeMap<u64, u64> = BTreeMap::new();
        let mut proofs: BTreeMap<u64, u64> = BTreeMap::new();
        let mut accusers: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        let mut expelled: BTreeSet<u64> = BTreeSet::new();
        for e in input.events {
            match e.kind.as_str() {
                "vote.dissent" | "vote.late_dissent" => {
                    if let Some(sender) = e.label_u64("sender") {
                        *dissent_rounds.entry(sender).or_insert(0) += 1;
                    }
                }
                "client.accused" => {
                    if let Some(accused) = e.label_u64("accused") {
                        *proofs.entry(accused).or_insert(0) += 1;
                    }
                }
                "element.accuse" => {
                    if let (Some(accuser), Some(accused)) =
                        (e.label_u64("accuser"), e.label_u64("accused"))
                    {
                        accusers.entry(accused).or_default().insert(accuser);
                    }
                }
                "gm.expelled" => {
                    if let Some(element) = e.label_u64("element") {
                        expelled.insert(element);
                    }
                }
                _ => {}
            }
        }
        let mut findings = Vec::new();
        for (&element, &rounds) in &dissent_rounds {
            let n_proofs = proofs.get(&element).copied().unwrap_or(0);
            let fate = if expelled.contains(&element) {
                "expelled by GM"
            } else {
                "not expelled"
            };
            findings.push(Finding {
                analyzer: self.name(),
                severity: Severity::Blame,
                kind: "divergence",
                element: Some(element),
                domain: domain_of(input.topology, element),
                count: rounds,
                detail: format!(
                    "replies diverged from the voted value in {rounds} round(s); \
                     {n_proofs} signed fault proof(s); {fate}"
                ),
            });
        }
        for &element in &expelled {
            if dissent_rounds.contains_key(&element) {
                continue;
            }
            findings.push(Finding {
                analyzer: self.name(),
                severity: Severity::Blame,
                kind: "expelled",
                element: Some(element),
                domain: domain_of(input.topology, element),
                count: 1,
                detail: "expelled by the GM without recorded value dissent \
                         (laggard / queue-GC path)"
                    .to_string(),
            });
        }
        for (&accused, who) in &accusers {
            let f = domain_of(input.topology, accused)
                .and_then(|d| input.topology.domain_f.get(&d).copied())
                .unwrap_or(0);
            let distinct = who.len() as u64;
            let (severity, kind) = if distinct >= f + 1 {
                (Severity::Blame, "accused")
            } else {
                (Severity::Warn, "accusation")
            };
            findings.push(Finding {
                analyzer: self.name(),
                severity,
                kind,
                element: Some(accused),
                domain: domain_of(input.topology, accused),
                count: distinct,
                detail: format!("accused by {distinct} distinct peer(s) (f+1 = {})", f + 1),
            });
        }
        findings
    }
}

/// Participation check: a server-domain element whose domain served
/// requests but which never emitted a reply is silent. Honest replicas
/// all reply, so a clean run cannot trip this.
///
/// An element admitted mid-run by replica replacement (DESIGN.md §14)
/// could not have replied before it existed, so its pre-admission window
/// is benign: its silence is judged only against the voted rounds its
/// domain served *after* the GM's `gm.admitted` event for it.
pub struct ParticipationAnalyzer;

impl Analyzer for ParticipationAnalyzer {
    fn name(&self) -> &'static str {
        "participation"
    }

    fn run(&self, input: &AuditInput<'_>) -> Vec<Finding> {
        // earliest `gm.admitted` timestamp per admitted element (every GM
        // element records the event; the first one marks the admission)
        let mut admitted_at: BTreeMap<u64, u64> = BTreeMap::new();
        for e in input.events {
            if e.kind != "gm.admitted" {
                continue;
            }
            if let Some(element) = e.label_u64("element") {
                let at = admitted_at.entry(element).or_insert(e.at_us);
                *at = (*at).min(e.at_us);
            }
        }
        let mut findings = Vec::new();
        for domain in input.topology.server_domains() {
            let members = input.topology.domain_members(domain);
            let replies: Vec<u64> = members
                .iter()
                .map(|&e| {
                    input
                        .dump
                        .counter_with_label("element.replies", "element", e)
                        .unwrap_or(0)
                })
                .collect();
            let busiest = replies.iter().copied().max().unwrap_or(0);
            if busiest == 0 {
                continue; // the domain saw no traffic; silence proves nothing
            }
            for (&element, &emitted) in members.iter().zip(&replies) {
                if emitted != 0 {
                    continue;
                }
                if let Some(&admitted) = admitted_at.get(&element) {
                    // voted replies by domain peers after this admission:
                    // only that traffic can convict the newcomer
                    let post = input
                        .events
                        .iter()
                        .filter(|e| {
                            e.kind == "vote.reply"
                                && e.at_us >= admitted
                                && e.label_u64("sender").is_some_and(|s| members.contains(&s))
                        })
                        .count() as u64;
                    if post == 0 {
                        findings.push(Finding {
                            analyzer: self.name(),
                            severity: Severity::Info,
                            kind: "quiet-joiner",
                            element: Some(element),
                            domain: Some(domain),
                            count: 0,
                            detail: format!(
                                "admitted at {admitted}us; the domain served no voted \
                                 round afterwards, so its silence is benign"
                            ),
                        });
                        continue;
                    }
                    findings.push(Finding {
                        analyzer: self.name(),
                        severity: Severity::Blame,
                        kind: "silent",
                        element: Some(element),
                        domain: Some(domain),
                        count: post,
                        detail: format!(
                            "emitted 0 replies across {post} voted peer reply(ies) \
                             after its admission at {admitted}us"
                        ),
                    });
                    continue;
                }
                findings.push(Finding {
                    analyzer: self.name(),
                    severity: Severity::Blame,
                    kind: "silent",
                    element: Some(element),
                    domain: Some(domain),
                    count: busiest,
                    detail: format!("emitted 0 replies while a domain peer emitted {busiest}"),
                });
            }
        }
        findings
    }
}

/// Liveness forensics: primary equivocation, straggler stalls against
/// the per-round voting decision, view-change storms, state-transfer
/// loops, and ordering-phase latency budgets.
pub struct LivenessAnalyzer;

impl Analyzer for LivenessAnalyzer {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn run(&self, input: &AuditInput<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        self.equivocations(input, &mut findings);
        self.stalls(input, &mut findings);
        self.storms_and_loops(input, &mut findings);
        self.phase_budgets(input, &mut findings);
        findings
    }
}

impl LivenessAnalyzer {
    fn equivocations(&self, input: &AuditInput<'_>, findings: &mut Vec<Finding>) {
        // a `bft.equivocation` event is recorded by the replica that saw
        // the contradictory pre-prepare; the culprit is the primary of
        // that view in the refuser's domain. Several refusers may report
        // the same (view, seq), so dedup per primary.
        let mut contradicted: BTreeMap<u64, BTreeSet<(u64, u64)>> = BTreeMap::new();
        for e in input.events {
            if e.kind != "bft.equivocation" {
                continue;
            }
            let (Some(view), Some(seq)) = (e.label_u64("view"), e.label_u64("seq")) else {
                continue;
            };
            let Some(refuser) = input.topology.element_of_scope(e.scope) else {
                continue;
            };
            let Some(domain) = domain_of(input.topology, refuser) else {
                continue;
            };
            let Some(primary) = input.topology.primary_of(domain, view) else {
                continue;
            };
            contradicted.entry(primary).or_default().insert((view, seq));
        }
        for (&primary, slots) in &contradicted {
            let (view, seq) = *slots.iter().next().expect("nonempty");
            findings.push(Finding {
                analyzer: self.name(),
                severity: Severity::Blame,
                kind: "equivocation",
                element: Some(primary),
                domain: domain_of(input.topology, primary),
                count: slots.len() as u64,
                detail: format!(
                    "sent contradictory pre-prepares for {} slot(s), first at view {view} seq {seq}",
                    slots.len()
                ),
            });
        }
    }

    fn stalls(&self, input: &AuditInput<'_>, findings: &mut Vec<Finding>) {
        // walk the merged timeline in order, tracking the decision time of
        // the round currently open per (scope, request); `vote.begin`
        // resets the slot so a new round with a recycled request id is
        // never judged against a stale decision
        let mut decided: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut stall_rounds: BTreeMap<u64, u64> = BTreeMap::new();
        for e in input.events {
            let Some(request) = e.label_u64("request") else {
                continue;
            };
            let key = (e.scope, request);
            match e.kind.as_str() {
                "vote.begin" => {
                    decided.remove(&key);
                }
                "vote.decided" => {
                    decided.insert(key, e.at_us);
                }
                "vote.reply" => {
                    let (Some(&at_decided), Some(sender)) =
                        (decided.get(&key), e.label_u64("sender"))
                    else {
                        continue;
                    };
                    if e.at_us.saturating_sub(at_decided) > input.config.stall_budget_us {
                        *stall_rounds.entry(sender).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
        for (&element, &rounds) in &stall_rounds {
            if rounds < input.config.min_stall_rounds {
                continue;
            }
            findings.push(Finding {
                analyzer: self.name(),
                severity: Severity::Blame,
                kind: "stall",
                element: Some(element),
                domain: domain_of(input.topology, element),
                count: rounds,
                detail: format!(
                    "voted replies landed more than {}us after the decision in {rounds} round(s)",
                    input.config.stall_budget_us
                ),
            });
        }
    }

    fn storms_and_loops(&self, input: &AuditInput<'_>, findings: &mut Vec<Finding>) {
        let mut view_changes: BTreeMap<u64, u64> = BTreeMap::new();
        let mut fetches: BTreeMap<u64, u64> = BTreeMap::new();
        for e in input.events {
            let bucket = match e.kind.as_str() {
                "bft.view_change" => &mut view_changes,
                "bft.state_fetch" => &mut fetches,
                _ => continue,
            };
            if let Some(element) = input.topology.element_of_scope(e.scope) {
                *bucket.entry(element).or_insert(0) += 1;
            }
        }
        for (&element, &n) in &view_changes {
            if n >= input.config.view_change_storm {
                findings.push(Finding {
                    analyzer: self.name(),
                    severity: Severity::Warn,
                    kind: "view-change-storm",
                    element: Some(element),
                    domain: domain_of(input.topology, element),
                    count: n,
                    detail: format!(
                        "attempted {n} view changes (threshold {})",
                        input.config.view_change_storm
                    ),
                });
            }
        }
        for (&element, &n) in &fetches {
            if n >= input.config.state_fetch_loop {
                findings.push(Finding {
                    analyzer: self.name(),
                    severity: Severity::Warn,
                    kind: "state-transfer-loop",
                    element: Some(element),
                    domain: domain_of(input.topology, element),
                    count: n,
                    detail: format!(
                        "requested state transfer {n} times (threshold {})",
                        input.config.state_fetch_loop
                    ),
                });
            }
        }
    }

    fn phase_budgets(&self, input: &AuditInput<'_>, findings: &mut Vec<Finding>) {
        for h in &input.dump.histograms {
            if !matches!(
                h.name.as_str(),
                "bft.prepare_us" | "bft.commit_us" | "bft.order_us"
            ) || h.count == 0
                || h.p99 <= input.config.phase_budget_us
            {
                continue;
            }
            let replica = h
                .label_u64("replica")
                .map(|r| format!(" (replica index {r})"))
                .unwrap_or_default();
            findings.push(Finding {
                analyzer: self.name(),
                severity: Severity::Warn,
                kind: "phase-budget",
                element: None,
                domain: None,
                count: h.count,
                detail: format!(
                    "{}{replica}: p99 {}us exceeds the {}us budget",
                    h.name, h.p99, input.config.phase_budget_us
                ),
            });
        }
    }
}
