//! Deterministic pseudo-randomness for ITDOS, with no external crates.
//!
//! ITDOS replicas must be deterministic state machines: every byte that can
//! reach a marshalled message or a vote has to replay identically across
//! heterogeneous replicas. That rules out OS entropy at runtime, so this
//! crate deliberately offers **no** `thread_rng`, `from_entropy`, or `OsRng`
//! equivalent — every generator is constructed from an explicit seed that the
//! caller owns. The `itdos-lint` L2 determinism rule enforces the same policy
//! at the source level.
//!
//! The API mirrors the (tiny) slice of the `rand` crate the workspace
//! actually uses — [`Rng`], [`SeedableRng`], and [`rngs::SmallRng`] — so
//! call sites read identically to upstream `rand`:
//!
//! ```
//! use xrand::rngs::SmallRng;
//! use xrand::{Rng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let x: u64 = rng.gen();
//! let p: f64 = rng.gen();
//! let d = rng.gen_range(0..=9u64);
//! assert!((0.0..1.0).contains(&p));
//! assert!(d <= 9);
//! // same seed, same stream
//! assert_eq!(SmallRng::seed_from_u64(7).gen::<u64>(), x);
//! ```
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the same construction `rand`'s own `SmallRng` family uses on
//! 64-bit targets, chosen here for speed and reproducibility, not for
//! cryptographic strength. Key material must come from `itdos-crypto`
//! derivations instead.

/// Types that can be sampled uniformly from a generator's raw output.
///
/// Mirrors `rand`'s `Standard` distribution for the primitives ITDOS uses.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `bits >> 11` construction).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value inside the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// threshold on the low word would be faster; rejection keeps it obvious).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// A source of pseudo-random data, mirroring the used subset of `xrand::Rng`.
pub trait Rng {
    /// Returns the next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (per [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from 32 bytes of seed material.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a 64-bit seed into full generator state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

/// SplitMix64 seed expander (public-domain constants from Vigna's reference).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators (mirrors `xrand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng, SplitMix64};

    /// xoshiro256++ 1.0 — small, fast, and deterministic.
    ///
    /// Drop-in for the workspace's previous `xrand::rngs::SmallRng` usage;
    /// note the output stream differs from `rand`'s, which only matters for
    /// tests that hard-coded expected draws (none do).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; re-expand instead.
                let mut sm = SplitMix64 { state: 0xDEAD_BEEF };
                for w in &mut s {
                    *w = sm.next();
                }
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn reference_vector_xoshiro256plusplus() {
        // First outputs for state {1, 2, 3, 4}, from the xoshiro reference
        // implementation (prng.di.unimi.it).
        let mut s = [0u8; 32];
        s[0] = 1;
        s[8] = 2;
        s[16] = 3;
        s[24] = 4;
        let mut rng = SmallRng::from_seed(s);
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| 0).collect();
        let mut r1 = SmallRng::seed_from_u64(42);
        let mut r2 = SmallRng::seed_from_u64(42);
        let mut r3 = SmallRng::seed_from_u64(43);
        let s1: Vec<u64> = a.iter().map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = a.iter().map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = a.iter().map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..=9u64);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values in 0..=9 drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(5..8u32);
            assert!((5..8).contains(&v));
        }
        // single-point inclusive range is fine
        assert_eq!(rng.gen_range(3..=3u64), 3);
    }

    #[test]
    fn fill_covers_unaligned_tails() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let mut big = [0u8; 32];
        SmallRng::seed_from_u64(2).fill(&mut big);
        assert_eq!(&big[..8], &buf[..8], "same seed, same prefix");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
