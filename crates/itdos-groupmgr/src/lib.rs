//! # itdos-groupmgr — the Group Manager replication domain
//!
//! "The Group Manager handles replication domain membership and virtual
//! connection management in ITDOS" (§2). It is not a CORBA server — it
//! lives in the middleware transport — and is itself replicated for
//! intrusion tolerance. This crate implements its deterministic state
//! machine and keying machinery:
//!
//! * [`membership`] — domain/element registry with expulsion;
//! * [`manager`] — connection establishment (Figure 3), `change_request`
//!   validation (signed-message proofs from singletons via the marshalling
//!   engine; `f+1` concurring votes from domains), and rekey-based
//!   expulsion;
//! * [`keying`] — threshold (DPRF) key generation beside the traditional
//!   whole-key baseline, with the E7 exposure analysis.
//!
//! # Examples
//!
//! ```
//! use itdos_crypto::sign::SigningKey;
//! use itdos_groupmgr::manager::GroupManager;
//! use itdos_groupmgr::membership::{
//!     DomainId, DomainRecord, ElementRecord, Endpoint, Membership,
//! };
//! use itdos_vote::vote::SenderId;
//!
//! let mut membership = Membership::new();
//! membership.register_domain(DomainRecord::new(
//!     DomainId(1),
//!     1,
//!     (0..4)
//!         .map(|i| ElementRecord {
//!             id: SenderId(i),
//!             verifying_key: SigningKey::from_seed(&i.to_le_bytes()).verifying_key(),
//!         })
//!         .collect(),
//! ));
//! membership.register_singleton(9, SigningKey::from_seed(b"client").verifying_key());
//!
//! let mut gm = GroupManager::new(membership, [7u8; 32]);
//! let dist = gm.open_request(Endpoint::Singleton(9), None, DomainId(1))?;
//! assert_eq!(dist.recipients.len(), 5); // 4 server elements + the client
//! # Ok::<(), itdos_groupmgr::manager::OpenError>(())
//! ```

#![warn(missing_docs)]

pub mod keying;
pub mod manager;
pub mod membership;

pub use keying::{ThresholdKeying, TraditionalKeying};
pub use manager::{ConnectionId, GroupManager, KeyDistribution};
pub use membership::{DomainId, DomainRecord, ElementRecord, Endpoint, Membership};
