//! The Group Manager state machine.
//!
//! The Group Manager is itself a replication domain (§3.3) whose elements
//! process the same totally-ordered operation stream, so this state
//! machine is deterministic; the only per-element divergence is each
//! element's private DPRF share. It implements:
//!
//! * **connection establishment** (Figure 3): validate client and target,
//!   allocate a connection, emit the common input from which every GM
//!   element derives its key share for the client and server elements;
//! * **change_request from a singleton** (§3.6): validate the signed-
//!   message proof — signatures, replay watermarks, unmarshal via the
//!   marshalling engine, re-vote — then expel and rekey;
//! * **change_request from a replication domain**: no proof needed, but
//!   the GM "must receive the necessary number of messages to perform a
//!   vote" — `f+1` matching accusations from distinct elements;
//! * **rekeying**: bump the epoch of every connection touching the
//!   expelled element's domain, excluding the expelled element from the
//!   new key distribution.

use std::collections::BTreeMap;

use itdos_crypto::hash::Digest;
use itdos_giop::idl::InterfaceRepository;
use itdos_vote::comparator::Comparator;
use itdos_vote::detector::{verify_proof, FaultProof, ProofError};
use itdos_vote::vote::{SenderId, Thresholds};

use crate::membership::{DomainId, ElementRecord, Endpoint, Membership};

/// Identifies an established virtual connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(pub u64);

/// One established connection's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRecord {
    /// The client side (singleton or a whole client domain).
    pub client: Endpoint,
    /// The client's domain when the client is replicated.
    pub client_domain: Option<DomainId>,
    /// The serving domain.
    pub server: DomainId,
    /// Rekey epoch: bumped on every expulsion affecting this connection.
    pub epoch: u32,
}

/// A key distribution the GM elements must perform: each element evaluates
/// its DPRF share on `input` and sends it (over its secure pairwise
/// channel) to every recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDistribution {
    /// The connection being (re)keyed.
    pub connection: ConnectionId,
    /// Epoch of this keying.
    pub epoch: u32,
    /// The common DPRF input all GM elements use.
    pub input: [u8; 32],
    /// Everyone who must receive key shares.
    pub recipients: Vec<Endpoint>,
}

/// Why a connection request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The requesting client is unknown or expelled.
    BadClient,
    /// The target domain is unknown.
    UnknownDomain(DomainId),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::BadClient => write!(f, "client is unknown or expelled"),
            OpenError::UnknownDomain(d) => write!(f, "unknown target {d}"),
        }
    }
}

impl std::error::Error for OpenError {}

/// Why a change request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeError {
    /// The singleton's proof failed validation.
    BadProof(ProofError),
    /// The accused element is unknown or already expelled.
    NotActive(SenderId),
    /// A domain-originated accusation from an element outside that domain.
    ForeignAccuser(SenderId),
}

impl std::fmt::Display for ChangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChangeError::BadProof(e) => write!(f, "proof rejected: {e}"),
            ChangeError::NotActive(s) => write!(f, "element {} is not active", s.0),
            ChangeError::ForeignAccuser(s) => {
                write!(f, "accuser {} is not a member of the accused domain", s.0)
            }
        }
    }
}

impl std::error::Error for ChangeError {}

/// Result of a successful expulsion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expulsion {
    /// The expelled element.
    pub expelled: SenderId,
    /// Its domain.
    pub domain: DomainId,
    /// Rekeyings to perform (one per affected connection).
    pub rekeys: Vec<KeyDistribution>,
}

/// Why an admission request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The named domain is not registered.
    UnknownDomain(DomainId),
    /// The element to replace is not an expelled member of the domain, or
    /// its slot was already refilled.
    NotReplaceable(SenderId),
    /// The replacement's id is already known (member, retired, or in
    /// another domain).
    AlreadyKnown(SenderId),
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::UnknownDomain(d) => write!(f, "unknown {d}"),
            AdmitError::NotReplaceable(s) => {
                write!(f, "element {} has no vacant expelled slot", s.0)
            }
            AdmitError::AlreadyKnown(s) => write!(f, "element id {} is already taken", s.0),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Result of a successful admission: a fresh element now holds the
/// expelled element's slot and every touching connection is rekeyed so the
/// newcomer can participate (and so pre-admission keys are retired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// The freshly admitted element.
    pub admitted: SenderId,
    /// The expelled element it replaces.
    pub replaced: SenderId,
    /// The domain rejoined.
    pub domain: DomainId,
    /// The slot index reused within the domain's roster.
    pub slot: usize,
    /// The domain's new membership epoch.
    pub epoch: u64,
    /// Rekeyings to perform (one per affected connection), each including
    /// the admitted element among its recipients.
    pub rekeys: Vec<KeyDistribution>,
}

/// The deterministic Group Manager state.
#[derive(Debug, Clone)]
pub struct GroupManager {
    membership: Membership,
    seed: [u8; 32],
    connections: BTreeMap<ConnectionId, ConnectionRecord>,
    next_connection: u64,
    /// Replay watermarks per element, advanced by every accepted proof.
    watermarks: BTreeMap<SenderId, u64>,
    /// Votes for domain-originated change requests: (accused) → voters.
    change_votes: BTreeMap<SenderId, Vec<SenderId>>,
}

impl GroupManager {
    /// Creates a Group Manager over a membership registry. `seed` is the
    /// agreed output of the distributed RNG round
    /// ([`itdos_crypto::rngshare`]) from which connection inputs derive.
    pub fn new(membership: Membership, seed: [u8; 32]) -> GroupManager {
        GroupManager {
            membership,
            seed,
            connections: BTreeMap::new(),
            next_connection: 0,
            watermarks: BTreeMap::new(),
            change_votes: BTreeMap::new(),
        }
    }

    /// The membership registry.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Established connections.
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, &ConnectionRecord)> {
        self.connections.iter().map(|(k, v)| (*k, v))
    }

    /// Looks up one connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&ConnectionRecord> {
        self.connections.get(&id)
    }

    /// The common DPRF input for `(connection, epoch)` — "a common
    /// non-repeating value" (§3.5): unique per connection and per rekey.
    pub fn connection_input(&self, connection: ConnectionId, epoch: u32) -> [u8; 32] {
        Digest::of_parts(&[
            b"itdos-conn-input",
            &self.seed,
            &connection.0.to_le_bytes(),
            &epoch.to_le_bytes(),
        ])
        .0
    }

    /// Handles an `open_request` (Figure 3 steps 1–3): validates both
    /// sides and returns the key distribution for the new connection.
    ///
    /// # Errors
    ///
    /// [`OpenError`] when either side is unknown or expelled.
    pub fn open_request(
        &mut self,
        client: Endpoint,
        client_domain: Option<DomainId>,
        target: DomainId,
    ) -> Result<KeyDistribution, OpenError> {
        if !self.membership.endpoint_valid(client) {
            return Err(OpenError::BadClient);
        }
        let Some(server) = self.membership.domain(target) else {
            return Err(OpenError::UnknownDomain(target));
        };
        // connection reuse (§3.4): a second open for the same association
        // re-distributes keys for the existing connection instead of
        // creating a new one (also dedups the n parallel opens a client
        // replication domain's elements submit)
        let logical_client = match client_domain {
            Some(_) => None, // domain-as-client: match by domain
            None => Some(client),
        };
        let existing = self.connections.iter().find(|(_, rec)| {
            rec.server == target
                && rec.client_domain == client_domain
                && (client_domain.is_some() || Some(rec.client) == logical_client)
        });
        if let Some((&id, rec)) = existing {
            let epoch = rec.epoch;
            let mut recipients: Vec<Endpoint> = server
                .active_elements()
                .map(|e| Endpoint::Element(e.id))
                .collect();
            match (rec.client, rec.client_domain) {
                (_, Some(cd)) => {
                    if let Some(cd_rec) = self.membership.domain(cd) {
                        recipients
                            .extend(cd_rec.active_elements().map(|e| Endpoint::Element(e.id)));
                    }
                }
                (c, None) => recipients.push(c),
            }
            return Ok(KeyDistribution {
                connection: id,
                epoch,
                input: self.connection_input(id, epoch),
                recipients,
            });
        }
        let mut recipients: Vec<Endpoint> = server
            .active_elements()
            .map(|e| Endpoint::Element(e.id))
            .collect();
        match (client, client_domain) {
            (_, Some(cd)) => {
                let Some(cd_rec) = self.membership.domain(cd) else {
                    return Err(OpenError::BadClient);
                };
                recipients.extend(cd_rec.active_elements().map(|e| Endpoint::Element(e.id)));
            }
            (c, None) => recipients.push(c),
        }
        let connection = ConnectionId(self.next_connection);
        self.next_connection += 1;
        self.connections.insert(
            connection,
            ConnectionRecord {
                client,
                client_domain,
                server: target,
                epoch: 0,
            },
        );
        Ok(KeyDistribution {
            connection,
            epoch: 0,
            input: self.connection_input(connection, 0),
            recipients,
        })
    }

    /// Closes a connection (client shutdown / GC).
    pub fn close_connection(&mut self, id: ConnectionId) {
        self.connections.remove(&id);
    }

    /// Handles a `change_request` from a **singleton client**, which must
    /// carry a proof (§3.6). On success the accused elements are expelled
    /// and every affected connection is rekeyed.
    ///
    /// # Errors
    ///
    /// [`ChangeError::BadProof`] when the proof fails; a malicious client
    /// cannot expel a correct element.
    pub fn change_request_with_proof(
        &mut self,
        proof: &FaultProof,
        repo: &InterfaceRepository,
        comparator: &Comparator,
    ) -> Result<Vec<Expulsion>, ChangeError> {
        // all accused must be in one (active) domain; thresholds come from it
        let first = *proof
            .accused
            .first()
            .ok_or(ChangeError::BadProof(ProofError::NothingAccused))?;
        let domain = self
            .membership
            .domain_of(first)
            .ok_or(ChangeError::NotActive(first))?;
        let domain_id = domain.id;
        let thresholds = Thresholds::new(domain.f);
        let mut keys = BTreeMap::new();
        for element in domain.all_elements() {
            keys.insert(element.id, element.verifying_key);
        }
        let verdict = verify_proof(proof, &keys, &self.watermarks, repo, comparator, thresholds)
            .map_err(ChangeError::BadProof)?;
        for (sender, sequence) in verdict.sequences {
            let mark = self.watermarks.entry(sender).or_insert(0);
            *mark = (*mark).max(sequence);
        }
        let mut out = Vec::new();
        for accused in verdict.confirmed {
            out.push(self.expel(domain_id, accused)?);
        }
        Ok(out)
    }

    /// Handles a `change_request` from a **replication domain element**:
    /// "proof here is not necessary since the request originated from a
    /// trustworthy source" — but the GM votes: expulsion happens once
    /// `f+1` distinct elements of the accused's own domain concur.
    ///
    /// Returns `Ok(Some(..))` when the vote threshold is reached.
    ///
    /// # Errors
    ///
    /// [`ChangeError`] when the accuser is foreign or the accused inactive.
    pub fn change_request_from_domain(
        &mut self,
        accuser: SenderId,
        accused: SenderId,
    ) -> Result<Option<Expulsion>, ChangeError> {
        let domain = self
            .membership
            .domain_of(accused)
            .ok_or(ChangeError::NotActive(accused))?;
        if !domain.is_active(accused) {
            return Err(ChangeError::NotActive(accused));
        }
        let domain_id = domain.id;
        // the accuser may belong to any replication domain — its own (the
        // accused's peers see faulty requests) or another (servers see
        // faulty requests, clients see faulty replies); the vote threshold
        // is the *accuser's* domain's f+1 so one corrupt domain member
        // cannot trigger an expulsion alone
        let accuser_domain = self
            .membership
            .domain_of(accuser)
            .ok_or(ChangeError::ForeignAccuser(accuser))?;
        if !accuser_domain.is_active(accuser) || accuser == accused {
            return Err(ChangeError::ForeignAccuser(accuser));
        }
        let threshold = accuser_domain.f + 1;
        let votes = self.change_votes.entry(accused).or_default();
        if !votes.contains(&accuser) {
            votes.push(accuser);
        }
        // count votes from the accuser's domain toward its threshold
        let from_same: usize = votes
            .iter()
            .filter(|v| accuser_domain.contains(**v))
            .count();
        if from_same >= threshold {
            self.change_votes.remove(&accused);
            return Ok(Some(self.expel(domain_id, accused)?));
        }
        Ok(None)
    }

    /// Expels an element and rekeys affected connections: the element is
    /// "keyed out of all communication groups of which they are part".
    fn expel(&mut self, domain_id: DomainId, element: SenderId) -> Result<Expulsion, ChangeError> {
        let domain = self
            .membership
            .domain_mut(domain_id)
            .ok_or(ChangeError::NotActive(element))?;
        if !domain.expel(element) {
            return Err(ChangeError::NotActive(element));
        }
        self.change_votes.remove(&element);
        // rekey every connection touching this domain (as server or client)
        let rekeys = self.rekey_touching(domain_id, Some(Endpoint::Element(element)));
        Ok(Expulsion {
            expelled: element,
            domain: domain_id,
            rekeys,
        })
    }

    /// Handles an admission request: a fresh element (new key, empty
    /// state) takes the slot vacated by the expelled `replaced`, restoring
    /// the domain to full strength. The domain's membership epoch is
    /// bumped and every connection touching the domain is rekeyed with the
    /// newcomer among the recipients — the distributed-PRF path hands it
    /// the per-association keys it was never given at enrollment.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] when the domain is unknown, `replaced` has no vacant
    /// expelled slot, or the replacement id is already taken.
    pub fn admit(
        &mut self,
        domain_id: DomainId,
        replacement: ElementRecord,
        replaced: SenderId,
    ) -> Result<Admission, AdmitError> {
        // the id must be globally fresh: an id seen anywhere (any domain's
        // roster or retired history) could alias an existing key holder
        if self.membership.element_key(replacement.id).is_some() {
            return Err(AdmitError::AlreadyKnown(replacement.id));
        }
        let Some(domain) = self.membership.domain_mut(domain_id) else {
            return Err(AdmitError::UnknownDomain(domain_id));
        };
        let Some(slot) = domain.admit(replacement, replaced) else {
            return Err(AdmitError::NotReplaceable(replaced));
        };
        let epoch = domain.epoch();
        // drop any expulsion votes the retired element had cast or drawn
        self.change_votes.remove(&replaced);
        for votes in self.change_votes.values_mut() {
            votes.retain(|v| *v != replaced);
        }
        let rekeys = self.rekey_touching(domain_id, None);
        Ok(Admission {
            admitted: replacement.id,
            replaced,
            domain: domain_id,
            slot,
            epoch,
            rekeys,
        })
    }

    /// Bumps the epoch of, and rebuilds the key distribution for, every
    /// connection touching `domain_id` (as server or client domain), plus
    /// any connection whose singleton-style client endpoint is
    /// `extra_client` — the recipient lists reflect the *current* active
    /// roster, so expelled elements are keyed out and admitted elements
    /// keyed in.
    fn rekey_touching(
        &mut self,
        domain_id: DomainId,
        extra_client: Option<Endpoint>,
    ) -> Vec<KeyDistribution> {
        let affected: Vec<ConnectionId> = self
            .connections
            .iter()
            .filter(|(_, rec)| {
                rec.server == domain_id
                    || rec.client_domain == Some(domain_id)
                    || extra_client.is_some_and(|c| rec.client == c)
            })
            .map(|(id, _)| *id)
            .collect();
        let mut rekeys = Vec::with_capacity(affected.len());
        for id in affected {
            let input = {
                let rec = &self.connections[&id];
                self.connection_input(id, rec.epoch + 1)
            };
            // `id` was just collected from self.connections, but a missing
            // record must drop the rekey, not crash the Group Manager
            let Some(rec) = self.connections.get_mut(&id) else {
                continue;
            };
            rec.epoch += 1;
            let epoch = rec.epoch;
            let rec = rec.clone();
            // the server domain can only vanish through a concurrent
            // membership change; skip the connection rather than panic
            let Some(server_domain) = self.membership.domain(rec.server) else {
                continue;
            };
            let mut recipients: Vec<Endpoint> = server_domain
                .active_elements()
                .map(|e| Endpoint::Element(e.id))
                .collect();
            match (rec.client, rec.client_domain) {
                (_, Some(cd)) => {
                    if let Some(cd_rec) = self.membership.domain(cd) {
                        recipients
                            .extend(cd_rec.active_elements().map(|e| Endpoint::Element(e.id)));
                    }
                }
                (c, None) => recipients.push(c),
            }
            rekeys.push(KeyDistribution {
                connection: id,
                epoch,
                input,
                recipients,
            });
        }
        rekeys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::{DomainRecord, ElementRecord};
    use itdos_crypto::sign::SigningKey;
    use itdos_giop::cdr::Endianness;
    use itdos_giop::giop::{encode_message, GiopMessage, ReplyBody, ReplyMessage};
    use itdos_giop::idl::{InterfaceDef, OperationDef};
    use itdos_giop::types::{TypeDesc, Value};
    use itdos_vote::detector::SignedReply;

    fn signing_key(id: u32) -> SigningKey {
        SigningKey::from_seed(&id.to_le_bytes())
    }

    fn element(id: u32) -> ElementRecord {
        ElementRecord {
            id: SenderId(id),
            verifying_key: signing_key(id).verifying_key(),
        }
    }

    fn manager() -> GroupManager {
        let mut m = Membership::new();
        // server domain 1: elements 0..3; client domain 2: elements 10..13
        m.register_domain(DomainRecord::new(
            DomainId(1),
            1,
            (0..4).map(element).collect(),
        ));
        m.register_domain(DomainRecord::new(
            DomainId(2),
            1,
            (10..14).map(element).collect(),
        ));
        m.register_singleton(100, signing_key(100).verifying_key());
        m.register_singleton(101, signing_key(101).verifying_key());
        GroupManager::new(m, [3u8; 32])
    }

    fn repo() -> InterfaceRepository {
        let mut repo = InterfaceRepository::new();
        repo.register(InterfaceDef::new("Acct").with_operation(OperationDef::new(
            "balance",
            vec![],
            TypeDesc::LongLong,
        )));
        repo
    }

    fn reply_frame(request_id: u64, value: i64) -> Vec<u8> {
        encode_message(
            &GiopMessage::Reply(ReplyMessage {
                request_id,
                interface: "Acct".into(),
                operation: "balance".into(),
                body: ReplyBody::Result(Value::LongLong(value)),
            }),
            &repo(),
            Endianness::Little,
        )
        .expect("encode")
    }

    /// Proof that element 3 returned `bad` while 0..2 returned `good`.
    fn proof(good: i64, bad: i64, seq_base: u64) -> FaultProof {
        let messages = (0..4u32)
            .map(|i| {
                let value = if i == 3 { bad } else { good };
                SignedReply::sign(
                    &signing_key(i),
                    SenderId(i),
                    seq_base + i as u64,
                    reply_frame(7, value),
                )
            })
            .collect();
        FaultProof {
            accused: vec![SenderId(3)],
            request_id: 7,
            messages,
        }
    }

    #[test]
    fn open_request_keys_client_and_server() {
        let mut gm = manager();
        let dist = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        assert_eq!(dist.connection, ConnectionId(0));
        assert_eq!(dist.epoch, 0);
        assert_eq!(dist.recipients.len(), 5, "4 server elements + client");
        assert!(dist.recipients.contains(&Endpoint::Singleton(100)));
    }

    #[test]
    fn open_request_replicated_client_keys_both_domains() {
        let mut gm = manager();
        let dist = gm
            .open_request(
                Endpoint::Element(SenderId(10)),
                Some(DomainId(2)),
                DomainId(1),
            )
            .unwrap();
        assert_eq!(dist.recipients.len(), 8, "both domains' elements");
    }

    #[test]
    fn open_request_validates_both_sides() {
        let mut gm = manager();
        assert_eq!(
            gm.open_request(Endpoint::Singleton(999), None, DomainId(1)),
            Err(OpenError::BadClient)
        );
        assert_eq!(
            gm.open_request(Endpoint::Singleton(100), None, DomainId(9)),
            Err(OpenError::UnknownDomain(DomainId(9)))
        );
    }

    #[test]
    fn connection_inputs_never_repeat() {
        let mut gm = manager();
        let a = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        let b = gm
            .open_request(Endpoint::Singleton(101), None, DomainId(1))
            .unwrap();
        assert_ne!(a.input, b.input, "distinct connections");
        assert_ne!(
            gm.connection_input(a.connection, 0),
            gm.connection_input(a.connection, 1),
            "distinct epochs"
        );
    }

    #[test]
    fn reopen_reuses_the_connection() {
        let mut gm = manager();
        let a = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        let b = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        assert_eq!(a, b, "same association reuses the connection (§3.4)");
        // the n parallel opens from a client domain's elements dedup too
        let c1 = gm
            .open_request(
                Endpoint::Element(SenderId(10)),
                Some(DomainId(2)),
                DomainId(1),
            )
            .unwrap();
        let c2 = gm
            .open_request(
                Endpoint::Element(SenderId(11)),
                Some(DomainId(2)),
                DomainId(1),
            )
            .unwrap();
        assert_eq!(c1.connection, c2.connection);
    }

    #[test]
    fn valid_proof_expels_and_rekeys() {
        let mut gm = manager();
        let dist = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        let expulsions = gm
            .change_request_with_proof(&proof(100, 666, 1), &repo(), &Comparator::Exact)
            .unwrap();
        assert_eq!(expulsions.len(), 1);
        let e = &expulsions[0];
        assert_eq!(e.expelled, SenderId(3));
        assert_eq!(e.rekeys.len(), 1, "one affected connection");
        let rekey = &e.rekeys[0];
        assert_eq!(rekey.connection, dist.connection);
        assert_eq!(rekey.epoch, 1);
        assert_ne!(rekey.input, dist.input);
        assert!(
            !rekey.recipients.contains(&Endpoint::Element(SenderId(3))),
            "expelled element keyed out"
        );
        assert!(!gm
            .membership()
            .domain(DomainId(1))
            .unwrap()
            .is_active(SenderId(3)));
    }

    #[test]
    fn malicious_client_proof_rejected() {
        let mut gm = manager();
        // all replicas agreed on 100; accusing 3 is bogus
        let err = gm
            .change_request_with_proof(&proof(100, 100, 1), &repo(), &Comparator::Exact)
            .unwrap_err();
        assert!(matches!(
            err,
            ChangeError::BadProof(ProofError::AccusedNotFaulty(_))
        ));
        assert!(gm
            .membership()
            .domain(DomainId(1))
            .unwrap()
            .is_active(SenderId(3)));
    }

    #[test]
    fn replayed_proof_rejected_second_time() {
        let mut gm = manager();
        gm.change_request_with_proof(&proof(100, 666, 1), &repo(), &Comparator::Exact)
            .unwrap();
        // re-register element 3 cannot happen; accuse element 2 instead with
        // REPLAYED sequence numbers (same as before)
        let mut p = proof(100, 666, 1);
        p.accused = vec![SenderId(3)];
        let err = gm
            .change_request_with_proof(&p, &repo(), &Comparator::Exact)
            .unwrap_err();
        assert!(
            matches!(err, ChangeError::BadProof(ProofError::Replayed { .. })),
            "watermarks advanced by the first proof: {err:?}"
        );
    }

    #[test]
    fn domain_change_request_needs_f_plus_1_votes() {
        let mut gm = manager();
        assert_eq!(
            gm.change_request_from_domain(SenderId(0), SenderId(3))
                .unwrap(),
            None,
            "one vote insufficient for f=1"
        );
        let expulsion = gm
            .change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap()
            .expect("second vote reaches f+1");
        assert_eq!(expulsion.expelled, SenderId(3));
    }

    #[test]
    fn duplicate_votes_do_not_count_twice() {
        let mut gm = manager();
        assert_eq!(
            gm.change_request_from_domain(SenderId(0), SenderId(3))
                .unwrap(),
            None
        );
        assert_eq!(
            gm.change_request_from_domain(SenderId(0), SenderId(3))
                .unwrap(),
            None,
            "same voter repeated"
        );
    }

    #[test]
    fn cross_domain_accusations_allowed_with_own_threshold() {
        // elements of domain 2 (clients) detected a faulty reply from
        // domain 1's element 3: f(domain 2)+1 = 2 votes expel it
        let mut gm = manager();
        assert_eq!(
            gm.change_request_from_domain(SenderId(10), SenderId(3))
                .unwrap(),
            None
        );
        let expulsion = gm
            .change_request_from_domain(SenderId(11), SenderId(3))
            .unwrap()
            .expect("two domain-2 votes expel");
        assert_eq!(expulsion.expelled, SenderId(3));
    }

    #[test]
    fn unknown_and_self_accusations_rejected() {
        let mut gm = manager();
        assert_eq!(
            gm.change_request_from_domain(SenderId(99), SenderId(3)),
            Err(ChangeError::ForeignAccuser(SenderId(99))),
            "accuser must belong to a registered domain"
        );
        assert_eq!(
            gm.change_request_from_domain(SenderId(3), SenderId(3)),
            Err(ChangeError::ForeignAccuser(SenderId(3)))
        );
    }

    #[test]
    fn expelled_element_cannot_be_expelled_again() {
        let mut gm = manager();
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        gm.change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap();
        assert_eq!(
            gm.change_request_from_domain(SenderId(0), SenderId(3)),
            Err(ChangeError::NotActive(SenderId(3)))
        );
    }

    #[test]
    fn rekey_covers_replicated_client_connections() {
        let mut gm = manager();
        gm.open_request(
            Endpoint::Element(SenderId(10)),
            Some(DomainId(2)),
            DomainId(1),
        )
        .unwrap();
        // expel an element of the CLIENT domain; the connection must rekey
        gm.change_request_from_domain(SenderId(10), SenderId(13))
            .unwrap();
        let expulsion = gm
            .change_request_from_domain(SenderId(11), SenderId(13))
            .unwrap()
            .expect("expelled");
        assert_eq!(expulsion.rekeys.len(), 1);
        assert!(!expulsion.rekeys[0]
            .recipients
            .contains(&Endpoint::Element(SenderId(13))));
    }

    #[test]
    fn admission_restores_the_domain_and_rekeys_with_the_newcomer() {
        let mut gm = manager();
        let dist = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        gm.change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap();
        assert_eq!(
            gm.membership().domain(DomainId(1)).unwrap().active_count(),
            3
        );
        let admission = gm.admit(DomainId(1), element(50), SenderId(3)).unwrap();
        assert_eq!(admission.admitted, SenderId(50));
        assert_eq!(admission.replaced, SenderId(3));
        assert_eq!(admission.slot, 3);
        assert_eq!(admission.epoch, 1);
        let domain = gm.membership().domain(DomainId(1)).unwrap();
        assert_eq!(domain.active_count(), 4, "restored to n elements");
        assert_eq!(domain.max_tolerable_faults(), 1, "tolerates f again");
        // the touching connection rekeyed past both the expulsion epoch
        // and with the newcomer keyed in
        assert_eq!(admission.rekeys.len(), 1);
        let rekey = &admission.rekeys[0];
        assert_eq!(rekey.connection, dist.connection);
        assert_eq!(rekey.epoch, 2, "expulsion bumped to 1, admission to 2");
        assert!(rekey.recipients.contains(&Endpoint::Element(SenderId(50))));
        assert!(
            !rekey.recipients.contains(&Endpoint::Element(SenderId(3))),
            "replaced element stays keyed out"
        );
    }

    #[test]
    fn admission_validation() {
        let mut gm = manager();
        assert_eq!(
            gm.admit(DomainId(9), element(50), SenderId(3)),
            Err(AdmitError::UnknownDomain(DomainId(9)))
        );
        assert_eq!(
            gm.admit(DomainId(1), element(50), SenderId(3)),
            Err(AdmitError::NotReplaceable(SenderId(3))),
            "element 3 is not expelled"
        );
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        gm.change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap();
        assert_eq!(
            gm.admit(DomainId(1), element(10), SenderId(3)),
            Err(AdmitError::AlreadyKnown(SenderId(10))),
            "id 10 belongs to domain 2"
        );
        gm.admit(DomainId(1), element(50), SenderId(3)).unwrap();
        assert_eq!(
            gm.admit(DomainId(1), element(51), SenderId(3)),
            Err(AdmitError::NotReplaceable(SenderId(3))),
            "slot already refilled"
        );
        assert_eq!(
            gm.admit(DomainId(1), element(3), SenderId(3)),
            Err(AdmitError::AlreadyKnown(SenderId(3))),
            "a retired id can never rejoin"
        );
    }

    #[test]
    fn admitted_element_participates_in_later_votes_and_expulsions() {
        let mut gm = manager();
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        gm.change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap();
        gm.admit(DomainId(1), element(50), SenderId(3)).unwrap();
        // the replacement's accusations count toward its new domain's f+1
        assert_eq!(
            gm.change_request_from_domain(SenderId(50), SenderId(2))
                .unwrap(),
            None
        );
        let expulsion = gm
            .change_request_from_domain(SenderId(0), SenderId(2))
            .unwrap()
            .expect("newcomer's vote counted");
        assert_eq!(expulsion.expelled, SenderId(2));
        // and if the replacement itself turns faulty it can be expelled —
        // and replaced again, each admission bumping the epoch
        gm.change_request_from_domain(SenderId(0), SenderId(50))
            .unwrap();
        let e = gm
            .change_request_from_domain(SenderId(1), SenderId(50))
            .unwrap()
            .expect("replacement expelled in turn");
        assert_eq!(e.expelled, SenderId(50));
        let again = gm.admit(DomainId(1), element(51), SenderId(50)).unwrap();
        assert_eq!(again.epoch, 2);
        assert_eq!(again.slot, 3, "the same physical slot cycles");
    }

    #[test]
    fn stale_votes_from_a_replaced_element_are_discarded() {
        let mut gm = manager();
        // element 3 accuses element 2 (one vote), then is itself expelled
        // and replaced: its pending vote must not linger
        gm.change_request_from_domain(SenderId(3), SenderId(2))
            .unwrap();
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        gm.change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap();
        gm.admit(DomainId(1), element(50), SenderId(3)).unwrap();
        assert_eq!(
            gm.change_request_from_domain(SenderId(0), SenderId(2))
                .unwrap(),
            None,
            "the retired element's vote no longer counts toward f+1"
        );
    }

    #[test]
    fn close_connection_stops_rekeys() {
        let mut gm = manager();
        let dist = gm
            .open_request(Endpoint::Singleton(100), None, DomainId(1))
            .unwrap();
        gm.close_connection(dist.connection);
        gm.change_request_from_domain(SenderId(0), SenderId(3))
            .unwrap();
        let expulsion = gm
            .change_request_from_domain(SenderId(1), SenderId(3))
            .unwrap()
            .unwrap();
        assert!(expulsion.rekeys.is_empty());
    }
}
