//! Communication-key generation: threshold DPRF vs the traditional
//! baseline.
//!
//! §3.5 contrasts two Group Manager designs. In the **traditional**
//! approach every GM element knows each whole communication key, so "the
//! compromise of a single Group Manager process would compromise all
//! communication keys known to the Group Manager … and all subsequent
//! communication keys generated until the compromise is detected." The
//! **threshold** approach gives each element only a DPRF share: an
//! attacker "must compromise multiple elements to generate a communication
//! key." Experiment E7 measures both cost and exposure.

use itdos_crypto::dprf::{self, Dprf, KeyShare, Shareholder, Verifier};
use itdos_crypto::keys::{CommunicationKey, SymmetricKey};
use xrand::Rng;

/// The threshold (DPRF) keying deployment for a Group Manager domain.
#[derive(Debug, Clone)]
pub struct ThresholdKeying {
    holders: Vec<Shareholder>,
    verifier: Verifier,
    f: usize,
}

impl ThresholdKeying {
    /// Deals shares for a GM domain with `n` elements tolerating `f`
    /// corruptions.
    pub fn deal<R: Rng + ?Sized>(f: usize, n: usize, rng: &mut R) -> ThresholdKeying {
        let dprf = Dprf::deal(f, n, rng);
        let (holders, verifier) = dprf.into_parts();
        ThresholdKeying {
            holders,
            verifier,
            f,
        }
    }

    /// `f` for this deployment.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of GM elements.
    pub fn n(&self) -> usize {
        self.holders.len()
    }

    /// GM element `index` evaluates its key share on the connection input,
    /// or `None` when `index` is out of range (indices can arrive from
    /// untrusted admission paths).
    pub fn share_for(&self, index: usize, input: &[u8]) -> Option<KeyShare> {
        Some(self.holders.get(index)?.evaluate(input))
    }

    /// The public verifier endpoints use to check shares.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Endpoint-side combination of verified shares into the key.
    ///
    /// # Errors
    ///
    /// Propagates [`dprf::CombineError`].
    pub fn combine(
        &self,
        input: &[u8],
        shares: &[KeyShare],
    ) -> Result<CommunicationKey, dprf::CombineError> {
        dprf::combine(&self.verifier, input, shares).map(CommunicationKey)
    }

    /// What an attacker holding the listed GM elements can compute for a
    /// given input: `Some(key)` iff they hold at least `f+1` shares.
    pub fn attacker_key(&self, compromised: &[usize], input: &[u8]) -> Option<CommunicationKey> {
        if compromised.len() < self.f + 1 {
            return None;
        }
        let shares: Vec<KeyShare> = compromised
            .iter()
            .take(self.f + 1)
            .map(|&i| self.holders[i].evaluate(input))
            .collect();
        self.combine(input, &shares).ok()
    }
}

/// The traditional whole-key baseline: every GM element holds the master
/// secret and each communication key in full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraditionalKeying {
    master: SymmetricKey,
    n: usize,
}

impl TraditionalKeying {
    /// Provisions a GM domain of `n` elements all holding `master`.
    pub fn new<R: Rng + ?Sized>(n: usize, rng: &mut R) -> TraditionalKeying {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        TraditionalKeying {
            master: SymmetricKey::from_bytes(seed),
            n,
        }
    }

    /// Number of GM elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The communication key for a connection input — identical at every
    /// element (each one "agrees on each communication key and distributes
    /// the entire key").
    pub fn key_for(&self, input: &[u8]) -> CommunicationKey {
        CommunicationKey(SymmetricKey::derive(self.master.as_bytes(), input))
    }

    /// What an attacker holding the listed GM elements can compute: with
    /// even **one** element, every key (past and future).
    pub fn attacker_key(&self, compromised: &[usize], input: &[u8]) -> Option<CommunicationKey> {
        if compromised.is_empty() {
            None
        } else {
            Some(self.key_for(input))
        }
    }
}

/// Exposure summary for experiment E7/E11: of `inputs`, how many keys the
/// attacker recovers under each keying scheme when holding `k` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exposure {
    /// GM elements the attacker controls.
    pub compromised_elements: usize,
    /// Keys recoverable under traditional keying.
    pub traditional_keys_exposed: usize,
    /// Keys recoverable under threshold keying.
    pub threshold_keys_exposed: usize,
}

/// Computes the exposure matrix row for `k` compromised GM elements over
/// the given connection inputs.
pub fn exposure(
    threshold: &ThresholdKeying,
    traditional: &TraditionalKeying,
    k: usize,
    inputs: &[Vec<u8>],
) -> Exposure {
    let compromised: Vec<usize> = (0..k).collect();
    let trad = inputs
        .iter()
        .filter(|x| traditional.attacker_key(&compromised, x).is_some())
        .count();
    let thresh = inputs
        .iter()
        .filter(|x| threshold.attacker_key(&compromised, x).is_some())
        .count();
    Exposure {
        compromised_elements: k,
        traditional_keys_exposed: trad,
        threshold_keys_exposed: thresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn threshold_endpoints_derive_same_key_from_any_f_plus_1() {
        let k = ThresholdKeying::deal(1, 4, &mut rng());
        let input = b"conn-1";
        let shares: Vec<KeyShare> = (0..4).map(|i| k.share_for(i, input).unwrap()).collect();
        let a = k.combine(input, &shares[0..2]).unwrap();
        let b = k.combine(input, &shares[2..4]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threshold_resists_f_compromises() {
        let k = ThresholdKeying::deal(1, 4, &mut rng());
        assert!(
            k.attacker_key(&[0], b"x").is_none(),
            "f=1 element learns nothing"
        );
        assert!(
            k.attacker_key(&[0, 2], b"x").is_some(),
            "f+1 elements break it"
        );
        // and the broken key is the real one (soundness of the model)
        let shares: Vec<KeyShare> = (0..2).map(|i| k.share_for(i, b"x").unwrap()).collect();
        assert_eq!(
            k.attacker_key(&[0, 1], b"x").unwrap(),
            k.combine(b"x", &shares).unwrap()
        );
    }

    #[test]
    fn traditional_collapses_on_single_compromise() {
        let t = TraditionalKeying::new(4, &mut rng());
        assert!(t.attacker_key(&[], b"x").is_none());
        assert_eq!(t.attacker_key(&[2], b"x"), Some(t.key_for(b"x")));
    }

    #[test]
    fn exposure_matrix_shape() {
        let mut r = rng();
        let threshold = ThresholdKeying::deal(1, 4, &mut r);
        let traditional = TraditionalKeying::new(4, &mut r);
        let inputs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let e0 = exposure(&threshold, &traditional, 0, &inputs);
        let e1 = exposure(&threshold, &traditional, 1, &inputs);
        let e2 = exposure(&threshold, &traditional, 2, &inputs);
        assert_eq!(
            (e0.traditional_keys_exposed, e0.threshold_keys_exposed),
            (0, 0)
        );
        assert_eq!(
            (e1.traditional_keys_exposed, e1.threshold_keys_exposed),
            (10, 0)
        );
        assert_eq!(
            (e2.traditional_keys_exposed, e2.threshold_keys_exposed),
            (10, 10)
        );
    }

    #[test]
    fn distinct_inputs_give_distinct_keys() {
        let mut r = rng();
        let t = TraditionalKeying::new(4, &mut r);
        assert_ne!(t.key_for(b"a"), t.key_for(b"b"));
        let k = ThresholdKeying::deal(1, 4, &mut r);
        let sa: Vec<KeyShare> = (0..2).map(|i| k.share_for(i, b"a").unwrap()).collect();
        let sb: Vec<KeyShare> = (0..2).map(|i| k.share_for(i, b"b").unwrap()).collect();
        assert_ne!(k.combine(b"a", &sa).unwrap(), k.combine(b"b", &sb).unwrap());
    }

    #[test]
    fn corrupt_share_detected_at_endpoint() {
        let k = ThresholdKeying::deal(1, 4, &mut rng());
        let input = b"conn";
        let mut shares: Vec<KeyShare> = (0..2).map(|i| k.share_for(i, input).unwrap()).collect();
        shares[0] = k.share_for(0, b"other-input").unwrap(); // corrupt element reuses an old share
        assert!(k.combine(input, &shares).is_err());
    }
}
