//! Replication domain membership registry.
//!
//! The Group Manager "handles replication domain membership and virtual
//! connection management" (§2): which domains exist, which elements belong
//! to them, which have been expelled, and the public keys under which
//! their messages verify.

use std::collections::{BTreeMap, BTreeSet};

use itdos_crypto::sign::VerifyingKey;
use itdos_vote::vote::SenderId;

/// Identifies a replication domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u64);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "domain:{}", self.0)
    }
}

/// A communication endpoint: a singleton client or one element of a
/// domain. (Globally unique element ids double as vote sender ids.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A singleton (unreplicated) client process.
    Singleton(u64),
    /// An element of a replication domain.
    Element(SenderId),
}

/// One element's registration record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementRecord {
    /// Globally unique element id (also its vote sender id).
    pub id: SenderId,
    /// Public key its signed messages verify under.
    pub verifying_key: VerifyingKey,
}

/// One replication domain's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecord {
    /// Domain id.
    pub id: DomainId,
    /// Faults the domain is sized to tolerate.
    pub f: usize,
    elements: Vec<ElementRecord>,
    expelled: BTreeSet<SenderId>,
    /// Membership epoch: bumped once per admission. Carried on the wire so
    /// peers, clients, and voters can order roster updates.
    epoch: u64,
    /// Elements replaced by an admission, kept for forensic lookup.
    retired: Vec<ElementRecord>,
}

impl DomainRecord {
    /// Creates a record.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `3f + 1` elements are supplied (§2).
    pub fn new(id: DomainId, f: usize, elements: Vec<ElementRecord>) -> DomainRecord {
        assert!(
            elements.len() >= 3 * f + 1,
            "replication domain needs at least 3f+1 elements"
        );
        DomainRecord {
            id,
            f,
            elements,
            expelled: BTreeSet::new(),
            epoch: 0,
            retired: Vec::new(),
        }
    }

    /// The current membership epoch (number of admissions so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Elements replaced by past admissions (forensic history).
    pub fn retired(&self) -> &[ElementRecord] {
        &self.retired
    }

    /// Admits `replacement` into the slot vacated by the expelled element
    /// `replaced`, bumping the membership epoch. Returns the reused slot
    /// index, or `None` when `replaced` is not an expelled member here or
    /// `replacement` is already known to this domain (member or retired).
    pub fn admit(&mut self, replacement: ElementRecord, replaced: SenderId) -> Option<usize> {
        if !self.expelled.contains(&replaced) {
            return None;
        }
        let known = |id: SenderId| {
            self.elements.iter().any(|e| e.id == id) || self.retired.iter().any(|e| e.id == id)
        };
        if known(replacement.id) {
            return None;
        }
        let slot = self.elements.iter().position(|e| e.id == replaced)?;
        let old = self.elements[slot];
        self.elements[slot] = replacement;
        self.retired.push(old);
        self.epoch += 1;
        Some(slot)
    }

    /// All originally registered elements.
    pub fn all_elements(&self) -> &[ElementRecord] {
        &self.elements
    }

    /// Elements not yet expelled.
    pub fn active_elements(&self) -> impl Iterator<Item = &ElementRecord> {
        self.elements
            .iter()
            .filter(move |e| !self.expelled.contains(&e.id))
    }

    /// True if `element` belongs to this domain and is not expelled.
    pub fn is_active(&self, element: SenderId) -> bool {
        !self.expelled.contains(&element) && self.elements.iter().any(|e| e.id == element)
    }

    /// True if `element` was registered here (active or expelled).
    pub fn contains(&self, element: SenderId) -> bool {
        self.elements.iter().any(|e| e.id == element)
    }

    /// Marks an element expelled. Returns false if it was not active.
    pub fn expel(&mut self, element: SenderId) -> bool {
        if !self.is_active(element) {
            return false;
        }
        self.expelled.insert(element);
        true
    }

    /// Elements expelled so far.
    pub fn expelled(&self) -> impl Iterator<Item = SenderId> + '_ {
        self.expelled.iter().copied()
    }

    /// Number of still-active elements.
    pub fn active_count(&self) -> usize {
        // replaced elements stay in `expelled` (they are still expelled)
        // but no longer occupy a slot, so count the live roster directly
        self.elements
            .iter()
            .filter(|e| !self.expelled.contains(&e.id))
            .count()
    }

    /// The number of *further* faults the shrunken domain can mask:
    /// `⌊(active − 1) / 3⌋`. The paper left replacement unimplemented, so
    /// its domains only shrink; here [`DomainRecord::admit`] restores the
    /// count, and with it the original fault tolerance.
    pub fn max_tolerable_faults(&self) -> usize {
        self.active_count().saturating_sub(1) / 3
    }
}

/// The registry of domains and singleton clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Membership {
    domains: BTreeMap<DomainId, DomainRecord>,
    singletons: BTreeMap<u64, VerifyingKey>,
}

impl Membership {
    /// Creates an empty registry.
    pub fn new() -> Membership {
        Membership::default()
    }

    /// Registers a domain.
    pub fn register_domain(&mut self, record: DomainRecord) {
        self.domains.insert(record.id, record);
    }

    /// Registers a singleton client.
    pub fn register_singleton(&mut self, id: u64, key: VerifyingKey) {
        self.singletons.insert(id, key);
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Option<&DomainRecord> {
        self.domains.get(&id)
    }

    /// Mutable domain access.
    pub fn domain_mut(&mut self, id: DomainId) -> Option<&mut DomainRecord> {
        self.domains.get_mut(&id)
    }

    /// Finds the domain containing `element`.
    pub fn domain_of(&self, element: SenderId) -> Option<&DomainRecord> {
        self.domains.values().find(|d| d.contains(element))
    }

    /// The verifying key of an element, searched across domains. Retired
    /// (replaced) elements are included so pre-replacement signatures can
    /// still be verified forensically.
    pub fn element_key(&self, element: SenderId) -> Option<VerifyingKey> {
        self.domains.values().find_map(|d| {
            d.elements
                .iter()
                .chain(d.retired.iter())
                .find(|e| e.id == element)
                .map(|e| e.verifying_key)
        })
    }

    /// True when the endpoint is known and active.
    pub fn endpoint_valid(&self, endpoint: Endpoint) -> bool {
        match endpoint {
            Endpoint::Singleton(id) => self.singletons.contains_key(&id),
            Endpoint::Element(e) => self.domain_of(e).is_some_and(|d| d.is_active(e)),
        }
    }

    /// Registered domain ids.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.domains.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_crypto::sign::SigningKey;

    fn element(id: u32) -> ElementRecord {
        ElementRecord {
            id: SenderId(id),
            verifying_key: SigningKey::from_seed(&id.to_le_bytes()).verifying_key(),
        }
    }

    fn domain(id: u64, f: usize, first_element: u32) -> DomainRecord {
        let n = 3 * f + 1;
        DomainRecord::new(
            DomainId(id),
            f,
            (first_element..first_element + n as u32)
                .map(element)
                .collect(),
        )
    }

    #[test]
    fn active_elements_excludes_expelled() {
        let mut d = domain(1, 1, 0);
        assert_eq!(d.active_count(), 4);
        assert!(d.expel(SenderId(2)));
        assert_eq!(d.active_count(), 3);
        assert!(!d.is_active(SenderId(2)));
        assert!(d.contains(SenderId(2)), "expelled but still known");
        let active: Vec<u32> = d.active_elements().map(|e| e.id.0).collect();
        assert_eq!(active, vec![0, 1, 3]);
    }

    #[test]
    fn double_expulsion_fails() {
        let mut d = domain(1, 1, 0);
        assert!(d.expel(SenderId(1)));
        assert!(!d.expel(SenderId(1)));
        assert!(!d.expel(SenderId(99)), "unknown element");
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn undersized_domain_rejected() {
        DomainRecord::new(DomainId(1), 1, (0..3).map(element).collect());
    }

    #[test]
    fn membership_lookups() {
        let mut m = Membership::new();
        m.register_domain(domain(1, 1, 0));
        m.register_domain(domain(2, 1, 10));
        m.register_singleton(77, SigningKey::from_seed(b"c").verifying_key());
        assert_eq!(m.domain_of(SenderId(11)).unwrap().id, DomainId(2));
        assert!(m.domain_of(SenderId(99)).is_none());
        assert!(m.element_key(SenderId(3)).is_some());
        assert!(m.endpoint_valid(Endpoint::Singleton(77)));
        assert!(!m.endpoint_valid(Endpoint::Singleton(78)));
        assert!(m.endpoint_valid(Endpoint::Element(SenderId(0))));
    }

    #[test]
    fn admission_reuses_the_expelled_slot_and_bumps_the_epoch() {
        let mut d = domain(1, 1, 0);
        assert!(d.expel(SenderId(2)));
        assert_eq!(d.active_count(), 3);
        assert_eq!(d.max_tolerable_faults(), 0, "degraded: no margin left");
        let slot = d.admit(element(9), SenderId(2)).expect("admitted");
        assert_eq!(slot, 2, "replacement takes the vacated slot");
        assert_eq!(d.epoch(), 1);
        assert_eq!(d.active_count(), 4, "back to full strength");
        assert_eq!(d.max_tolerable_faults(), 1, "tolerates f faults again");
        assert!(d.is_active(SenderId(9)));
        assert!(!d.is_active(SenderId(2)), "replaced stays expelled");
        assert_eq!(d.retired().len(), 1);
        assert_eq!(d.retired()[0].id, SenderId(2));
        let active: Vec<u32> = d.active_elements().map(|e| e.id.0).collect();
        assert_eq!(active, vec![0, 1, 9, 3]);
    }

    #[test]
    fn admission_requires_an_expelled_slot_and_a_fresh_id() {
        let mut d = domain(1, 1, 0);
        assert!(
            d.admit(element(9), SenderId(2)).is_none(),
            "cannot replace an element that was never expelled"
        );
        d.expel(SenderId(2));
        assert!(
            d.admit(element(1), SenderId(2)).is_none(),
            "replacement id already a member"
        );
        assert!(d.admit(element(9), SenderId(2)).is_some());
        assert!(
            d.admit(element(9), SenderId(2)).is_none(),
            "slot already refilled"
        );
        // the new element can itself be expelled and replaced, but the
        // retired id can never rejoin
        d.expel(SenderId(9));
        assert!(
            d.admit(element(2), SenderId(9)).is_none(),
            "retired ids never come back"
        );
        assert!(d.admit(element(10), SenderId(9)).is_some());
        assert_eq!(d.epoch(), 2);
    }

    #[test]
    fn retired_element_keys_remain_resolvable() {
        let mut m = Membership::new();
        m.register_domain(domain(1, 1, 0));
        let old_key = m.element_key(SenderId(2)).unwrap();
        m.domain_mut(DomainId(1)).unwrap().expel(SenderId(2));
        m.domain_mut(DomainId(1))
            .unwrap()
            .admit(element(9), SenderId(2))
            .unwrap();
        assert_eq!(
            m.element_key(SenderId(2)),
            Some(old_key),
            "forensic verification of pre-replacement signatures"
        );
        assert!(m.element_key(SenderId(9)).is_some());
        assert!(
            !m.endpoint_valid(Endpoint::Element(SenderId(2))),
            "retired endpoint stays invalid"
        );
        assert!(m.endpoint_valid(Endpoint::Element(SenderId(9))));
    }

    #[test]
    fn expelled_endpoint_is_invalid() {
        let mut m = Membership::new();
        m.register_domain(domain(1, 1, 0));
        m.domain_mut(DomainId(1)).unwrap().expel(SenderId(0));
        assert!(!m.endpoint_valid(Endpoint::Element(SenderId(0))));
    }
}
