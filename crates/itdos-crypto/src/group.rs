//! Arithmetic in a Schnorr group with toy-sized parameters.
//!
//! We work in the order-`q` subgroup of `Z_p^*` where `p = 2q + 1` is a safe
//! prime. Parameters are 62 bits — **not secure**, but every operation
//! (exponentiation, Lagrange interpolation in the exponent, DLEQ proofs) is
//! the real construction, and a 62-bit modulus keeps all intermediate
//! products inside `u128`.
//!
//! These parameters instantiate the paper's §3.5 threshold machinery (the
//! Naor–Pinkas–Reingold distributed PRF \[26\] is DDH-based and lives in
//! exactly this kind of group).

use crate::hash::Digest;

/// The safe prime `p = 2q + 1`.
pub const P: u64 = 2_305_843_009_213_699_919;

/// The subgroup order `q` (prime).
pub const Q: u64 = 1_152_921_504_606_849_959;

/// Generator of the order-`q` subgroup.
pub const G: u64 = 25;

/// A second generator with unknown discrete log relative to [`G`]
/// (independent basis for commitments).
pub const H: u64 = 49;

/// A scalar modulo [`Q`] (exponent / secret share / signature component).
///
/// # Examples
///
/// ```
/// use itdos_crypto::group::Scalar;
///
/// let a = Scalar::new(10);
/// let b = Scalar::new(3);
/// assert_eq!((a * b).value(), 30);
/// assert_eq!((a - b).value(), 7);
/// assert_eq!((b * b.inverse()).value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Scalar(u64);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar(0);

    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar(1);

    /// Creates a scalar, reducing modulo `q`.
    pub fn new(value: u64) -> Scalar {
        Scalar(value % Q)
    }

    /// Derives a scalar from a digest (uniform enough for a 61-bit toy
    /// modulus).
    pub fn from_digest(digest: &Digest) -> Scalar {
        let hi = u64::from_be_bytes(digest.0[..8].try_into().expect("8 bytes")) as u128;
        let lo = u64::from_be_bytes(digest.0[8..16].try_into().expect("8 bytes")) as u128;
        Scalar((((hi << 64) | lo) % Q as u128) as u64)
    }

    /// Returns the canonical representative in `[0, q)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics on `Scalar::ZERO`, which has no inverse.
    pub fn inverse(self) -> Scalar {
        assert!(self.0 != 0, "zero scalar has no inverse");
        Scalar(pow_mod(self.0, Q - 2, Q))
    }

    /// Little-endian byte serialization.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserializes, reducing modulo `q`.
    pub fn from_bytes(bytes: [u8; 8]) -> Scalar {
        Scalar::new(u64::from_le_bytes(bytes))
    }
}

impl std::ops::Add for Scalar {
    type Output = Scalar;
    fn add(self, rhs: Scalar) -> Scalar {
        Scalar(((self.0 as u128 + rhs.0 as u128) % Q as u128) as u64)
    }
}

impl std::ops::Sub for Scalar {
    type Output = Scalar;
    fn sub(self, rhs: Scalar) -> Scalar {
        Scalar((self.0 + Q - rhs.0) % Q)
    }
}

impl std::ops::Mul for Scalar {
    type Output = Scalar;
    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(mul_mod(self.0, rhs.0, Q))
    }
}

impl std::ops::Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar((Q - self.0) % Q)
    }
}

/// An element of the order-`q` subgroup of `Z_p^*`.
///
/// # Examples
///
/// ```
/// use itdos_crypto::group::{Element, Scalar};
///
/// let two = Scalar::new(2);
/// let three = Scalar::new(3);
/// let lhs = Element::generator().pow(two).pow(three);
/// let rhs = Element::generator().pow(two * three);
/// assert_eq!(lhs, rhs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Element(u64);

impl Element {
    /// The group identity.
    pub const IDENTITY: Element = Element(1);

    /// The standard generator `g`.
    pub fn generator() -> Element {
        Element(G)
    }

    /// The independent generator `h`.
    pub fn generator_h() -> Element {
        Element(H)
    }

    /// Hashes arbitrary bytes onto the subgroup: `(H(x) mod p)^2`, squaring
    /// to land in the quadratic residues (= the order-`q` subgroup of a safe
    /// prime group).
    pub fn hash_to_group(data: &[u8]) -> Element {
        let d = Digest::of_parts(&[b"itdos-h2g", data]);
        let hi = u64::from_be_bytes(d.0[..8].try_into().expect("8 bytes")) as u128;
        let lo = u64::from_be_bytes(d.0[8..16].try_into().expect("8 bytes")) as u128;
        let mut x = (((hi << 64) | lo) % P as u128) as u64;
        if x == 0 {
            x = 2;
        }
        Element(mul_mod(x, x, P))
    }

    /// Exponentiation by a scalar.
    pub fn pow(self, exponent: Scalar) -> Element {
        Element(pow_mod(self.0, exponent.0, P))
    }

    /// Group operation (modular multiplication).
    pub fn mul(self, rhs: Element) -> Element {
        Element(mul_mod(self.0, rhs.0, P))
    }

    /// Inverse element.
    pub fn inverse(self) -> Element {
        Element(pow_mod(self.0, P - 2, P))
    }

    /// The canonical representative in `[1, p)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Checks subgroup membership (`x^q == 1`).
    pub fn is_valid(self) -> bool {
        self.0 != 0 && self.0 < P && pow_mod(self.0, Q, P) == 1
    }

    /// Little-endian byte serialization.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserializes without validation; call [`Element::is_valid`] on
    /// untrusted input.
    pub fn from_bytes(bytes: [u8; 8]) -> Element {
        Element(u64::from_le_bytes(bytes))
    }
}

/// `(a * b) mod m` without overflow for `m < 2^64`.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    let mut base = base % m;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_consistent() {
        assert_eq!(P, 2 * Q + 1);
        assert!(Element::generator().is_valid());
        assert!(Element::generator_h().is_valid());
        assert_ne!(Element::generator(), Element::generator_h());
    }

    #[test]
    fn generator_has_order_q() {
        assert_eq!(Element::generator().pow(Scalar::new(0)), Element::IDENTITY);
        assert_eq!(
            Element(pow_mod(G, Q, P)),
            Element::IDENTITY,
            "g^q must be 1"
        );
        assert_ne!(
            Element(pow_mod(G, 2, P)),
            Element::IDENTITY,
            "g must not have tiny order"
        );
    }

    #[test]
    fn scalar_field_axioms_spot_check() {
        let a = Scalar::new(123_456_789);
        let b = Scalar::new(987_654_321);
        let c = Scalar::new(555);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a + (-a), Scalar::ZERO);
        assert_eq!(a - a, Scalar::ZERO);
    }

    #[test]
    fn inverse_round_trips() {
        for v in [1u64, 2, 17, Q - 1, 123_456_789] {
            let s = Scalar::new(v);
            assert_eq!(s * s.inverse(), Scalar::ONE, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "zero scalar")]
    fn zero_has_no_inverse() {
        let _ = Scalar::ZERO.inverse();
    }

    #[test]
    fn element_inverse_round_trips() {
        let e = Element::generator().pow(Scalar::new(99));
        assert_eq!(e.mul(e.inverse()), Element::IDENTITY);
    }

    #[test]
    fn pow_laws() {
        let g = Element::generator();
        let a = Scalar::new(7_000_000);
        let b = Scalar::new(13);
        assert_eq!(g.pow(a).mul(g.pow(b)), g.pow(a + b));
        assert_eq!(g.pow(a).pow(b), g.pow(a * b));
    }

    #[test]
    fn hash_to_group_lands_in_subgroup() {
        for input in [&b"a"[..], b"b", b"itdos", b""] {
            let e = Element::hash_to_group(input);
            assert!(e.is_valid(), "input {input:?}");
        }
        assert_ne!(
            Element::hash_to_group(b"a"),
            Element::hash_to_group(b"b"),
            "distinct inputs map to distinct points (w.h.p.)"
        );
    }

    #[test]
    fn scalar_bytes_round_trip() {
        let s = Scalar::new(424_242);
        assert_eq!(Scalar::from_bytes(s.to_bytes()), s);
        let e = Element::generator().pow(s);
        assert_eq!(Element::from_bytes(e.to_bytes()), e);
    }

    #[test]
    fn from_digest_reduces() {
        let d = Digest::of(b"seed");
        let s = Scalar::from_digest(&d);
        assert!(s.value() < Q);
        assert_eq!(s, Scalar::from_digest(&d), "deterministic");
    }

    #[test]
    fn invalid_elements_rejected() {
        assert!(!Element::from_bytes(0u64.to_le_bytes()).is_valid());
        assert!(!Element::from_bytes(P.to_le_bytes()).is_valid());
        // A non-residue: g^odd is a QR; find a non-QR by taking a known
        // generator of the full group. 5 generates a subgroup containing
        // non-residues since 5^q != 1 unless 5 is a QR.
        let five = pow_mod(5, Q, P);
        if five != 1 {
            assert!(!Element::from_bytes(5u64.to_le_bytes()).is_valid());
        }
    }
}
