//! Verifiable distributed pseudo-random function (DPRF).
//!
//! This is the paper's §3.5 key-generation core: "Each Group Manager
//! replication domain element uses a common non-repeating value as an input
//! to a distributed (non-interactive) pseudo-random function \[26\] … The
//! non-interactive distributed function generates the key shares and
//! verification information for the secret key and each key share."
//!
//! Construction (Naor–Pinkas–Reingold, DDH-based):
//!
//! * a master secret `s` is `(f+1)`-of-`n` Shamir-shared into `s_1 … s_n`
//!   with Feldman commitments `g^{s_i}` published;
//! * on common input `x`, element `i` outputs the share evaluation
//!   `u_i = H(x)^{s_i}` plus a Chaum–Pedersen DLEQ proof that the exponent
//!   in `u_i` matches its commitment — this is the *verification
//!   information*;
//! * any `f+1` verified shares combine by Lagrange interpolation in the
//!   exponent to `H(x)^s`, from which the communication key is derived.
//!
//! Properties proved by the tests: every `(f+1)`-subset yields the same
//! key; ≤ `f` shares yield nothing; a corrupted share is detected by its
//! proof; corrupt elements cannot shift the combined key.

use xrand::Rng;

use crate::group::Element;
use crate::hash::Digest;
use crate::keys::SymmetricKey;
use crate::shamir::{self, Commitments, Share, ShareIndex};

/// One element's evaluated key share on a common input, with its
/// verification information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyShare {
    /// Which shareholder produced this.
    pub index: ShareIndex,
    /// `H(x)^{s_i}`.
    pub point: Element,
    /// DLEQ proof binding `point` to the public commitment `g^{s_i}`.
    pub proof: crate::dleq::DleqProof,
}

impl KeyShare {
    /// Serializes to bytes (index ‖ point ‖ proof).
    pub fn to_bytes(&self) -> [u8; 28] {
        let mut out = [0u8; 28];
        out[..4].copy_from_slice(&self.index.value().to_le_bytes());
        out[4..12].copy_from_slice(&self.point.to_bytes());
        out[12..].copy_from_slice(&self.proof.to_bytes());
        out
    }

    /// Deserializes from bytes.
    ///
    /// Returns `None` for a zero index (invalid by construction).
    pub fn from_bytes(bytes: [u8; 28]) -> Option<KeyShare> {
        let raw_index = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        if raw_index == 0 {
            return None;
        }
        Some(KeyShare {
            index: ShareIndex::new(raw_index),
            point: Element::from_bytes(bytes[4..12].try_into().expect("8 bytes")),
            proof: crate::dleq::DleqProof::from_bytes(bytes[12..].try_into().expect("16 bytes")),
        })
    }
}

/// A shareholder's secret state: one Shamir share of the master secret.
#[derive(Debug, Clone)]
pub struct Shareholder {
    share: Share,
    commitments: Commitments,
}

impl Shareholder {
    /// This holder's index.
    pub fn index(&self) -> ShareIndex {
        self.share.index
    }

    /// Evaluates the DPRF share on common input `x`, producing the share
    /// point and its verification proof.
    pub fn evaluate(&self, x: &[u8]) -> KeyShare {
        let hx = Element::hash_to_group(x);
        let point = hx.pow(self.share.value);
        let proof = crate::dleq::DleqProof::prove(
            Element::generator(),
            Element::generator().pow(self.share.value),
            hx,
            point,
            self.share.value,
        );
        KeyShare {
            index: self.share.index,
            point,
            proof,
        }
    }

    /// Exposes the raw Shamir share — only for modeling *compromise* of
    /// this element in experiments (E7/E11).
    pub fn leak_share(&self) -> Share {
        self.share
    }

    /// The public commitments (every holder carries a copy).
    pub fn commitments(&self) -> &Commitments {
        &self.commitments
    }
}

/// The public verification state held by combiners (clients/servers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verifier {
    commitments: Commitments,
}

impl Verifier {
    /// Verifies one key share for input `x`: checks the DLEQ proof against
    /// the holder's Feldman commitment.
    pub fn verify(&self, x: &[u8], share: &KeyShare) -> bool {
        let hx = Element::hash_to_group(x);
        let expected_pk = self.commitments.expected_share_point(share.index);
        share.point.is_valid()
            && share
                .proof
                .verify(Element::generator(), expected_pk, hx, share.point)
    }

    /// Number of shares required to combine.
    pub fn threshold(&self) -> usize {
        self.commitments.threshold()
    }
}

/// Errors from key combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineError {
    /// Fewer verified shares than the threshold.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// A share failed verification.
    BadShare(ShareIndex),
    /// Two shares carry the same index.
    DuplicateIndex(ShareIndex),
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::NotEnoughShares { got, need } => {
                write!(f, "not enough key shares: got {got}, need {need}")
            }
            CombineError::BadShare(i) => {
                write!(f, "key share {} failed verification", i.value())
            }
            CombineError::DuplicateIndex(i) => {
                write!(f, "duplicate key share index {}", i.value())
            }
        }
    }
}

impl std::error::Error for CombineError {}

/// A dealt DPRF instance: `n` shareholders with threshold `f+1`.
#[derive(Debug, Clone)]
pub struct Dprf {
    holders: Vec<Shareholder>,
    verifier: Verifier,
}

impl Dprf {
    /// Deals a fresh DPRF among `n` holders tolerating `f` corruptions
    /// (threshold `f+1`).
    ///
    /// In deployment the dealing is a configuration input (the paper: "ITDOS
    /// relies upon configuration inputs for its pseudo-random functions");
    /// the distributed re-initialization protocol lives in
    /// [`crate::rngshare`].
    ///
    /// # Panics
    ///
    /// Panics if `n < f + 1`.
    pub fn deal<R: Rng + ?Sized>(f: usize, n: usize, rng: &mut R) -> Dprf {
        assert!(n >= f + 1, "need at least f+1 holders");
        let secret = crate::group::Scalar::new(rng.gen());
        let (shares, commitments) = shamir::split(secret, f + 1, n, rng);
        let holders = shares
            .into_iter()
            .map(|share| Shareholder {
                share,
                commitments: commitments.clone(),
            })
            .collect();
        Dprf {
            holders,
            verifier: Verifier { commitments },
        }
    }

    /// The shareholders (moved out to the Group Manager elements).
    pub fn holders(&self) -> &[Shareholder] {
        &self.holders
    }

    /// Consumes the instance, returning holders and the public verifier.
    pub fn into_parts(self) -> (Vec<Shareholder>, Verifier) {
        (self.holders, self.verifier)
    }

    /// The public verifier distributed to clients and servers.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }
}

/// Verifies and combines key shares for input `x` into the communication
/// key. Exactly the client/server side of connection establishment step
/// 2–3 (§3.5).
///
/// # Errors
///
/// Fails if shares are too few, duplicated, or any fails verification.
pub fn combine(
    verifier: &Verifier,
    x: &[u8],
    shares: &[KeyShare],
) -> Result<SymmetricKey, CombineError> {
    let need = verifier.threshold();
    if shares.len() < need {
        return Err(CombineError::NotEnoughShares {
            got: shares.len(),
            need,
        });
    }
    let shares = &shares[..need];
    for (k, s) in shares.iter().enumerate() {
        if shares[..k].iter().any(|t| t.index == s.index) {
            return Err(CombineError::DuplicateIndex(s.index));
        }
        if !verifier.verify(x, s) {
            return Err(CombineError::BadShare(s.index));
        }
    }
    // Lagrange interpolation in the exponent at x = 0.
    let pseudo_shares: Vec<Share> = shares
        .iter()
        .map(|s| Share {
            index: s.index,
            value: crate::group::Scalar::ZERO, // value unused; indices drive lambdas
        })
        .collect();
    let lambdas = shamir::lagrange_at_zero(&pseudo_shares).expect("validated above");
    let mut acc = Element::IDENTITY;
    for (share, lambda) in shares.iter().zip(lambdas) {
        acc = acc.mul(share.point.pow(lambda));
    }
    Ok(derive_key(x, acc))
}

/// Derives the final symmetric key from the combined group element.
fn derive_key(x: &[u8], point: Element) -> SymmetricKey {
    let d = Digest::of_parts(&[b"itdos-dprf-kdf", x, &point.to_bytes()]);
    SymmetricKey::from_digest(d)
}

/// Direct master evaluation (test oracle): what the key *should* be.
pub fn evaluate_master(holders: &[Shareholder], x: &[u8]) -> Option<SymmetricKey> {
    // Reconstruct the master secret from the first `threshold` raw shares.
    let threshold = holders.first()?.commitments.threshold();
    if holders.len() < threshold {
        return None;
    }
    let raw: Vec<Share> = holders[..threshold].iter().map(|h| h.share).collect();
    let s = shamir::combine(&raw).ok()?;
    let point = Element::hash_to_group(x).pow(s);
    Some(derive_key(x, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn dprf(f: usize, n: usize) -> Dprf {
        Dprf::deal(f, n, &mut SmallRng::seed_from_u64(7))
    }

    #[test]
    fn any_f_plus_1_subset_gives_same_key() {
        let d = dprf(1, 4);
        let x = b"conn-42";
        let shares: Vec<KeyShare> = d.holders().iter().map(|h| h.evaluate(x)).collect();
        let expected = evaluate_master(d.holders(), x).unwrap();
        for a in 0..4 {
            for b in (a + 1)..4 {
                let key = combine(d.verifier(), x, &[shares[a], shares[b]]).unwrap();
                assert_eq!(key, expected, "subset ({a},{b})");
            }
        }
    }

    #[test]
    fn different_inputs_give_different_keys() {
        let d = dprf(1, 4);
        let k1 = combine(
            d.verifier(),
            b"x1",
            &d.holders()[..2]
                .iter()
                .map(|h| h.evaluate(b"x1"))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let k2 = combine(
            d.verifier(),
            b"x2",
            &d.holders()[..2]
                .iter()
                .map(|h| h.evaluate(b"x2"))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn too_few_shares_rejected() {
        let d = dprf(2, 7);
        let x = b"conn";
        let shares: Vec<KeyShare> = d.holders()[..2].iter().map(|h| h.evaluate(x)).collect();
        assert_eq!(
            combine(d.verifier(), x, &shares),
            Err(CombineError::NotEnoughShares { got: 2, need: 3 })
        );
    }

    #[test]
    fn corrupted_share_detected() {
        let d = dprf(1, 4);
        let x = b"conn";
        let mut shares: Vec<KeyShare> = d.holders().iter().map(|h| h.evaluate(x)).collect();
        // element 0 is corrupt: sends a share for a different exponent
        shares[0].point = Element::hash_to_group(x).pow(crate::group::Scalar::new(666));
        let err = combine(d.verifier(), x, &shares[..2]).unwrap_err();
        assert_eq!(err, CombineError::BadShare(shares[0].index));
    }

    #[test]
    fn corrupt_share_with_forged_proof_detected() {
        let d = dprf(1, 4);
        let x = b"conn";
        // corrupt holder knows some *other* secret and makes a valid-looking
        // DLEQ for it — but the verifier checks against the published
        // commitment, so it cannot pass.
        let fake_secret = crate::group::Scalar::new(31337);
        let hx = Element::hash_to_group(x);
        let forged = KeyShare {
            index: ShareIndex::new(1),
            point: hx.pow(fake_secret),
            proof: crate::dleq::DleqProof::prove(
                Element::generator(),
                Element::generator().pow(fake_secret),
                hx,
                hx.pow(fake_secret),
                fake_secret,
            ),
        };
        assert!(!d.verifier().verify(x, &forged));
    }

    #[test]
    fn duplicate_share_rejected() {
        let d = dprf(1, 4);
        let x = b"conn";
        let s = d.holders()[0].evaluate(x);
        assert_eq!(
            combine(d.verifier(), x, &[s, s]),
            Err(CombineError::DuplicateIndex(s.index))
        );
    }

    #[test]
    fn f_corrupt_elements_cannot_shift_key() {
        // With f=1, one corrupt element colluding contributes one bad share;
        // the combiner rejects it, and any 2 honest shares still produce the
        // master key.
        let d = dprf(1, 4);
        let x = b"conn";
        let honest: Vec<KeyShare> = d.holders()[1..3].iter().map(|h| h.evaluate(x)).collect();
        let key = combine(d.verifier(), x, &honest).unwrap();
        assert_eq!(key, evaluate_master(d.holders(), x).unwrap());
    }

    #[test]
    fn share_bytes_round_trip() {
        let d = dprf(1, 4);
        let s = d.holders()[2].evaluate(b"x");
        assert_eq!(KeyShare::from_bytes(s.to_bytes()), Some(s));
        let mut zero = s.to_bytes();
        zero[..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(KeyShare::from_bytes(zero), None);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let d = dprf(1, 4);
        assert_eq!(d.holders()[0].evaluate(b"x"), d.holders()[0].evaluate(b"x"));
    }

    #[test]
    #[should_panic(expected = "need at least f+1")]
    fn dealing_requires_enough_holders() {
        Dprf::deal(3, 3, &mut SmallRng::seed_from_u64(0));
    }
}
