//! Schnorr signatures over the toy group.
//!
//! Stands in for the paper's RSA signatures \[33\]: ITDOS signs every message
//! so that receivers can assemble *proofs* of faulty values for the Group
//! Manager (§3.6). The nonce is derived deterministically from the secret
//! key and message (RFC 6979 style) so signing needs no RNG — important for
//! the deterministic replica execution model.

use crate::group::{Element, Scalar};
use crate::hash::Digest;

/// A signing (secret) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigningKey {
    secret: Scalar,
}

/// A verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VerifyingKey {
    point: Element,
}

/// A Schnorr signature `(challenge, response)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Fiat–Shamir challenge `e = H(R || pk || m)`.
    pub challenge: Scalar,
    /// Response `s = k + e·x`.
    pub response: Scalar,
}

impl Signature {
    /// Serializes to 16 bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.challenge.to_bytes());
        out[8..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Deserializes from 16 bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Signature {
        Signature {
            challenge: Scalar::from_bytes(bytes[..8].try_into().expect("8 bytes")),
            response: Scalar::from_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

impl SigningKey {
    /// Derives a key pair from seed bytes (deterministic: the simulation
    /// provisions keys from its master seed).
    pub fn from_seed(seed: &[u8]) -> SigningKey {
        let d = Digest::of_parts(&[b"itdos-sign-key", seed]);
        let mut secret = Scalar::from_digest(&d);
        if secret == Scalar::ZERO {
            secret = Scalar::ONE;
        }
        SigningKey { secret }
    }

    /// Returns the matching public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            point: Element::generator().pow(self.secret),
        }
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let k_digest = Digest::of_parts(&[b"itdos-nonce", &self.secret.to_bytes(), message]);
        let mut k = Scalar::from_digest(&k_digest);
        if k == Scalar::ZERO {
            k = Scalar::ONE;
        }
        let r = Element::generator().pow(k);
        let e = challenge(&r, &self.verifying_key(), message);
        let s = k + e * self.secret;
        Signature {
            challenge: e,
            response: s,
        }
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        if !self.point.is_valid() {
            return false;
        }
        // R' = g^s · y^{-e}
        let r = Element::generator()
            .pow(signature.response)
            .mul(self.point.pow(signature.challenge).inverse());
        challenge(&r, self, message) == signature.challenge
    }

    /// Serializes to 8 bytes.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.point.to_bytes()
    }

    /// Deserializes; verification rejects invalid points later.
    pub fn from_bytes(bytes: [u8; 8]) -> VerifyingKey {
        VerifyingKey {
            point: Element::from_bytes(bytes),
        }
    }
}

fn challenge(r: &Element, pk: &VerifyingKey, message: &[u8]) -> Scalar {
    let d = Digest::of_parts(&[
        b"itdos-sig-chal",
        &r.to_bytes(),
        &pk.point.to_bytes(),
        message,
    ]);
    Scalar::from_digest(&d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let sk = SigningKey::from_seed(b"replica-0");
        let pk = sk.verifying_key();
        let sig = sk.sign(b"hello");
        assert!(pk.verify(b"hello", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let sk = SigningKey::from_seed(b"replica-0");
        let sig = sk.sign(b"hello");
        assert!(!sk.verifying_key().verify(b"hellO", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(b"a");
        let sk2 = SigningKey::from_seed(b"b");
        let sig = sk1.sign(b"m");
        assert!(!sk2.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_seed(b"a");
        let sig = sk.sign(b"m");
        let tampered = Signature {
            challenge: sig.challenge + Scalar::ONE,
            response: sig.response,
        };
        assert!(!sk.verifying_key().verify(b"m", &tampered));
        let tampered = Signature {
            challenge: sig.challenge,
            response: sig.response + Scalar::ONE,
        };
        assert!(!sk.verifying_key().verify(b"m", &tampered));
    }

    #[test]
    fn signing_is_deterministic() {
        let sk = SigningKey::from_seed(b"a");
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m"), sk.sign(b"n"));
    }

    #[test]
    fn signature_bytes_round_trip() {
        let sig = SigningKey::from_seed(b"a").sign(b"m");
        assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
        let pk = SigningKey::from_seed(b"a").verifying_key();
        assert_eq!(VerifyingKey::from_bytes(pk.to_bytes()), pk);
    }

    #[test]
    fn invalid_public_key_never_verifies() {
        let pk = VerifyingKey::from_bytes(5u64.to_le_bytes());
        let sig = SigningKey::from_seed(b"a").sign(b"m");
        // 5 is (very likely) not in the subgroup; verify must not panic
        let _ = pk.verify(b"m", &sig);
    }

    #[test]
    fn distinct_seeds_give_distinct_keys() {
        let a = SigningKey::from_seed(b"x").verifying_key();
        let b = SigningKey::from_seed(b"y").verifying_key();
        assert_ne!(a, b);
    }
}
