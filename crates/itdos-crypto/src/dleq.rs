//! Chaum–Pedersen discrete-log-equality (DLEQ) proofs.
//!
//! Used as the *verification information* the paper attaches to each DPRF
//! key share (§3.5): a Group Manager element proves non-interactively that
//! its share evaluation `u = base2^{s_i}` uses the same exponent as its
//! public Feldman point `v = base1^{s_i}`, without revealing `s_i`. Clients
//! and servers verify every received share, so up to `f` corrupt Group
//! Manager elements "cannot tamper with or obtain the communication key".

use crate::group::{Element, Scalar};
use crate::hash::Digest;

/// A non-interactive DLEQ proof: knowledge of `x` with `y1 = base1^x` and
/// `y2 = base2^x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DleqProof {
    challenge: Scalar,
    response: Scalar,
}

impl DleqProof {
    /// Proves `y1 = base1^secret` and `y2 = base2^secret`.
    ///
    /// The commitment nonce is derived deterministically (Fiat–Shamir with
    /// derandomized nonce), keeping replica execution deterministic.
    pub fn prove(
        base1: Element,
        y1: Element,
        base2: Element,
        y2: Element,
        secret: Scalar,
    ) -> DleqProof {
        let k_digest = Digest::of_parts(&[
            b"itdos-dleq-nonce",
            &secret.to_bytes(),
            &base1.to_bytes(),
            &base2.to_bytes(),
            &y1.to_bytes(),
            &y2.to_bytes(),
        ]);
        let mut k = Scalar::from_digest(&k_digest);
        if k == Scalar::ZERO {
            k = Scalar::ONE;
        }
        let a1 = base1.pow(k);
        let a2 = base2.pow(k);
        let challenge = Self::challenge(base1, y1, base2, y2, a1, a2);
        DleqProof {
            challenge,
            response: k + challenge * secret,
        }
    }

    /// Verifies the proof against the four public points.
    pub fn verify(&self, base1: Element, y1: Element, base2: Element, y2: Element) -> bool {
        if !(y1.is_valid() && y2.is_valid() && base1.is_valid() && base2.is_valid()) {
            return false;
        }
        // a1' = base1^s · y1^{-e};  a2' = base2^s · y2^{-e}
        let a1 = base1
            .pow(self.response)
            .mul(y1.pow(self.challenge).inverse());
        let a2 = base2
            .pow(self.response)
            .mul(y2.pow(self.challenge).inverse());
        Self::challenge(base1, y1, base2, y2, a1, a2) == self.challenge
    }

    fn challenge(
        base1: Element,
        y1: Element,
        base2: Element,
        y2: Element,
        a1: Element,
        a2: Element,
    ) -> Scalar {
        let d = Digest::of_parts(&[
            b"itdos-dleq-chal",
            &base1.to_bytes(),
            &y1.to_bytes(),
            &base2.to_bytes(),
            &y2.to_bytes(),
            &a1.to_bytes(),
            &a2.to_bytes(),
        ]);
        Scalar::from_digest(&d)
    }

    /// Serializes to 16 bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.challenge.to_bytes());
        out[8..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Deserializes from 16 bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> DleqProof {
        DleqProof {
            challenge: Scalar::from_bytes(bytes[..8].try_into().expect("8 bytes")),
            response: Scalar::from_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(secret: u64) -> (Element, Element, Element, Element, Scalar) {
        let s = Scalar::new(secret);
        let base1 = Element::generator();
        let base2 = Element::hash_to_group(b"x-value");
        (base1, base1.pow(s), base2, base2.pow(s), s)
    }

    #[test]
    fn honest_proof_verifies() {
        let (b1, y1, b2, y2, s) = setup(12345);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        assert!(proof.verify(b1, y1, b2, y2));
    }

    #[test]
    fn mismatched_exponents_rejected() {
        let (b1, y1, b2, _, s) = setup(12345);
        let wrong_y2 = b2.pow(Scalar::new(54321));
        let proof = DleqProof::prove(b1, y1, b2, wrong_y2, s);
        assert!(
            !proof.verify(b1, y1, b2, wrong_y2),
            "prover lied about y2; proof must fail"
        );
    }

    #[test]
    fn tampered_proof_rejected() {
        let (b1, y1, b2, y2, s) = setup(7);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        let bad = DleqProof {
            challenge: proof.challenge + Scalar::ONE,
            response: proof.response,
        };
        assert!(!bad.verify(b1, y1, b2, y2));
    }

    #[test]
    fn swapped_points_rejected() {
        let (b1, y1, b2, y2, s) = setup(7);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        assert!(!proof.verify(b1, y2, b2, y1));
    }

    #[test]
    fn proof_bound_to_bases() {
        let (b1, y1, b2, y2, s) = setup(7);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        let other_base = Element::hash_to_group(b"other");
        assert!(!proof.verify(b1, y1, other_base, y2));
    }

    #[test]
    fn bytes_round_trip() {
        let (b1, y1, b2, y2, s) = setup(99);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        assert_eq!(DleqProof::from_bytes(proof.to_bytes()), proof);
    }

    #[test]
    fn invalid_points_rejected_without_panic() {
        let (b1, y1, b2, y2, s) = setup(5);
        let proof = DleqProof::prove(b1, y1, b2, y2, s);
        let junk = Element::from_bytes(5u64.to_le_bytes());
        assert!(!proof.verify(b1, junk, b2, y2));
    }
}
