//! PBFT-style MAC authenticators.
//!
//! Castro–Liskov replaces most digital signatures with *authenticators*: a
//! vector of per-receiver MACs, one for each replica \[8\]. A replica
//! verifies the entry computed under its pairwise key with the sender.
//! This is what makes PBFT's normal case cheap; ITDOS inherits it for all
//! intra-domain protocol traffic.

use crate::hash::Digest;
use crate::hmac::hmac;
use crate::keys::SymmetricKey;

/// Compact 8-byte MAC entry (PBFT truncates MACs similarly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacTag(pub [u8; 8]);

impl MacTag {
    fn compute(key: &SymmetricKey, message: &[u8]) -> MacTag {
        let d = hmac(key.as_bytes(), message);
        MacTag(d.0[..8].try_into().expect("8 bytes"))
    }
}

/// An authenticator: one [`MacTag`] per receiver, indexed by replica id.
///
/// # Examples
///
/// ```
/// use itdos_crypto::keys::SymmetricKey;
/// use itdos_crypto::mac::Authenticator;
///
/// let keys: Vec<SymmetricKey> = (0..4)
///     .map(|i| SymmetricKey::derive(&[i as u8], b"pair"))
///     .collect();
/// let auth = Authenticator::generate(&keys, b"pre-prepare");
/// assert!(auth.verify(2, &keys[2], b"pre-prepare"));
/// assert!(!auth.verify(2, &keys[2], b"tampered"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authenticator {
    tags: Vec<MacTag>,
}

impl Authenticator {
    /// Generates an authenticator over `message` for receivers whose
    /// pairwise keys are `keys[i]`.
    pub fn generate(keys: &[SymmetricKey], message: &[u8]) -> Authenticator {
        Authenticator {
            tags: keys.iter().map(|k| MacTag::compute(k, message)).collect(),
        }
    }

    /// Verifies the entry for receiver `index` with the pairwise `key`.
    ///
    /// Returns false for out-of-range indices (a Byzantine sender may send
    /// a short authenticator). The tag comparison is constant-time: an
    /// early-exit `==` would let a sender measure how long a forged prefix
    /// survived.
    pub fn verify(&self, index: usize, key: &SymmetricKey, message: &[u8]) -> bool {
        self.tags
            .get(index)
            .is_some_and(|tag| crate::ct::ct_eq(&tag.0, &MacTag::compute(key, message).0))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when the authenticator carries no entries.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.tags.len() * 8);
        out.extend_from_slice(&(self.tags.len() as u32).to_le_bytes());
        for t in &self.tags {
            out.extend_from_slice(&t.0);
        }
        out
    }

    /// Parses the serialized form. Returns the authenticator and bytes
    /// consumed, or `None` on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Option<(Authenticator, usize)> {
        if bytes.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        let need = 4 + n * 8;
        if bytes.len() < need {
            return None;
        }
        let tags = bytes[4..need]
            .chunks_exact(8)
            .map(|c| MacTag(c.try_into().expect("8 bytes")))
            .collect();
        Some((Authenticator { tags }, need))
    }
}

/// Computes a plain keyed digest of a message (full-width MAC, used where a
/// single receiver is known, e.g. client ↔ replica pairs).
pub fn message_mac(key: &SymmetricKey, message: &[u8]) -> Digest {
    hmac(key.as_bytes(), message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<SymmetricKey> {
        (0..n)
            .map(|i| SymmetricKey::derive(&[i as u8], b"pairwise"))
            .collect()
    }

    #[test]
    fn each_receiver_verifies_own_entry() {
        let ks = keys(4);
        let auth = Authenticator::generate(&ks, b"m");
        for (i, k) in ks.iter().enumerate() {
            assert!(auth.verify(i, k, b"m"));
        }
    }

    #[test]
    fn wrong_key_or_message_fails() {
        let ks = keys(4);
        let auth = Authenticator::generate(&ks, b"m");
        assert!(!auth.verify(0, &ks[1], b"m"), "cross-key must fail");
        assert!(!auth.verify(0, &ks[0], b"m2"));
    }

    #[test]
    fn out_of_range_index_fails_gracefully() {
        let ks = keys(2);
        let auth = Authenticator::generate(&ks, b"m");
        assert!(!auth.verify(5, &ks[0], b"m"));
    }

    #[test]
    fn bytes_round_trip() {
        let ks = keys(3);
        let auth = Authenticator::generate(&ks, b"m");
        let bytes = auth.to_bytes();
        let (parsed, used) = Authenticator::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, auth);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let ks = keys(3);
        let bytes = Authenticator::generate(&ks, b"m").to_bytes();
        assert!(Authenticator::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Authenticator::from_bytes(&[]).is_none());
    }

    #[test]
    fn empty_authenticator() {
        let auth = Authenticator::generate(&[], b"m");
        assert!(auth.is_empty());
        assert_eq!(auth.len(), 0);
        let (parsed, _) = Authenticator::from_bytes(&auth.to_bytes()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn message_mac_distinguishes_keys() {
        let ks = keys(2);
        assert_ne!(message_mac(&ks[0], b"m"), message_mac(&ks[1], b"m"));
    }
}
