//! Distributed random-value generation (commit–reveal).
//!
//! §3.5: "The ITDOS Group Manager uses a distributed random number
//! generation process to initialize (and periodically re-initialize) the
//! pseudo-random number generators of each Group Manager replication
//! domain element. The outputs of the pseudo-random number generators
//! become the common inputs to the distributed function."
//!
//! We implement the standard commit–reveal coin: each participant commits
//! `H(contribution)` first, then reveals; the common value is the hash of
//! all revealed contributions. As long as one participant is honest the
//! output is unpredictable to the others, and any participant whose reveal
//! does not match its commitment is identified.
//!
//! The *common non-repeating input* fed to the DPRF for each key is then
//! `PRG(seed) ‖ counter`, which [`CommonInputSequence`] produces.

use crate::hash::Digest;

/// One participant's commitment to its contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commitment(pub Digest);

/// A participant's secret contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contribution(pub [u8; 32]);

impl Contribution {
    /// Derives a contribution deterministically from local entropy bytes.
    pub fn from_entropy(entropy: &[u8]) -> Contribution {
        Contribution(Digest::of_parts(&[b"itdos-coin-contrib", entropy]).0)
    }

    /// The commitment to publish in round one.
    pub fn commit(&self) -> Commitment {
        Commitment(Digest::of_parts(&[b"itdos-coin-commit", &self.0]))
    }
}

/// Outcome of verifying reveals against commitments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoinOutcome {
    /// The agreed random seed (hash of all *valid* reveals, in participant
    /// order).
    pub seed: [u8; 32],
    /// Indices whose reveal did not match their commitment (to be reported
    /// to the membership layer).
    pub cheaters: Vec<usize>,
}

/// Combines commit/reveal rounds into the common seed.
///
/// `pairs[i]` is participant `i`'s `(commitment, reveal)`. Mismatched
/// reveals are excluded from the seed and reported.
///
/// # Examples
///
/// ```
/// use itdos_crypto::rngshare::{combine_reveals, Contribution};
///
/// let contribs: Vec<Contribution> = (0..3)
///     .map(|i| Contribution::from_entropy(&[i as u8]))
///     .collect();
/// let pairs: Vec<_> = contribs.iter().map(|c| (c.commit(), *c)).collect();
/// let outcome = combine_reveals(&pairs);
/// assert!(outcome.cheaters.is_empty());
/// ```
pub fn combine_reveals(pairs: &[(Commitment, Contribution)]) -> CoinOutcome {
    let mut cheaters = Vec::new();
    let mut hasher_input: Vec<u8> = Vec::with_capacity(pairs.len() * 32);
    for (i, (commitment, reveal)) in pairs.iter().enumerate() {
        if reveal.commit() == *commitment {
            hasher_input.extend_from_slice(&reveal.0);
        } else {
            cheaters.push(i);
        }
    }
    CoinOutcome {
        seed: Digest::of_parts(&[b"itdos-coin-seed", &hasher_input]).0,
        cheaters,
    }
}

/// The sequence of common, non-repeating DPRF inputs derived from an agreed
/// seed: element `k` is `H(seed ‖ k)`.
///
/// All Group Manager elements construct the same sequence, satisfying the
/// "common non-repeating value" requirement without further interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonInputSequence {
    seed: [u8; 32],
    counter: u64,
}

impl CommonInputSequence {
    /// Starts the sequence from an agreed seed.
    pub fn new(seed: [u8; 32]) -> CommonInputSequence {
        CommonInputSequence { seed, counter: 0 }
    }

    /// Produces the next common input; never repeats.
    pub fn next_input(&mut self) -> [u8; 32] {
        let v = self.peek(self.counter);
        self.counter += 1;
        v
    }

    /// The input for an explicit counter value (used when elements must
    /// agree on the input for a *particular* connection id).
    pub fn peek(&self, counter: u64) -> [u8; 32] {
        Digest::of_parts(&[b"itdos-common-input", &self.seed, &counter.to_be_bytes()]).0
    }

    /// Current counter position.
    pub fn position(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contribs(n: usize) -> Vec<Contribution> {
        (0..n)
            .map(|i| Contribution::from_entropy(&[i as u8, 0xAA]))
            .collect()
    }

    #[test]
    fn honest_rounds_agree_and_name_no_cheaters() {
        let cs = contribs(4);
        let pairs: Vec<_> = cs.iter().map(|c| (c.commit(), *c)).collect();
        let a = combine_reveals(&pairs);
        let b = combine_reveals(&pairs);
        assert_eq!(a, b);
        assert!(a.cheaters.is_empty());
    }

    #[test]
    fn cheater_detected_and_excluded() {
        let cs = contribs(4);
        let mut pairs: Vec<_> = cs.iter().map(|c| (c.commit(), *c)).collect();
        // participant 2 reveals a different value than committed
        pairs[2].1 = Contribution::from_entropy(b"lie");
        let outcome = combine_reveals(&pairs);
        assert_eq!(outcome.cheaters, vec![2]);
        // the honest participants' seed differs from the all-honest seed
        let honest: Vec<_> = cs.iter().map(|c| (c.commit(), *c)).collect();
        assert_ne!(outcome.seed, combine_reveals(&honest).seed);
    }

    #[test]
    fn single_honest_contribution_randomizes_seed() {
        // fixing everyone but participant 0, changing participant 0's
        // contribution changes the seed
        let mut cs = contribs(3);
        let pairs1: Vec<_> = cs.iter().map(|c| (c.commit(), *c)).collect();
        cs[0] = Contribution::from_entropy(b"different");
        let pairs2: Vec<_> = cs.iter().map(|c| (c.commit(), *c)).collect();
        assert_ne!(combine_reveals(&pairs1).seed, combine_reveals(&pairs2).seed);
    }

    #[test]
    fn common_inputs_never_repeat() {
        let mut seq = CommonInputSequence::new([1u8; 32]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            assert!(seen.insert(seq.next_input()));
        }
        assert_eq!(seq.position(), 100);
    }

    #[test]
    fn peek_matches_sequence() {
        let mut seq = CommonInputSequence::new([2u8; 32]);
        let peeked = seq.peek(0);
        assert_eq!(seq.next_input(), peeked);
    }

    #[test]
    fn sequences_from_same_seed_agree() {
        let mut a = CommonInputSequence::new([3u8; 32]);
        let mut b = CommonInputSequence::new([3u8; 32]);
        for _ in 0..10 {
            assert_eq!(a.next_input(), b.next_input());
        }
    }
}
