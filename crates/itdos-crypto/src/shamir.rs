//! Shamir secret sharing over `Z_q`, with Feldman verifiability.
//!
//! The Group Manager's master PRF secret is `(f+1)`-out-of-`n` shared so
//! that an adversary holding `f` Group Manager elements learns nothing
//! (§3.5). Feldman commitments (`g^{coeff}`) let every share holder verify
//! its share against public data, so a corrupted dealer or tampered share
//! is detected at distribution time.

use xrand::Rng;

use crate::group::{Element, Scalar};

/// Index of a share holder; must be non-zero (x-coordinate of the share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShareIndex(u32);

impl ShareIndex {
    /// Creates a share index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero (x = 0 would leak the secret).
    pub fn new(index: u32) -> ShareIndex {
        assert!(index != 0, "share index must be non-zero");
        ShareIndex(index)
    }

    /// The raw index.
    pub fn value(self) -> u32 {
        self.0
    }

    /// The index as a field scalar.
    pub fn scalar(self) -> Scalar {
        Scalar::new(self.0 as u64)
    }
}

/// One holder's share of a secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// The holder's x-coordinate.
    pub index: ShareIndex,
    /// The polynomial evaluated at `index`.
    pub value: Scalar,
}

/// Public commitments to the sharing polynomial (`g^{a_0}, …, g^{a_t}`),
/// allowing share verification without revealing the polynomial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commitments {
    coefficients: Vec<Element>,
}

impl Commitments {
    /// The committed public value of the secret itself (`g^{a_0}`).
    pub fn public_secret(&self) -> Element {
        self.coefficients[0]
    }

    /// The expected public value `g^{s_i}` for holder `index`.
    pub fn expected_share_point(&self, index: ShareIndex) -> Element {
        // g^{p(i)} = Π_k (g^{a_k})^{i^k}
        let x = index.scalar();
        let mut x_pow = Scalar::ONE;
        let mut acc = Element::IDENTITY;
        for c in &self.coefficients {
            acc = acc.mul(c.pow(x_pow));
            x_pow = x_pow * x;
        }
        acc
    }

    /// Verifies that `share` lies on the committed polynomial.
    pub fn verify(&self, share: &Share) -> bool {
        Element::generator().pow(share.value) == self.expected_share_point(share.index)
    }

    /// The reconstruction threshold (number of shares needed).
    pub fn threshold(&self) -> usize {
        self.coefficients.len()
    }
}

/// Splits `secret` into `n` shares, any `threshold` of which reconstruct it.
///
/// Returns the shares (for holders `1..=n`) and the Feldman commitments.
///
/// # Panics
///
/// Panics if `threshold` is zero or exceeds `n`.
///
/// # Examples
///
/// ```
/// use itdos_crypto::group::Scalar;
/// use itdos_crypto::shamir::{combine, split};
/// use xrand::rngs::SmallRng;
/// use xrand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(0xD5A1);
/// let secret = Scalar::new(12345);
/// let (shares, commitments) = split(secret, 2, 4, &mut rng);
/// assert!(shares.iter().all(|s| commitments.verify(s)));
/// assert_eq!(combine(&shares[1..3]).unwrap(), secret);
/// ```
pub fn split<R: Rng + ?Sized>(
    secret: Scalar,
    threshold: usize,
    n: usize,
    rng: &mut R,
) -> (Vec<Share>, Commitments) {
    assert!(threshold >= 1, "threshold must be at least 1");
    assert!(threshold <= n, "threshold cannot exceed share count");
    let mut coefficients = vec![secret];
    for _ in 1..threshold {
        coefficients.push(Scalar::new(rng.gen()));
    }
    let shares = (1..=n as u32)
        .map(|i| {
            let index = ShareIndex::new(i);
            Share {
                index,
                value: evaluate(&coefficients, index.scalar()),
            }
        })
        .collect();
    let commitments = Commitments {
        coefficients: coefficients
            .iter()
            .map(|c| Element::generator().pow(*c))
            .collect(),
    };
    (shares, commitments)
}

fn evaluate(coefficients: &[Scalar], x: Scalar) -> Scalar {
    // Horner's rule
    let mut acc = Scalar::ZERO;
    for c in coefficients.iter().rev() {
        acc = acc * x + *c;
    }
    acc
}

/// Errors from share reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineError {
    /// No shares supplied.
    Empty,
    /// Two shares carry the same index.
    DuplicateIndex(ShareIndex),
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::Empty => write!(f, "no shares supplied"),
            CombineError::DuplicateIndex(i) => {
                write!(f, "duplicate share index {}", i.value())
            }
        }
    }
}

impl std::error::Error for CombineError {}

/// Reconstructs the secret from shares by Lagrange interpolation at zero.
///
/// The caller must supply at least `threshold` *correct* shares; supplying
/// fewer (or corrupted) shares yields an unrelated scalar, not an error —
/// verify shares against [`Commitments`] first when they come from
/// untrusted holders.
///
/// # Errors
///
/// Returns [`CombineError`] on empty input or duplicate indices.
pub fn combine(shares: &[Share]) -> Result<Scalar, CombineError> {
    let lambdas = lagrange_at_zero(shares)?;
    Ok(shares
        .iter()
        .zip(lambdas)
        .fold(Scalar::ZERO, |acc, (share, lambda)| {
            acc + share.value * lambda
        }))
}

/// Computes the Lagrange coefficients at `x = 0` for the given share
/// indices (shared with the DPRF's interpolation in the exponent).
///
/// # Errors
///
/// Returns [`CombineError`] on empty input or duplicate indices.
pub fn lagrange_at_zero(shares: &[Share]) -> Result<Vec<Scalar>, CombineError> {
    if shares.is_empty() {
        return Err(CombineError::Empty);
    }
    for (k, s) in shares.iter().enumerate() {
        if shares[..k].iter().any(|t| t.index == s.index) {
            return Err(CombineError::DuplicateIndex(s.index));
        }
    }
    Ok(shares
        .iter()
        .map(|share| {
            let xi = share.index.scalar();
            let mut num = Scalar::ONE;
            let mut den = Scalar::ONE;
            for other in shares {
                if other.index == share.index {
                    continue;
                }
                let xj = other.index.scalar();
                num = num * xj;
                den = den * (xj - xi);
            }
            num * den.inverse()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn any_threshold_subset_reconstructs() {
        let secret = Scalar::new(777_777);
        let (shares, _) = split(secret, 3, 7, &mut rng());
        // every 3-subset of the 7 shares reconstructs
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(combine(&subset).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn fewer_than_threshold_learns_nothing_useful() {
        let secret = Scalar::new(42);
        let (shares, _) = split(secret, 3, 5, &mut rng());
        let guess = combine(&shares[..2]).unwrap();
        assert_ne!(guess, secret, "2 shares must not reconstruct (w.h.p.)");
    }

    #[test]
    fn commitments_verify_honest_shares() {
        let (shares, commitments) = split(Scalar::new(1), 2, 4, &mut rng());
        assert_eq!(commitments.threshold(), 2);
        for s in &shares {
            assert!(commitments.verify(s));
        }
    }

    #[test]
    fn commitments_reject_tampered_share() {
        let (shares, commitments) = split(Scalar::new(1), 2, 4, &mut rng());
        let bad = Share {
            index: shares[0].index,
            value: shares[0].value + Scalar::ONE,
        };
        assert!(!commitments.verify(&bad));
    }

    #[test]
    fn public_secret_matches() {
        let secret = Scalar::new(31337);
        let (_, commitments) = split(secret, 2, 3, &mut rng());
        assert_eq!(
            commitments.public_secret(),
            Element::generator().pow(secret)
        );
    }

    #[test]
    fn duplicate_index_rejected() {
        let (shares, _) = split(Scalar::new(5), 2, 3, &mut rng());
        let dup = [shares[0], shares[0]];
        assert_eq!(
            combine(&dup),
            Err(CombineError::DuplicateIndex(shares[0].index))
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(combine(&[]), Err(CombineError::Empty));
    }

    #[test]
    fn threshold_one_is_replication() {
        let secret = Scalar::new(9);
        let (shares, _) = split(secret, 1, 3, &mut rng());
        for s in &shares {
            assert_eq!(s.value, secret);
            assert_eq!(combine(&[*s]).unwrap(), secret);
        }
    }

    #[test]
    #[should_panic(expected = "share index must be non-zero")]
    fn zero_index_panics() {
        ShareIndex::new(0);
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed")]
    fn oversized_threshold_panics() {
        split(Scalar::new(1), 4, 3, &mut rng());
    }
}
