//! Key material newtypes.

use crate::hash::Digest;

/// A 256-bit symmetric key.
///
/// Newtyped so communication keys, pairwise keys, and group keys cannot be
/// interchanged silently (the paper distinguishes all three in §3.5's
/// footnote: pairwise GM↔element keys, a per-domain group key, and the
/// per-association communication key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetricKey([u8; 32]);

impl SymmetricKey {
    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> SymmetricKey {
        SymmetricKey(bytes)
    }

    /// Builds a key from a digest.
    pub fn from_digest(digest: Digest) -> SymmetricKey {
        SymmetricKey(digest.0)
    }

    /// Derives a key from a seed and a domain-separation label.
    pub fn derive(seed: &[u8], label: &[u8]) -> SymmetricKey {
        SymmetricKey(Digest::of_parts(&[b"itdos-key", label, seed]).0)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The per-association communication key (client domain ↔ server domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommunicationKey(pub SymmetricKey);

/// The pairwise key shared between one Group Manager element and one
/// replication domain element (protects key-share distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairwiseKey(pub SymmetricKey);

/// The key one Group Manager element shares with all elements of a
/// replication domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKey(pub SymmetricKey);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let a = SymmetricKey::derive(b"seed", b"l1");
        let b = SymmetricKey::derive(b"seed", b"l1");
        let c = SymmetricKey::derive(b"seed", b"l2");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_trips_bytes() {
        let k = SymmetricKey::from_bytes([7u8; 32]);
        assert_eq!(k.as_bytes(), &[7u8; 32]);
    }

    #[test]
    fn digest_conversion_preserves_bytes() {
        let d = Digest::of(b"x");
        assert_eq!(SymmetricKey::from_digest(d).as_bytes(), d.as_bytes());
    }
}
