//! # itdos-crypto — cryptographic toolkit for the ITDOS reproduction
//!
//! Everything ITDOS needs, implemented from scratch:
//!
//! * [`hash`] — SHA-256 (FIPS 180-4, tested against NIST vectors);
//! * [`hmac`] — HMAC-SHA256 (RFC 2104/4231);
//! * [`mac`] — PBFT-style MAC authenticator vectors;
//! * [`sign`] — Schnorr signatures (stand-in for the paper's RSA \[33\]),
//!   used for the signed-message fault proofs of §3.6;
//! * [`group`] / [`shamir`] / [`dleq`] / [`dprf`] — the §3.5 threshold key
//!   machinery: a verifiable distributed PRF (Naor–Pinkas–Reingold style)
//!   over a toy Schnorr group, with Feldman commitments and Chaum–Pedersen
//!   share-verification proofs;
//! * [`rngshare`] — the distributed commit–reveal coin that (re)initializes
//!   the Group Manager PRNGs, and the derived common-input sequence;
//! * [`symmetric`] — authenticated encryption for communication keys
//!   (stand-in for DES \[12\]);
//! * [`keys`] — key-material newtypes (communication / pairwise / group).
//!
//! **Security caveat:** group parameters are 62 bits so all arithmetic fits
//! in `u128`. The *protocols* are the real constructions; the *parameters*
//! are toys. Do not reuse outside simulation.
//!
//! # Examples
//!
//! Threshold generation of one communication key (the §3.5 flow):
//!
//! ```
//! use itdos_crypto::dprf::{combine, Dprf};
//! use xrand::rngs::SmallRng;
//! use xrand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(0xD9F);
//! // Group Manager domain with f = 1, n = 4 elements.
//! let dprf = Dprf::deal(1, 4, &mut rng);
//!
//! // Each element evaluates its share on the common input...
//! let x = b"connection-17";
//! let shares: Vec<_> = dprf.holders().iter().map(|h| h.evaluate(x)).collect();
//!
//! // ...and the client combines any f+1 verified shares into the key.
//! let key = combine(dprf.verifier(), x, &shares[1..3])?;
//! let same = combine(dprf.verifier(), x, &shares[2..4])?;
//! assert_eq!(key, same);
//! # Ok::<(), itdos_crypto::dprf::CombineError>(())
//! ```

#![warn(missing_docs)]

pub mod ct;
pub mod dleq;
pub mod dprf;
pub mod group;
pub mod hash;
pub mod hmac;
pub mod keys;
pub mod mac;
pub mod rngshare;
pub mod shamir;
pub mod sign;
pub mod symmetric;

pub use hash::Digest;
pub use keys::SymmetricKey;
pub use sign::{Signature, SigningKey, VerifyingKey};
