//! HMAC-SHA256 (RFC 2104).

use crate::hash::{Digest, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use itdos_crypto::hmac::hmac;
///
/// let tag = hmac(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac(key: &[u8], message: &[u8]) -> Digest {
    hmac_parts(key, &[message])
}

/// HMAC over the concatenation of several message parts, avoiding an
/// intermediate allocation.
pub fn hmac_parts(key: &[u8], parts: &[&[u8]]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(Digest::of(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finish()
}

/// Constant-shape tag comparison.
///
/// The simulator is single-threaded and timing-free, but we keep the
/// constant-time idiom so the code reads like the real thing.
pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
    let expect = hmac(key, message);
    crate::ct::ct_eq(expect.as_bytes(), tag.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_data() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_equal_concatenation() {
        assert_eq!(hmac_parts(b"k", &[b"ab", b"cd", b""]), hmac(b"k", b"abcd"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac(b"k", b"m");
        assert!(verify(b"k", b"m", &tag));
        assert!(!verify(b"k", b"m2", &tag));
        assert!(!verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!verify(b"k", b"m", &bad));
    }
}
