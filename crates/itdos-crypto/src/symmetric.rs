//! Authenticated symmetric encryption (encrypt-then-MAC over an HMAC-CTR
//! keystream).
//!
//! Replaces the paper's DES \[12\] for communication-key confidentiality.
//! The keystream block `i` is `HMAC(enc_key, nonce ‖ i)`; the tag is
//! `HMAC(mac_key, nonce ‖ ciphertext)`. Both subkeys are derived from the
//! communication key, so a single 256-bit key protects an association.

use crate::hash::Digest;
use crate::hmac::hmac_parts;
use crate::keys::SymmetricKey;

/// A sealed message: nonce ‖ ciphertext ‖ tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Caller-supplied unique nonce (e.g. connection id ‖ sequence number).
    pub nonce: [u8; 16],
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// Authentication tag over nonce and ciphertext.
    pub tag: Digest,
}

impl Sealed {
    /// Serializes to a flat byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 32 + self.ciphertext.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(self.tag.as_bytes());
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the flat form.
    ///
    /// Returns `None` if `bytes` is shorter than the fixed header.
    pub fn from_bytes(bytes: &[u8]) -> Option<Sealed> {
        if bytes.len() < 48 {
            return None;
        }
        Some(Sealed {
            nonce: bytes[..16].try_into().expect("16 bytes"),
            tag: Digest(bytes[16..48].try_into().expect("32 bytes")),
            ciphertext: bytes[48..].to_vec(),
        })
    }
}

/// Decryption failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The authentication tag did not verify: wrong key or tampering.
    BadTag,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for OpenError {}

fn subkeys(key: &SymmetricKey) -> ([u8; 32], [u8; 32]) {
    let enc = Digest::of_parts(&[b"itdos-enc", key.as_bytes()]).0;
    let mac = Digest::of_parts(&[b"itdos-mac", key.as_bytes()]).0;
    (enc, mac)
}

fn keystream_xor(enc_key: &[u8; 32], nonce: &[u8; 16], data: &mut [u8]) {
    for (block_index, chunk) in data.chunks_mut(32).enumerate() {
        let counter = (block_index as u64).to_be_bytes();
        let block = hmac_parts(enc_key, &[nonce, &counter]);
        for (byte, pad) in chunk.iter_mut().zip(block.as_bytes()) {
            *byte ^= pad;
        }
    }
}

/// Encrypts and authenticates `plaintext` under `key` with a caller-chosen
/// unique `nonce`.
///
/// # Examples
///
/// ```
/// use itdos_crypto::keys::SymmetricKey;
/// use itdos_crypto::symmetric::{open, seal};
///
/// let key = SymmetricKey::derive(b"assoc", b"demo");
/// let sealed = seal(&key, [1u8; 16], b"secret request");
/// assert_eq!(open(&key, &sealed).unwrap(), b"secret request");
/// ```
pub fn seal(key: &SymmetricKey, nonce: [u8; 16], plaintext: &[u8]) -> Sealed {
    let (enc_key, mac_key) = subkeys(key);
    let mut ciphertext = plaintext.to_vec();
    keystream_xor(&enc_key, &nonce, &mut ciphertext);
    let tag = hmac_parts(&mac_key, &[&nonce, &ciphertext]);
    Sealed {
        nonce,
        ciphertext,
        tag,
    }
}

/// Verifies and decrypts a sealed message.
///
/// # Errors
///
/// [`OpenError::BadTag`] if the key is wrong or the message was tampered
/// with.
pub fn open(key: &SymmetricKey, sealed: &Sealed) -> Result<Vec<u8>, OpenError> {
    let (enc_key, mac_key) = subkeys(key);
    let expect = hmac_parts(&mac_key, &[&sealed.nonce, &sealed.ciphertext]);
    let mut diff = 0u8;
    for (a, b) in expect.as_bytes().iter().zip(sealed.tag.as_bytes()) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(OpenError::BadTag);
    }
    let mut plaintext = sealed.ciphertext.clone();
    keystream_xor(&enc_key, &sealed.nonce, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &[u8]) -> SymmetricKey {
        SymmetricKey::derive(tag, b"test")
    }

    #[test]
    fn round_trip() {
        let k = key(b"k");
        for len in [0usize, 1, 31, 32, 33, 64, 1000] {
            let msg = vec![0x5Au8; len];
            let sealed = seal(&k, [9u8; 16], &msg);
            assert_eq!(open(&k, &sealed).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(b"a"), [0u8; 16], b"msg");
        assert_eq!(open(&key(b"b"), &sealed), Err(OpenError::BadTag));
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key(b"a");
        let mut sealed = seal(&k, [0u8; 16], b"msg");
        sealed.ciphertext[0] ^= 1;
        assert_eq!(open(&k, &sealed), Err(OpenError::BadTag));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let k = key(b"a");
        let mut sealed = seal(&k, [0u8; 16], b"msg");
        sealed.nonce[0] ^= 1;
        assert_eq!(open(&k, &sealed), Err(OpenError::BadTag));
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let k = key(b"a");
        let s1 = seal(&k, [1u8; 16], b"same message");
        let s2 = seal(&k, [2u8; 16], b"same message");
        assert_ne!(s1.ciphertext, s2.ciphertext);
    }

    #[test]
    fn flat_bytes_round_trip() {
        let k = key(b"a");
        let sealed = seal(&k, [3u8; 16], b"payload");
        let parsed = Sealed::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(parsed, sealed);
        assert_eq!(open(&k, &parsed).unwrap(), b"payload");
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(Sealed::from_bytes(&[0u8; 47]), None);
        assert!(Sealed::from_bytes(&[0u8; 48]).is_some());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let k = key(b"a");
        let sealed = seal(&k, [0u8; 16], b"super secret payload");
        assert_ne!(&sealed.ciphertext[..], b"super secret payload");
    }
}
