//! Constant-time comparison for secret material.
//!
//! Comparing a MAC, digest, or key with `==` short-circuits at the first
//! differing byte, so the comparison time reveals how long a forged prefix
//! matched — a classic remote timing oracle against authenticators. Every
//! comparison of secret-derived bytes in this crate goes through [`ct_eq`],
//! which touches every byte regardless of where the buffers differ. The
//! workspace linter (`itdos-lint`, rule `ct-crypto`) rejects `==`/`!=` on
//! MAC/digest/key material so new call sites cannot regress.

/// Compares two byte slices in time independent of their contents.
///
/// Accumulates the XOR of every byte pair and checks the accumulator once
/// at the end. Only the *lengths* influence timing, and lengths of MACs,
/// digests, and keys are public constants here.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_buffers_compare_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"itdos", b"itdos"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn any_single_byte_difference_is_detected() {
        let base = [0xA5u8; 16];
        for i in 0..16 {
            for bit in 0..8 {
                let mut other = base;
                other[i] ^= 1 << bit;
                assert!(!ct_eq(&base, &other));
            }
        }
    }

    #[test]
    fn length_mismatch_is_unequal() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abcd", b"abc"));
        assert!(!ct_eq(b"", b"x"));
    }
}
