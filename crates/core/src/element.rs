//! The server replication domain element.
//!
//! One simulated process hosting the full Figure 2 stack: the
//! Castro–Liskov transport (a PBFT replica whose state machine is the
//! ITDOS message queue), the SMIOP layer (per-connection keys, sealing,
//! signing), a per-connection voter bank, the IT-ORB with its servants,
//! and the two-logical-threads execution model — the replica delivery
//! path feeds decided messages to the ORB path, which may suspend on
//! nested invocations (§3.1).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use itdos_bft::auth::{AuthContext, Envelope, Peer};
use itdos_bft::config::SeqNo;
use itdos_bft::message::Message;
use itdos_bft::queue::{ElementId, QueueMachine, QueueOp};
use itdos_bft::replica::{Output, Replica};
use itdos_crypto::hash::Digest;
use itdos_crypto::keys::CommunicationKey;
use itdos_crypto::sign::{SigningKey, VerifyingKey};
use itdos_crypto::symmetric::{open, seal, Sealed};
use itdos_giop::giop::{GiopMessage, ReplyBody, ReplyMessage, RequestMessage};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_groupmgr::manager::ConnectionId;
use itdos_groupmgr::membership::DomainId;
use itdos_obs::{LabelValue, Obs};
use itdos_orb::object::ObjectKey;
use itdos_orb::orb::{Dispatch, Orb};
use itdos_orb::servant::{NestedCall, Servant, ServantException};
use itdos_vote::collator::{Accept, Collator};
use itdos_vote::detector::SignedReply;
use itdos_vote::vote::SenderId;
use simnet::{Context, NodeId, Process, Timer};
use xbytes::Bytes;

use crate::codes::{element_code, pack_timer, unpack_timer, TimerTag, ELEMENT_CODE_BASE};
use crate::fabric::Fabric;
use crate::fault::Behavior;
use crate::outbound::Outbound;
use crate::wire::{
    AdmitNoticeMsg, ConnectionMeta, CoreMsg, DirectReplyMsg, FrameKind, GmOp, SmiopFrame,
};
use itdos_vote::folding::{
    folded_comparator, reply_to_value, request_to_value, value_to_reply, value_to_request,
};

/// Static configuration of one element.
#[derive(Debug, Clone)]
pub struct ElementConfig {
    /// The element's domain.
    pub domain: DomainId,
    /// Its replica index within the domain.
    pub index: usize,
    /// Its global element id.
    pub element: SenderId,
    /// The platform it "runs on" (endianness + float lane).
    pub platform: PlatformProfile,
    /// Its (mis)behaviour.
    pub behavior: Behavior,
    /// Queue-consumption acknowledgements are sent every this many
    /// delivered messages.
    pub ack_interval: u64,
    /// Capacity of the replicated message queue in payload bytes (§3.1:
    /// "the size of this message queue is limited by the size of the
    /// contiguous block of memory").
    pub queue_capacity: usize,
}

/// The vote-sender id used for an endpoint code.
pub fn vote_sender(code: u64) -> SenderId {
    if code >= ELEMENT_CODE_BASE {
        SenderId((code - ELEMENT_CODE_BASE) as u32)
    } else {
        SenderId(code as u32)
    }
}

struct ConnState {
    meta: ConnectionMeta,
    key: CommunicationKey,
    next_request_id: u64,
}

/// Rounds per (connection, frame kind) a voter bank retains. Pipelined
/// requests interleave their frames in the total order, so each request id
/// keeps its own quorum state; the bound keeps a byzantine sender from
/// growing the bank without limit, and eviction is driven purely by the
/// ordered delivery stream so every correct element evicts identically.
const VOTER_ROUND_WINDOW: usize = 32;

struct VoterEntry {
    collator: Collator,
    frames: BTreeMap<SenderId, SignedReply>,
}

struct VoterBank {
    rounds: BTreeMap<u64, VoterEntry>,
    /// Highest evicted request id; late frames at or below it are dropped.
    floor: u64,
}

struct Current {
    meta: ConnectionMeta,
    request_id: u64,
}

enum NestedPhase {
    AwaitingConnection {
        target: DomainId,
        call: NestedCall,
    },
    AwaitingReply {
        connection: ConnectionId,
        request_id: u64,
    },
}

enum DelayedSend {
    Direct { node: NodeId, msg: DirectReplyMsg },
    Domain { target: DomainId, frame: SmiopFrame },
}

/// A server replication domain element (one simnet process).
pub struct ServerElement {
    fabric: Fabric,
    cfg: ElementConfig,
    replica: Replica<QueueMachine>,
    bft_auth: AuthContext,
    orb: Orb,
    signing: SigningKey,
    sequence: u64,
    conns: BTreeMap<ConnectionId, ConnState>,
    shares: crate::keying::ShareBank,
    stalled: BTreeMap<ConnectionId, VecDeque<SmiopFrame>>,
    voters: BTreeMap<(ConnectionId, u8), VoterBank>,
    outbound: BTreeMap<DomainId, Outbound>,
    inbox: VecDeque<(ConnectionMeta, RequestMessage)>,
    current: Option<Current>,
    nested: Option<NestedPhase>,
    processed: u64,
    acked_index: u64,
    notices: BTreeMap<SenderId, BTreeSet<u64>>,
    /// Admission notices by (admitted, epoch) → attesting GM codes.
    admit_notices: BTreeMap<(SenderId, u64), BTreeSet<u64>>,
    /// Admissions already applied (threshold reached once).
    admissions_applied: BTreeSet<(SenderId, u64)>,
    /// True while this element is a fresh replacement catching up via
    /// state transfer; cleared when the transfer completes.
    onboarding: bool,
    /// Slot incumbent whose place this element should request from the GM
    /// on start (replica replacement).
    pending_admit: Option<SenderId>,
    reported: BTreeSet<SenderId>,
    expel_submitted: BTreeSet<SenderId>,
    delayed: Vec<Option<DelayedSend>>,
    obs: Obs,
    /// Requests this element's ORB executed (observability).
    pub requests_handled: u64,
    /// Replies this element emitted.
    pub replies_sent: u64,
}

impl std::fmt::Debug for ServerElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerElement")
            .field("element", &self.cfg.element)
            .field("domain", &self.cfg.domain)
            .field("connections", &self.conns.len())
            .field("handled", &self.requests_handled)
            .finish()
    }
}

impl ServerElement {
    /// Creates an element hosting the given servants.
    pub fn new(
        fabric: Fabric,
        cfg: ElementConfig,
        servants: Vec<(ObjectKey, Box<dyn Servant>)>,
    ) -> ServerElement {
        let spec = fabric.domain(cfg.domain);
        let members: Vec<ElementId> = spec.elements.iter().map(|e| ElementId(e.0)).collect();
        let queue = QueueMachine::new(cfg.queue_capacity, members);
        let replica = Replica::new(
            spec.config.clone(),
            itdos_bft::config::ReplicaId(cfg.index as u32),
            queue,
        );
        let bft_auth = fabric.bft_auth_replica(cfg.domain, cfg.index);
        let mut orb = Orb::new(fabric.repo.clone(), cfg.platform);
        for (key, servant) in servants {
            orb.activate(key, servant);
        }
        let signing = fabric.signing_key(cfg.element);
        let my_code = element_code(cfg.element);
        let mut outbound = BTreeMap::new();
        outbound.insert(
            fabric.gm_domain,
            Outbound::new(&fabric, fabric.gm_domain, my_code),
        );
        outbound.insert(cfg.domain, Outbound::new(&fabric, cfg.domain, my_code));
        ServerElement {
            fabric,
            cfg,
            replica,
            bft_auth,
            orb,
            signing,
            sequence: 0,
            conns: BTreeMap::new(),
            shares: crate::keying::ShareBank::new(my_code),
            stalled: BTreeMap::new(),
            voters: BTreeMap::new(),
            outbound,
            inbox: VecDeque::new(),
            current: None,
            nested: None,
            processed: 0,
            acked_index: 0,
            notices: BTreeMap::new(),
            admit_notices: BTreeMap::new(),
            admissions_applied: BTreeSet::new(),
            onboarding: false,
            pending_admit: None,
            reported: BTreeSet::new(),
            expel_submitted: BTreeSet::new(),
            delayed: Vec::new(),
            obs: Obs::disabled(),
            requests_handled: 0,
            replies_sent: 0,
        }
    }

    /// Installs an instrumentation sink on this element, its replica, and
    /// its key-share bank (new per-connection voters inherit it).
    pub fn set_obs(&mut self, obs: Obs) {
        self.replica.set_obs(obs.clone());
        self.shares.set_obs(obs.clone());
        self.obs = obs;
    }

    fn obs_label(&self) -> [itdos_obs::Label; 1] {
        [("element", LabelValue::U64(u64::from(self.cfg.element.0)))]
    }

    /// This element's global id.
    pub fn element(&self) -> SenderId {
        self.cfg.element
    }

    /// The wrapped replica (tests / benches).
    pub fn replica(&self) -> &Replica<QueueMachine> {
        &self.replica
    }

    /// Mutable replica access (fault injection / proactive recovery in
    /// tests and experiments).
    pub fn replica_mut(&mut self) -> &mut Replica<QueueMachine> {
        &mut self.replica
    }

    /// Established connections count (tests).
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Overrides this element's (mis)behaviour at runtime — drills use it
    /// to script a fresh intrusion after a replacement restored the
    /// domain. Callers injecting a fault should also record it in the
    /// simulator's ground-truth fault ledger.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.cfg.behavior = behavior;
    }

    /// Marks this element as a fresh replacement that must onboard via
    /// state transfer before participating. The replica enters its
    /// quiescent joining mode on process start (so the state-fetch sends
    /// get a context), and normal operation resumes once a trusted
    /// checkpoint is installed.
    pub fn begin_onboarding(&mut self) {
        self.onboarding = true;
    }

    /// True while the element is still catching up (tests).
    pub fn is_onboarding(&self) -> bool {
        self.onboarding
    }

    /// Queues a GM admission request: on process start the element asks
    /// the Group Manager group (as an ordinary BFT client) to admit it
    /// into `replaced`'s roster slot.
    pub fn request_admission(&mut self, replaced: SenderId) {
        self.pending_admit = Some(replaced);
    }

    /// The element's endpoint code.
    fn my_code(&self) -> u64 {
        element_code(self.cfg.element)
    }

    fn next_sequence(&mut self) -> u64 {
        self.sequence += 1;
        self.sequence
    }

    // --------------------------------------------------------- bft plumbing

    fn send_bft(
        &self,
        ctx: &mut Context<'_>,
        node: NodeId,
        envelope: Envelope,
        label: &'static str,
    ) {
        let msg = CoreMsg::Bft {
            domain: self.cfg.domain,
            envelope: envelope.encode(),
        };
        ctx.send_labeled(node, Bytes::from(msg.encode()), label);
    }

    fn envelope_for(&self, message: &Message) -> Envelope {
        let payload = message.encode();
        match message {
            Message::ViewChange(_)
            | Message::NewView(_)
            | Message::Checkpoint(_)
            | Message::StateData(_) => self.bft_auth.signed_envelope(payload),
            _ => self.bft_auth.mac_envelope(payload),
        }
    }

    fn drain_replica(&mut self, ctx: &mut Context<'_>) {
        for output in self.replica.take_outputs() {
            match output {
                Output::ToReplica(to, message) => {
                    let node = self.fabric.domain(self.cfg.domain).nodes[to.0 as usize];
                    let envelope = self.envelope_for(&message);
                    self.send_bft(ctx, node, envelope, message.label());
                }
                Output::ToAllReplicas(message) => {
                    let envelope = self.envelope_for(&message);
                    let msg = CoreMsg::Bft {
                        domain: self.cfg.domain,
                        envelope: envelope.encode(),
                    };
                    ctx.multicast_labeled(
                        self.fabric.domain(self.cfg.domain).mcast,
                        Bytes::from(msg.encode()),
                        message.label(),
                    );
                }
                Output::ToClient(client, message) => {
                    if let Some(node) = self.fabric.node_of(client.0) {
                        let envelope = self
                            .bft_auth
                            .mac_envelope_for_client(client, message.encode());
                        self.send_bft(ctx, node, envelope, message.label());
                    }
                }
                Output::Executed {
                    seq,
                    request,
                    result,
                } => {
                    self.on_executed(ctx, seq, &request.operation, &result);
                }
                Output::StartViewTimer { epoch, attempt } => {
                    let timeout = self
                        .fabric
                        .domain(self.cfg.domain)
                        .config
                        .view_timeout
                        .saturating_mul(1 << attempt.min(16));
                    ctx.set_timer(timeout, pack_timer(TimerTag::View, epoch));
                }
                Output::StateTransferred(seq) => {
                    if self.onboarding {
                        self.onboarding = false;
                        self.obs.span_end(
                            "replica.onboarding_us",
                            u64::from(self.cfg.element.0),
                            &self.obs_label(),
                        );
                        self.obs.event(
                            "element.onboarded",
                            &[
                                ("element", LabelValue::U64(u64::from(self.cfg.element.0))),
                                ("seq", LabelValue::U64(seq.0)),
                            ],
                        );
                    }
                }
                Output::EnteredView(_) => {}
            }
        }
    }

    // ----------------------------------------------------- ordered delivery

    fn on_executed(&mut self, ctx: &mut Context<'_>, _seq: SeqNo, op_bytes: &[u8], result: &[u8]) {
        let Ok(op) = QueueOp::decode(op_bytes) else {
            return;
        };
        match op {
            QueueOp::Deliver(frame_bytes) => {
                if result.first() == Some(&1) {
                    // the bounded queue refused this message (§3.1): it was
                    // never enqueued, so it must not reach the ORB either —
                    // identically on every element
                    self.check_laggards(ctx);
                    return;
                }
                self.processed += 1;
                if let Ok(frame) = SmiopFrame::decode(&frame_bytes) {
                    self.process_frame(ctx, frame);
                }
                self.maybe_ack(ctx);
                self.check_laggards(ctx);
            }
            QueueOp::Ack { .. } | QueueOp::Expel(_) | QueueOp::Join(_) => {}
        }
    }

    fn maybe_ack(&mut self, ctx: &mut Context<'_>) {
        let head = self.replica.app().next_index();
        if head.saturating_sub(self.acked_index) >= self.cfg.ack_interval {
            self.acked_index = head;
            let op = QueueOp::Ack {
                element: ElementId(self.cfg.element.0),
                up_to: head,
            };
            let own = self.cfg.domain;
            self.submit_op(ctx, own, op.encode());
        }
    }

    fn check_laggards(&mut self, ctx: &mut Context<'_>) {
        let window = self.cfg.ack_interval * 4;
        let laggards = self.replica.app().laggards(window);
        for laggard in laggards {
            let sender = SenderId(laggard.0);
            if sender != self.cfg.element && self.reported.insert(sender) {
                self.accuse(ctx, sender);
            }
        }
    }

    fn accuse(&mut self, ctx: &mut Context<'_>, accused: SenderId) {
        self.obs.incr("element.accusations", &self.obs_label());
        self.obs.event(
            "element.accuse",
            &[
                ("accuser", LabelValue::U64(u64::from(self.cfg.element.0))),
                ("accused", LabelValue::U64(u64::from(accused.0))),
            ],
        );
        let op = GmOp::ChangeVote {
            accuser: self.cfg.element,
            accused,
        };
        let gm = self.fabric.gm_domain;
        self.submit_op(ctx, gm, op.encode());
    }

    fn submit_op(&mut self, ctx: &mut Context<'_>, target: DomainId, op: Vec<u8>) {
        let fabric = self.fabric.clone();
        let code = self.my_code();
        let outbound = self
            .outbound
            .entry(target)
            .or_insert_with(|| Outbound::new(&fabric, target, code));
        outbound.submit(ctx, &fabric, op);
    }

    // ------------------------------------------------------------ SMIOP rx

    fn process_frame(&mut self, ctx: &mut Context<'_>, frame: SmiopFrame) {
        let Some(conn) = self.conns.get(&frame.connection) else {
            self.stall(frame);
            return;
        };
        if conn.meta.epoch != frame.epoch {
            if frame.epoch > conn.meta.epoch {
                self.stall(frame);
            }
            // older epoch: sender was keyed out — drop (§3.5 expulsion)
            return;
        }
        let key = conn.key;
        let meta = conn.meta;
        let Some(sealed) = Sealed::from_bytes(&frame.sealed) else {
            return;
        };
        let Ok(giop_bytes) = open(&key.0, &sealed) else {
            return;
        };
        let sender = vote_sender(frame.sender_code);
        let signed = SignedReply {
            sender,
            sequence: frame.sequence,
            frame: giop_bytes.clone(),
            signature: frame.signature,
        };
        let verifying = self.fabric.verifying_key_code(frame.sender_code);
        if !signed.verify(&verifying) {
            return;
        }
        let Ok(message) = self.orb.unmarshal(&giop_bytes) else {
            return;
        };
        match (frame.kind, message) {
            (FrameKind::Request, GiopMessage::Request(request)) => {
                if request.request_id != frame.request_id {
                    return;
                }
                let value = request_to_value(&request);
                self.offer(
                    ctx,
                    meta,
                    FrameKind::Request,
                    frame.request_id,
                    sender,
                    value,
                    signed,
                    &request.interface,
                );
            }
            (FrameKind::Reply, GiopMessage::Reply(reply)) => {
                if reply.request_id != frame.request_id {
                    return;
                }
                let value = reply_to_value(&reply);
                let interface = reply.interface.clone();
                self.offer(
                    ctx,
                    meta,
                    FrameKind::Reply,
                    frame.request_id,
                    sender,
                    value,
                    signed,
                    &interface,
                );
            }
            _ => {}
        }
    }

    fn stall(&mut self, frame: SmiopFrame) {
        let queue = self.stalled.entry(frame.connection).or_default();
        if queue.len() < 64 {
            queue.push_back(frame);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn offer(
        &mut self,
        ctx: &mut Context<'_>,
        meta: ConnectionMeta,
        kind: FrameKind,
        request_id: u64,
        sender: SenderId,
        value: Value,
        signed: SignedReply,
        interface: &str,
    ) {
        let kind_tag = match kind {
            FrameKind::Request => 0u8,
            FrameKind::Reply => 1u8,
        };
        let key = (meta.connection, kind_tag);
        let thresholds = self.fabric.sender_thresholds(&meta, kind);
        let comparator =
            folded_comparator(self.fabric.comparators.for_interface(interface).clone());
        let obs = self.obs.clone();
        let accept = {
            let bank = self.voters.entry(key).or_insert_with(|| VoterBank {
                rounds: BTreeMap::new(),
                floor: 0,
            });
            if request_id <= bank.floor {
                return; // round already evicted (§3.6 GC)
            }
            let entry = bank.rounds.entry(request_id).or_insert_with(|| {
                let mut collator = Collator::new(thresholds, comparator.clone());
                collator.set_obs(obs.clone());
                collator.begin(request_id);
                VoterEntry {
                    collator,
                    frames: BTreeMap::new(),
                }
            });
            entry.frames.insert(sender, signed);
            let accept = entry.collator.offer(request_id, sender, value);
            while bank.rounds.len() > VOTER_ROUND_WINDOW {
                let oldest = *bank.rounds.keys().next().expect("non-empty");
                bank.rounds.remove(&oldest);
                bank.floor = bank.floor.max(oldest);
            }
            accept
        };
        match accept {
            Accept::Decided(decision) => {
                let suspects = decision.dissenters.clone();
                self.on_decided(ctx, meta, kind, request_id, decision.value);
                self.report_suspects(ctx, &suspects);
            }
            Accept::Late { suspect: Some(s) } => {
                self.report_suspects(ctx, &[s]);
            }
            _ => {}
        }
    }

    fn report_suspects(&mut self, ctx: &mut Context<'_>, suspects: &[SenderId]) {
        for &s in suspects {
            // only accuse real domain elements (never singleton codes) and
            // only once per element
            if self.fabric.domain_of_element(s).is_some()
                && s != self.cfg.element
                && self.reported.insert(s)
            {
                self.accuse(ctx, s);
            }
        }
    }

    fn on_decided(
        &mut self,
        ctx: &mut Context<'_>,
        meta: ConnectionMeta,
        kind: FrameKind,
        request_id: u64,
        value: Value,
    ) {
        match kind {
            FrameKind::Request => {
                if let Some(request) = value_to_request(request_id, &value) {
                    self.inbox.push_back((meta, request));
                    self.try_process(ctx);
                }
            }
            FrameKind::Reply => {
                let awaiting = matches!(
                    self.nested,
                    Some(NestedPhase::AwaitingReply {
                        connection,
                        request_id: rid,
                    }) if connection == meta.connection && rid == request_id
                );
                if awaiting {
                    self.nested = None;
                    if let Some(reply) = value_to_reply(request_id, &value) {
                        let result = match reply.body {
                            ReplyBody::Result(v) => Ok(v),
                            ReplyBody::UserException { name } => Err(ServantException::new(name)),
                            ReplyBody::SystemException { minor } => {
                                Err(ServantException::new(format!("SYSTEM:{minor}")))
                            }
                        };
                        let dispatch = self.orb.handle_nested_reply(result);
                        self.continue_dispatch(ctx, dispatch);
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------- ORB thread

    fn try_process(&mut self, ctx: &mut Context<'_>) {
        while self.current.is_none() && !self.orb.is_suspended() {
            let Some((meta, request)) = self.inbox.pop_front() else {
                return;
            };
            self.current = Some(Current {
                meta,
                request_id: request.request_id,
            });
            self.requests_handled += 1;
            self.obs.incr("element.requests", &self.obs_label());
            let dispatch = self.orb.handle_request(&request);
            self.continue_dispatch(ctx, dispatch);
        }
    }

    fn continue_dispatch(&mut self, ctx: &mut Context<'_>, dispatch: Dispatch) {
        match dispatch {
            Dispatch::Reply(reply) => {
                let current = self.current.take().expect("reply concludes a request");
                self.emit_reply(ctx, current, reply);
                self.try_process(ctx);
            }
            Dispatch::Suspended(call) => {
                let target = DomainId(call.target.domain.0);
                let existing = self.conns.iter().find(|(_, c)| {
                    c.meta.server_domain == target && c.meta.client_domain == Some(self.cfg.domain)
                });
                match existing {
                    Some((&conn_id, _)) => self.send_nested_request(ctx, conn_id, call),
                    None => {
                        let op = GmOp::Open {
                            client: itdos_groupmgr::membership::Endpoint::Element(self.cfg.element),
                            client_domain: Some(self.cfg.domain),
                            target,
                        };
                        self.nested = Some(NestedPhase::AwaitingConnection { target, call });
                        let gm = self.fabric.gm_domain;
                        self.submit_op(ctx, gm, op.encode());
                    }
                }
            }
        }
    }

    fn send_nested_request(
        &mut self,
        ctx: &mut Context<'_>,
        conn_id: ConnectionId,
        call: NestedCall,
    ) {
        let conn = self.conns.get_mut(&conn_id).expect("connection exists");
        let request_id = conn.next_request_id;
        conn.next_request_id += 1;
        let meta = conn.meta;
        let key = conn.key;
        let request = RequestMessage {
            request_id,
            response_expected: true,
            object_key: call.target.key.0.clone(),
            interface: call.target.interface.clone(),
            operation: call.operation.clone(),
            args: call.args.clone(),
        };
        let Ok(giop_bytes) = self.orb.marshal(&GiopMessage::Request(request)) else {
            // a servant asked for an un-marshallable call: surface as a
            // nested system exception so the suspended request concludes
            let dispatch = self
                .orb
                .handle_nested_reply(Err(ServantException::new("SYSTEM:marshal")));
            self.continue_dispatch(ctx, dispatch);
            return;
        };
        let sequence = self.next_sequence();
        let signature = SignedReply::sign(
            &self.signing,
            self.cfg.element,
            sequence,
            giop_bytes.clone(),
        )
        .signature;
        let nonce = self.nonce(meta.connection, meta.epoch, request_id, sequence);
        let sealed = seal(&key.0, nonce, &giop_bytes);
        let frame = SmiopFrame {
            connection: meta.connection,
            epoch: meta.epoch,
            kind: FrameKind::Request,
            sender_code: self.my_code(),
            request_id,
            sequence,
            sealed: sealed.to_bytes(),
            signature,
        };
        self.nested = Some(NestedPhase::AwaitingReply {
            connection: conn_id,
            request_id,
        });
        let target = meta.server_domain;
        self.submit_op(ctx, target, QueueOp::Deliver(frame.encode()).encode());
    }

    fn nonce(&self, conn: ConnectionId, epoch: u32, request_id: u64, sequence: u64) -> [u8; 16] {
        let d = Digest::of_parts(&[
            b"itdos-nonce",
            &self.my_code().to_le_bytes(),
            &conn.0.to_le_bytes(),
            &epoch.to_le_bytes(),
            &request_id.to_le_bytes(),
            &sequence.to_le_bytes(),
        ]);
        d.0[..16].try_into().expect("16 bytes")
    }

    fn emit_reply(&mut self, ctx: &mut Context<'_>, current: Current, mut reply: ReplyMessage) {
        if self.cfg.behavior.is_silent() {
            return;
        }
        if let ReplyBody::Result(value) = &reply.body {
            if let Some(corrupted) = self.cfg.behavior.corrupt(current.request_id, value) {
                reply.body = ReplyBody::Result(corrupted);
            }
        }
        let Some(conn) = self.conns.get(&current.meta.connection) else {
            return;
        };
        let meta = conn.meta;
        let key = conn.key;
        let Ok(giop_bytes) = self.orb.marshal(&GiopMessage::Reply(reply)) else {
            return;
        };
        let sequence = self.next_sequence();
        let signature = SignedReply::sign(
            &self.signing,
            self.cfg.element,
            sequence,
            giop_bytes.clone(),
        )
        .signature;
        let nonce = self.nonce(meta.connection, meta.epoch, current.request_id, sequence);
        let sealed = seal(&key.0, nonce, &giop_bytes);
        self.replies_sent += 1;
        self.obs.incr("element.replies", &self.obs_label());
        let send = if let Some(client_domain) = meta.client_domain {
            DelayedSend::Domain {
                target: client_domain,
                frame: SmiopFrame {
                    connection: meta.connection,
                    epoch: meta.epoch,
                    kind: FrameKind::Reply,
                    sender_code: self.my_code(),
                    request_id: current.request_id,
                    sequence,
                    sealed: sealed.to_bytes(),
                    signature,
                },
            }
        } else {
            let Some(node) = self.fabric.node_of(meta.client_code) else {
                return;
            };
            DelayedSend::Direct {
                node,
                msg: DirectReplyMsg {
                    connection: meta.connection,
                    epoch: meta.epoch,
                    sender: self.cfg.element,
                    sequence,
                    sealed: sealed.to_bytes(),
                    signature,
                },
            }
        };
        match self.cfg.behavior.delay() {
            Some(delay) => {
                let slot = self.delayed.len() as u64;
                self.delayed.push(Some(send));
                ctx.set_timer(delay, pack_timer(TimerTag::DelayedSend, slot));
            }
            None => self.dispatch_send(ctx, send),
        }
    }

    fn dispatch_send(&mut self, ctx: &mut Context<'_>, send: DelayedSend) {
        match send {
            DelayedSend::Direct { node, msg } => {
                ctx.send_labeled(
                    node,
                    Bytes::from(CoreMsg::DirectReply(msg).encode()),
                    "smiop-reply",
                );
            }
            DelayedSend::Domain { target, frame } => {
                self.submit_op(ctx, target, QueueOp::Deliver(frame.encode()).encode());
            }
        }
    }

    // ------------------------------------------------------------- keying

    fn handle_key_share(&mut self, ctx: &mut Context<'_>, msg: crate::wire::KeyShareMsg) {
        let Some((meta, key)) = self.shares.offer(&self.fabric, &msg) else {
            return;
        };
        let is_new_or_newer = self
            .conns
            .get(&meta.connection)
            .map_or(true, |c| meta.epoch >= c.meta.epoch);
        if !is_new_or_newer {
            return;
        }
        let next_request_id = self
            .conns
            .get(&meta.connection)
            .map(|c| c.next_request_id)
            .unwrap_or(1);
        self.conns.insert(
            meta.connection,
            ConnState {
                meta,
                key,
                next_request_id,
            },
        );
        // retry frames that arrived before the key
        if let Some(mut frames) = self.stalled.remove(&meta.connection) {
            while let Some(frame) = frames.pop_front() {
                self.process_frame(ctx, frame);
            }
        }
        // fire a nested call waiting on this connection
        if let Some(NestedPhase::AwaitingConnection { target, .. }) = &self.nested {
            if *target == meta.server_domain && meta.client_domain == Some(self.cfg.domain) {
                let Some(NestedPhase::AwaitingConnection { call, .. }) = self.nested.take() else {
                    unreachable!("matched above");
                };
                self.send_nested_request(ctx, meta.connection, call);
            }
        }
    }

    fn handle_notice(&mut self, ctx: &mut Context<'_>, msg: crate::wire::NoticeMsg) {
        let pairwise = self.fabric.pairwise(msg.gm_code, self.my_code());
        let Some(sealed) = Sealed::from_bytes(&msg.sealed) else {
            return;
        };
        let Ok(plain) = open(&pairwise, &sealed) else {
            return;
        };
        let expect = notice_plaintext(msg.domain, msg.expelled);
        if plain != expect {
            return;
        }
        let votes = self.notices.entry(msg.expelled).or_default();
        votes.insert(msg.gm_code);
        let gm_f = self.fabric.domain(self.fabric.gm_domain).f;
        if votes.len() > gm_f
            && msg.domain == self.cfg.domain
            && self.expel_submitted.insert(msg.expelled)
        {
            // unblock queue GC: the expelled element no longer gates acks
            self.obs.incr("element.expels_applied", &self.obs_label());
            self.obs.event(
                "element.expel_applied",
                &[
                    ("element", LabelValue::U64(u64::from(self.cfg.element.0))),
                    ("expelled", LabelValue::U64(u64::from(msg.expelled.0))),
                ],
            );
            let op = QueueOp::Expel(ElementId(msg.expelled.0));
            let own = self.cfg.domain;
            self.submit_op(ctx, own, op.encode());
        }
    }

    fn handle_admit_notice(&mut self, ctx: &mut Context<'_>, msg: AdmitNoticeMsg) {
        let pairwise = self.fabric.pairwise(msg.gm_code, self.my_code());
        let Some(sealed) = Sealed::from_bytes(&msg.sealed) else {
            return;
        };
        let Ok(plain) = open(&pairwise, &sealed) else {
            return;
        };
        let expect = admit_notice_plaintext(
            msg.domain,
            msg.admitted,
            msg.replaced,
            msg.slot,
            msg.node,
            msg.epoch,
            &msg.verifying_key,
        );
        if plain != expect {
            return;
        }
        let votes = self
            .admit_notices
            .entry((msg.admitted, msg.epoch))
            .or_default();
        votes.insert(msg.gm_code);
        let gm_f = self.fabric.domain(self.fabric.gm_domain).f;
        if votes.len() > gm_f && self.admissions_applied.insert((msg.admitted, msg.epoch)) {
            // f_gm+1 distinct GM elements vouch: at least one is correct,
            // so the GM group really ordered this admission — adopt the
            // new roster (a no-op on the joiner itself, whose fabric was
            // built post-admission)
            self.fabric.apply_admission(
                msg.domain,
                msg.admitted,
                msg.replaced,
                msg.slot as usize,
                NodeId::from_raw(msg.node as u32),
            );
            self.obs
                .incr("element.admissions_applied", &self.obs_label());
            self.obs.event(
                "element.admission_applied",
                &[
                    ("element", LabelValue::U64(u64::from(self.cfg.element.0))),
                    ("admitted", LabelValue::U64(u64::from(msg.admitted.0))),
                    ("replaced", LabelValue::U64(u64::from(msg.replaced.0))),
                    ("epoch", LabelValue::U64(msg.epoch)),
                ],
            );
            if msg.domain == self.cfg.domain {
                // announce the joiner to our own ordered stream; the Join
                // is idempotent in the queue machine and forces a barrier
                // checkpoint at its sequence number, which the joiner's
                // state transfer latches onto
                let op = QueueOp::Join(ElementId(msg.admitted.0));
                let own = self.cfg.domain;
                self.submit_op(ctx, own, op.encode());
            }
        }
    }
}

/// Canonical plaintext of an expulsion notice (sealed pairwise per GM
/// element → recipient).
pub fn notice_plaintext(domain: DomainId, expelled: SenderId) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(b"expel");
    out.extend_from_slice(&domain.0.to_le_bytes());
    out.extend_from_slice(&expelled.0.to_le_bytes());
    out
}

/// Canonical plaintext of an admission notice (sealed pairwise per GM
/// element → recipient). Binds every roster-relevant field so a byzantine
/// GM element cannot splice values between admissions.
pub fn admit_notice_plaintext(
    domain: DomainId,
    admitted: SenderId,
    replaced: SenderId,
    slot: u32,
    node: u64,
    epoch: u64,
    verifying_key: &VerifyingKey,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(b"admit");
    out.extend_from_slice(&domain.0.to_le_bytes());
    out.extend_from_slice(&admitted.0.to_le_bytes());
    out.extend_from_slice(&replaced.0.to_le_bytes());
    out.extend_from_slice(&slot.to_le_bytes());
    out.extend_from_slice(&node.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&verifying_key.to_bytes());
    out
}

impl Process for ServerElement {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join(self.fabric.domain(self.cfg.domain).mcast);
        if let Some(replaced) = self.pending_admit.take() {
            // replica replacement, step 1 (Figure 3 adapted): ask the GM
            // ordering group to admit us into the expelled slot; key
            // shares and the peers' Join barrier follow from its decision
            self.obs
                .incr("element.admission_requests", &self.obs_label());
            let node = self
                .fabric
                .node_of(self.my_code())
                .map_or(0, |n| u64::from(n.as_raw()));
            let op = GmOp::Admit {
                domain: self.cfg.domain,
                replacement: self.cfg.element,
                replaced,
                node,
                verifying_key: self.fabric.verifying_key(self.cfg.element),
            };
            let gm = self.fabric.gm_domain;
            self.submit_op(ctx, gm, op.encode());
        }
        if self.onboarding {
            self.obs
                .span_begin("replica.onboarding_us", u64::from(self.cfg.element.0));
            self.replica.begin_onboarding();
            self.drain_replica(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Ok(msg) = CoreMsg::decode(&payload) else {
            return;
        };
        match msg {
            CoreMsg::Bft { domain, envelope } => {
                if domain == self.cfg.domain {
                    // could be replica traffic or an ACK for our own-group
                    // control ops: peek at the decoded message
                    let Ok(env) = Envelope::decode(&envelope) else {
                        return;
                    };
                    if let Ok(Message::Reply(r)) = Message::decode(&env.payload) {
                        if r.client.0 == self.my_code() {
                            if let Some(outbound) = self.outbound.get_mut(&domain) {
                                let fabric = self.fabric.clone();
                                outbound.on_reply(ctx, &fabric, &envelope);
                                outbound.take_accepted();
                            }
                            return;
                        }
                    }
                    if !self.bft_auth.verify(&env) {
                        return;
                    }
                    let Ok(message) = Message::decode(&env.payload) else {
                        return;
                    };
                    match env.sender {
                        Peer::Replica(sender) => self.replica.on_message(sender, message),
                        Peer::Client(_) => {
                            if let Message::Request(request) = message {
                                self.replica.on_request(request);
                            }
                        }
                    }
                    self.drain_replica(ctx);
                } else if let Some(outbound) = self.outbound.get_mut(&domain) {
                    let fabric = self.fabric.clone();
                    outbound.on_reply(ctx, &fabric, &envelope);
                    outbound.take_accepted();
                }
            }
            CoreMsg::KeyShare(m) => self.handle_key_share(ctx, m),
            CoreMsg::Notice(m) => self.handle_notice(ctx, m),
            CoreMsg::AdmitNotice(m) => self.handle_admit_notice(ctx, m),
            CoreMsg::DirectReply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        let Some((tag, param)) = unpack_timer(timer.kind) else {
            return;
        };
        match tag {
            TimerTag::View => {
                self.replica.on_view_timeout(param);
                self.drain_replica(ctx);
            }
            TimerTag::Retransmit => {
                let fabric = self.fabric.clone();
                if let Some(outbound) = self.outbound.get_mut(&DomainId(param)) {
                    outbound.on_retransmit_timer(ctx, &fabric);
                }
            }
            TimerTag::DelayedSend => {
                if let Some(send) = self.delayed.get_mut(param as usize).and_then(Option::take) {
                    self.dispatch_send(ctx, send);
                }
            }
            TimerTag::AckFlush | TimerTag::ClientRetry => {}
        }
    }
}
