//! Identity codes and timer multiplexing.
//!
//! Every communication endpoint (singleton client, server element, Group
//! Manager element) has a globally unique `u64` *endpoint code* used for:
//! BFT client identities, pairwise key derivation, and addressing in the
//! fabric. Timer kinds multiplex several logical timers onto simnet's one
//! `u64` timer discriminant.

use itdos_bft::config::ClientId;
use itdos_groupmgr::membership::Endpoint;
use itdos_vote::vote::SenderId;

/// Offset separating element codes from singleton-client codes.
pub const ELEMENT_CODE_BASE: u64 = 1_000_000;

/// The endpoint code for a singleton client id.
pub fn singleton_code(id: u64) -> u64 {
    debug_assert!(
        id < ELEMENT_CODE_BASE,
        "singleton ids must stay below the element base"
    );
    id
}

/// The endpoint code for a domain element.
pub fn element_code(id: SenderId) -> u64 {
    ELEMENT_CODE_BASE + id.0 as u64
}

/// The endpoint code of any [`Endpoint`].
pub fn endpoint_code(endpoint: Endpoint) -> u64 {
    match endpoint {
        Endpoint::Singleton(id) => singleton_code(id),
        Endpoint::Element(e) => element_code(e),
    }
}

/// Decodes an endpoint code.
pub fn code_endpoint(code: u64) -> Endpoint {
    if code >= ELEMENT_CODE_BASE {
        Endpoint::Element(SenderId((code - ELEMENT_CODE_BASE) as u32))
    } else {
        Endpoint::Singleton(code)
    }
}

/// The BFT client identity an endpoint uses toward any group.
pub fn bft_client_id(code: u64) -> ClientId {
    ClientId(code)
}

/// Timer tags (low 3 bits of the timer kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerTag {
    /// PBFT view-change timer; param = epoch.
    View,
    /// Outbound BFT client retransmission; param = target domain id.
    Retransmit,
    /// Delayed (slow-fault) reply release; param = stash slot.
    DelayedSend,
    /// Queue consumption acknowledgement flush.
    AckFlush,
    /// Client-side vote garbage collection / request timeout.
    ClientRetry,
}

const TAG_VIEW: u64 = 1;
const TAG_RETRANSMIT: u64 = 2;
const TAG_DELAYED: u64 = 3;
const TAG_ACK: u64 = 4;
const TAG_CLIENT: u64 = 5;

/// Packs a tag and parameter into a timer kind.
pub fn pack_timer(tag: TimerTag, param: u64) -> u64 {
    let t = match tag {
        TimerTag::View => TAG_VIEW,
        TimerTag::Retransmit => TAG_RETRANSMIT,
        TimerTag::DelayedSend => TAG_DELAYED,
        TimerTag::AckFlush => TAG_ACK,
        TimerTag::ClientRetry => TAG_CLIENT,
    };
    (param << 3) | t
}

/// Unpacks a timer kind. Returns `None` for unknown tags.
pub fn unpack_timer(kind: u64) -> Option<(TimerTag, u64)> {
    let tag = match kind & 7 {
        TAG_VIEW => TimerTag::View,
        TAG_RETRANSMIT => TimerTag::Retransmit,
        TAG_DELAYED => TimerTag::DelayedSend,
        TAG_ACK => TimerTag::AckFlush,
        TAG_CLIENT => TimerTag::ClientRetry,
        _ => return None,
    };
    Some((tag, kind >> 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_codes_round_trip() {
        assert_eq!(code_endpoint(singleton_code(42)), Endpoint::Singleton(42));
        assert_eq!(
            code_endpoint(element_code(SenderId(7))),
            Endpoint::Element(SenderId(7))
        );
    }

    #[test]
    fn codes_are_disjoint() {
        assert_ne!(singleton_code(5), element_code(SenderId(5)));
    }

    #[test]
    fn timer_packing_round_trips() {
        for (tag, param) in [
            (TimerTag::View, 0u64),
            (TimerTag::Retransmit, 12345),
            (TimerTag::DelayedSend, u64::MAX >> 3),
            (TimerTag::AckFlush, 1),
            (TimerTag::ClientRetry, 9),
        ] {
            let kind = pack_timer(tag, param);
            assert_eq!(unpack_timer(kind), Some((tag, param)));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(unpack_timer(0), None);
        assert_eq!(unpack_timer(6), None);
    }

    #[test]
    fn bft_client_ids_track_codes() {
        assert_eq!(bft_client_id(element_code(SenderId(3))).0, 1_000_003);
    }
}
