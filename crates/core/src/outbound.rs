//! Outbound BFT client channels.
//!
//! Every endpoint that submits operations into some domain's ordering
//! group — a singleton client invoking a server, a server element making a
//! nested invocation or sending queue-control ops to its *own* group, any
//! process talking to the Group Manager — drives one [`Outbound`] per
//! target domain. It wraps the PBFT client protocol (send to all, collect
//! `f+1` matching ACKs, retransmit on timeout). By default operations are
//! serialized one in flight per channel (§3.6's single outstanding
//! request); [`Outbound::set_window`] opens a pipelining window of several
//! in-flight operations — the BFT primary batches them under shared
//! sequence numbers — while accepted results are still released to the
//! owner strictly in submission order, so every caller keeps its FIFO
//! view of the channel.

use std::collections::{BTreeMap, VecDeque};

use itdos_bft::auth::AuthContext;
use itdos_bft::client::Client;
use itdos_bft::message::Message;
use itdos_groupmgr::membership::DomainId;
use simnet::Context;
use xbytes::Bytes;

use crate::codes::{bft_client_id, pack_timer, TimerTag};
use crate::fabric::Fabric;
use crate::wire::CoreMsg;

/// One outbound ordering channel to a target domain.
pub struct Outbound {
    target: DomainId,
    auth: AuthContext,
    client: Client,
    queue: VecDeque<Vec<u8>>,
    /// Timestamps of in-flight operations in submission order; results are
    /// released to `accepted` only when the head decides (FIFO reorder).
    in_order: VecDeque<u64>,
    /// Decided results awaiting older operations, by timestamp.
    decided: BTreeMap<u64, Vec<u8>>,
    /// Results of accepted operations, oldest first (drained by the owner).
    accepted: VecDeque<Vec<u8>>,
}

impl std::fmt::Debug for Outbound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Outbound")
            .field("target", &self.target)
            .field("queued", &self.queue.len())
            .field("busy", &self.client.busy())
            .finish()
    }
}

impl Outbound {
    /// Opens a channel from endpoint `code` to `target`'s ordering group.
    pub fn new(fabric: &Fabric, target: DomainId, code: u64) -> Outbound {
        let spec = fabric.domain(target);
        Outbound {
            target,
            auth: fabric.bft_auth_client(target, code),
            client: Client::new(bft_client_id(code), spec.config.clone()),
            queue: VecDeque::new(),
            in_order: VecDeque::new(),
            decided: BTreeMap::new(),
            accepted: VecDeque::new(),
        }
    }

    /// Sets the pipelining window: how many operations may be in flight
    /// concurrently (default 1, the strict §3.6 serialization).
    pub fn set_window(&mut self, window: usize) {
        self.client.set_window(window);
    }

    /// The target domain.
    pub fn target(&self) -> DomainId {
        self.target
    }

    /// Queues an operation for ordered submission.
    pub fn submit(&mut self, ctx: &mut Context<'_>, fabric: &Fabric, op: Vec<u8>) {
        self.queue.push_back(op);
        self.pump(ctx, fabric);
    }

    /// Number of operations accepted and awaiting the owner.
    pub fn take_accepted(&mut self) -> Vec<Vec<u8>> {
        self.accepted.drain(..).collect()
    }

    /// True when nothing is queued or in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.client.in_flight() == 0
    }

    fn pump(&mut self, ctx: &mut Context<'_>, fabric: &Fabric) {
        let mut started = false;
        while !self.client.busy() {
            let Some(op) = self.queue.pop_front() else {
                break;
            };
            let request = self.client.start_request(op).expect("window has room");
            self.in_order.push_back(request.timestamp);
            self.broadcast(ctx, fabric, &Message::Request(request));
            started = true;
        }
        if started {
            self.arm_retransmit(ctx, fabric);
        }
    }

    /// Moves decided results into `accepted` in submission order.
    fn release(&mut self) {
        while let Some(&head) = self.in_order.front() {
            let Some(result) = self.decided.remove(&head) else {
                break;
            };
            self.in_order.pop_front();
            self.accepted.push_back(result);
        }
    }

    fn arm_retransmit(&mut self, ctx: &mut Context<'_>, fabric: &Fabric) {
        let timeout = fabric.domain(self.target).config.view_timeout;
        ctx.set_timer(
            timeout.saturating_mul(2),
            pack_timer(TimerTag::Retransmit, self.target.0),
        );
    }

    fn broadcast(&self, ctx: &mut Context<'_>, fabric: &Fabric, message: &Message) {
        let envelope = self.auth.mac_envelope(message.encode());
        let msg = CoreMsg::Bft {
            domain: self.target,
            envelope: envelope.encode(),
        };
        let bytes = Bytes::from(msg.encode());
        for &node in &fabric.domain(self.target).nodes {
            ctx.send_labeled(node, bytes.clone(), "smiop-submit");
        }
    }

    /// Handles a verified BFT reply envelope addressed to this client.
    /// Returns true if it completed the in-flight operation (its result is
    /// then available via [`Outbound::take_accepted`]).
    pub fn on_reply(
        &mut self,
        ctx: &mut Context<'_>,
        fabric: &Fabric,
        envelope_bytes: &[u8],
    ) -> bool {
        let Ok(envelope) = itdos_bft::auth::Envelope::decode(envelope_bytes) else {
            return false;
        };
        if !self.auth.verify(&envelope) {
            return false;
        }
        let Ok(Message::Reply(reply)) = Message::decode(&envelope.payload) else {
            return false;
        };
        if let Some((timestamp, result)) = self.client.on_reply(reply) {
            self.decided.insert(timestamp, result);
            self.release();
            self.pump(ctx, fabric);
            return true;
        }
        false
    }

    /// Handles the retransmission timer.
    pub fn on_retransmit_timer(&mut self, ctx: &mut Context<'_>, fabric: &Fabric) {
        let undecided = self.client.retransmit_all();
        if undecided.is_empty() {
            return;
        }
        for request in undecided {
            self.broadcast(ctx, fabric, &Message::Request(request));
        }
        self.arm_retransmit(ctx, fabric);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_bft::config::GroupConfig;
    use itdos_crypto::dprf::Dprf;
    use itdos_giop::idl::InterfaceRepository;
    use itdos_vote::vote::SenderId;
    use simnet::{GroupId, NodeId};
    use std::collections::BTreeMap;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn fabric() -> Fabric {
        let mut domains = BTreeMap::new();
        domains.insert(
            DomainId(1),
            crate::fabric::DomainSpec {
                id: DomainId(1),
                f: 1,
                config: GroupConfig::for_f(1),
                seed: [1u8; 32],
                mcast: GroupId::from_raw(0),
                nodes: (0..4).map(NodeId::from_raw).collect(),
                elements: (0..4).map(SenderId).collect(),
            },
        );
        let dprf = Dprf::deal(1, 4, &mut SmallRng::seed_from_u64(1));
        Fabric {
            domains,
            endpoint_nodes: BTreeMap::new(),
            gm_domain: DomainId(1),
            repo: InterfaceRepository::new(),
            comparators: crate::registry::ComparatorRegistry::new(),
            dprf_verifier: dprf.verifier().clone(),
            global_seed: [2u8; 32],
            retired: Vec::new(),
        }
    }

    /// A process that owns one Outbound and records accepted results.
    struct Harness {
        outbound: Outbound,
        fabric: Fabric,
    }

    impl simnet::Process for Harness {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: simnet::NodeId, payload: Bytes) {
            if from.is_external() {
                self.outbound.submit(ctx, &self.fabric, payload.to_vec());
            }
        }
    }

    #[test]
    fn submission_broadcasts_to_all_replicas() {
        let fabric = fabric();
        let mut sim = simnet::Simulator::new(1);
        // four sink nodes standing in for replicas (ids 0..3 as in fabric)
        struct Sink {
            got: u32,
        }
        impl simnet::Process for Sink {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: simnet::NodeId, _p: Bytes) {
                self.got += 1;
            }
        }
        for _ in 0..4 {
            sim.add_process(Box::new(Sink { got: 0 }));
        }
        let h = sim.add_process(Box::new(Harness {
            outbound: Outbound::new(&fabric, DomainId(1), 9),
            fabric: fabric.clone(),
        }));
        sim.inject(h, Bytes::from_static(b"op"));
        sim.run_until(simnet::SimTime::from_micros(500));
        for i in 0..4 {
            assert_eq!(
                sim.process_ref::<Sink>(NodeId::from_raw(i)).got,
                1,
                "replica {i} got the request"
            );
        }
    }

    #[test]
    fn retransmission_rebroadcasts_until_acked() {
        let fabric = fabric();
        let mut sim = simnet::Simulator::new(3);
        struct Counter {
            got: u32,
        }
        impl simnet::Process for Counter {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: simnet::NodeId, _p: Bytes) {
                self.got += 1;
            }
        }
        for _ in 0..4 {
            sim.add_process(Box::new(Counter { got: 0 }));
        }
        struct RetryHarness {
            outbound: Outbound,
            fabric: Fabric,
        }
        impl simnet::Process for RetryHarness {
            fn on_message(&mut self, ctx: &mut Context<'_>, from: simnet::NodeId, payload: Bytes) {
                if from.is_external() {
                    self.outbound.submit(ctx, &self.fabric, payload.to_vec());
                }
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, timer: simnet::Timer) {
                if let Some((crate::codes::TimerTag::Retransmit, _)) =
                    crate::codes::unpack_timer(timer.kind)
                {
                    let fabric = self.fabric.clone();
                    self.outbound.on_retransmit_timer(ctx, &fabric);
                }
            }
        }
        let h = sim.add_process(Box::new(RetryHarness {
            outbound: Outbound::new(&fabric, DomainId(1), 9),
            fabric: fabric.clone(),
        }));
        sim.inject(h, Bytes::from_static(b"op"));
        // no replica ever ACKs, so the client keeps rebroadcasting on its
        // timer: after several timeout periods each sink saw > 1 copy
        sim.run_until(simnet::SimTime::from_micros(700_000));
        let got = sim.process_ref::<Counter>(NodeId::from_raw(0)).got;
        assert!(got >= 3, "rebroadcasts observed: {got}");
    }

    #[test]
    fn operations_serialize_one_at_a_time() {
        let fabric = fabric();
        let mut sim = simnet::Simulator::new(2);
        struct Counter {
            got: u32,
        }
        impl simnet::Process for Counter {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: simnet::NodeId, _p: Bytes) {
                self.got += 1;
            }
        }
        for _ in 0..4 {
            sim.add_process(Box::new(Counter { got: 0 }));
        }
        let h = sim.add_process(Box::new(Harness {
            outbound: Outbound::new(&fabric, DomainId(1), 9),
            fabric: fabric.clone(),
        }));
        sim.inject(h, Bytes::from_static(b"op1"));
        sim.inject(h, Bytes::from_static(b"op2"));
        sim.run_until(simnet::SimTime::from_micros(300));
        // second op queued behind the un-acked first: only one broadcast
        assert_eq!(sim.process_ref::<Counter>(NodeId::from_raw(0)).got, 1);
    }
}
