//! Typed invocation descriptions and completion tickets.
//!
//! [`Invocation`] replaces the positional `(target, object_key,
//! interface, operation, args)` argument list on [`crate::system::System`]
//! with a builder, so call sites read like the CORBA request they
//! describe:
//!
//! ```ignore
//! let inv = Invocation::of(DomainId(1))
//!     .object(b"calc")
//!     .interface("Calc")
//!     .operation("add")
//!     .arg(Value::Long(2))
//!     .arg(Value::Long(40));
//! let completed = system.invoke(7, inv);
//! ```
//!
//! [`Ticket`] is the handle returned by `invoke_async`: invocations on one
//! client complete in submission order (the pipelining client releases
//! results FIFO), so a ticket is simply `(client, completion index)` and
//! stays valid across any number of later submissions.

use itdos_giop::types::Value;
use itdos_groupmgr::membership::DomainId;

/// A described (not yet submitted) CORBA invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    pub(crate) target: DomainId,
    pub(crate) object_key: Vec<u8>,
    pub(crate) interface: String,
    pub(crate) operation: String,
    pub(crate) args: Vec<Value>,
}

impl Invocation {
    /// Starts describing an invocation on `target`'s replication domain.
    pub fn of(target: DomainId) -> Invocation {
        Invocation {
            target,
            object_key: Vec::new(),
            interface: String::new(),
            operation: String::new(),
            args: Vec::new(),
        }
    }

    /// Sets the object key the request addresses.
    pub fn object(mut self, key: impl AsRef<[u8]>) -> Invocation {
        self.object_key = key.as_ref().to_vec();
        self
    }

    /// Sets the IDL interface name.
    pub fn interface(mut self, interface: impl Into<String>) -> Invocation {
        self.interface = interface.into();
        self
    }

    /// Sets the operation name.
    pub fn operation(mut self, operation: impl Into<String>) -> Invocation {
        self.operation = operation.into();
        self
    }

    /// Appends one argument.
    pub fn arg(mut self, value: Value) -> Invocation {
        self.args.push(value);
        self
    }

    /// Appends several arguments at once.
    pub fn args(mut self, values: impl IntoIterator<Item = Value>) -> Invocation {
        self.args.extend(values);
        self
    }

    /// The target domain.
    pub fn target(&self) -> DomainId {
        self.target
    }
}

/// Handle for one asynchronously submitted invocation: the `index`-th
/// completion of `client`. Valid forever — completions accumulate in
/// submission order on the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket {
    /// The submitting client's id.
    pub client: u64,
    /// Position of this invocation in the client's completion list.
    pub index: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_fields() {
        let inv = Invocation::of(DomainId(3))
            .object(b"acct")
            .interface("Account")
            .operation("deposit")
            .arg(Value::Long(5))
            .args([Value::Long(6), Value::Long(7)]);
        assert_eq!(inv.target(), DomainId(3));
        assert_eq!(inv.object_key, b"acct");
        assert_eq!(inv.interface, "Account");
        assert_eq!(inv.operation, "deposit");
        assert_eq!(
            inv.args,
            vec![Value::Long(5), Value::Long(6), Value::Long(7)]
        );
    }

    #[test]
    fn tickets_order_by_client_then_index() {
        let a = Ticket {
            client: 1,
            index: 2,
        };
        let b = Ticket {
            client: 1,
            index: 3,
        };
        assert!(a < b);
    }
}
