//! Deployment builder: assemble a whole ITDOS system on the simulator.
//!
//! A system is the Figure 1 picture generalized: one Group Manager
//! replication domain, any number of server replication domains (each
//! `3f+1` elements on heterogeneous platforms), and singleton clients.
//! The builder wires the fabric (nodes, seeds, keys, DPRF deal,
//! membership) and hands back a [`System`] that can run invocations and
//! inspect every process.

use std::collections::BTreeMap;

use itdos_bft::config::GroupConfig;
use itdos_crypto::dprf::Dprf;
use itdos_giop::idl::InterfaceRepository;
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_groupmgr::membership::{DomainId, DomainRecord, ElementRecord, Membership};
use itdos_orb::object::ObjectKey;
use itdos_orb::servant::Servant;
use itdos_vote::comparator::Comparator;
use itdos_vote::vote::SenderId;
use simnet::{GroupId, NodeId, Simulator};
use xrand::rngs::SmallRng;
use xrand::SeedableRng;

use itdos_obs::ObsConfig;

use crate::client::{encode_command, ClientConfig, Completed, SingletonClient};
use crate::codes::{element_code, singleton_code};
use crate::element::{ElementConfig, ServerElement};
use crate::fabric::{DomainSpec, Fabric};
use crate::fault::Behavior;
use crate::gm::{GmElement, GmMachine};
use crate::invocation::{Invocation, Ticket};
use crate::registry::ComparatorRegistry;

/// Default [`System::settle`] step budget (see
/// [`SystemBuilder::settle_budget`]).
pub const DEFAULT_SETTLE_BUDGET: u64 = 20_000_000;

/// Builds the servants hosted by one replica of a domain. Called once per
/// replica index so heterogeneous *implementations* are possible (§2:
/// "implementation diversity in both language and platform").
pub type ServantFactory = Box<dyn Fn(usize) -> Vec<(ObjectKey, Box<dyn Servant>)>>;

struct DomainPlan {
    id: DomainId,
    f: usize,
    factory: ServantFactory,
    behaviors: BTreeMap<usize, Behavior>,
    platforms: Option<Vec<PlatformProfile>>,
}

struct ClientPlan {
    id: u64,
    platform: PlatformProfile,
    auto_proof: bool,
}

/// BFT ordering overrides applied to every replication domain.
#[derive(Debug, Clone, Copy, Default)]
struct BftTuning {
    max_batch: Option<usize>,
    pipeline_depth: Option<u64>,
    client_reply_window: Option<usize>,
}

/// Per-domain pieces the builder hands over to the built [`System`] so
/// replica replacement can construct a like-for-like element later.
struct DomainRuntime {
    factory: ServantFactory,
    platforms: Option<Vec<PlatformProfile>>,
}

/// The deployment builder.
pub struct SystemBuilder {
    seed: u64,
    gm_f: usize,
    repo: InterfaceRepository,
    comparators: ComparatorRegistry,
    domains: Vec<DomainPlan>,
    clients: Vec<ClientPlan>,
    ack_interval: u64,
    queue_capacity: usize,
    obs_cfg: ObsConfig,
    settle_budget: u64,
    bft: BftTuning,
    client_pipeline: usize,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("domains", &self.domains.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

/// The Group Manager's reserved domain id.
pub const GM_DOMAIN: DomainId = DomainId(0);

impl SystemBuilder {
    /// Starts a deployment with the given determinism seed.
    pub fn new(seed: u64) -> SystemBuilder {
        SystemBuilder {
            seed,
            gm_f: 1,
            repo: InterfaceRepository::new(),
            comparators: ComparatorRegistry::new(),
            domains: Vec::new(),
            clients: Vec::new(),
            ack_interval: 8,
            queue_capacity: 1 << 20,
            obs_cfg: ObsConfig::off(),
            settle_budget: DEFAULT_SETTLE_BUDGET,
            bft: BftTuning::default(),
            client_pipeline: 1,
        }
    }

    /// Configures the deterministic observability layer: one shared
    /// [`itdos_obs::Obs`] recorder (metrics + flight recorder) driven by
    /// the simulator clock and installed on every process. Off by default
    /// ([`ObsConfig::off`]) — disabled hooks are free. Use
    /// [`ObsConfig::standard`] for metrics/spans or
    /// [`ObsConfig::forensic`] to keep a whole drill's event timeline
    /// (consumed by [`System::metrics_jsonl`] / [`System::audit_jsonl`]).
    pub fn obs(&mut self, cfg: ObsConfig) -> &mut SystemBuilder {
        self.obs_cfg = cfg;
        self
    }

    /// Enables the observability layer.
    #[deprecated(note = "use `obs(ObsConfig::standard())` / `obs(ObsConfig::off())`")]
    pub fn observability(&mut self, on: bool) -> &mut SystemBuilder {
        self.obs_cfg.enabled = on;
        self
    }

    /// Overrides the flight-recorder ring capacity.
    #[deprecated(note = "use `obs(ObsConfig::forensic())` or `ObsConfig::with_flight_capacity`")]
    pub fn flight_capacity(&mut self, events: usize) -> &mut SystemBuilder {
        self.obs_cfg.flight_capacity = Some(events);
        self
    }

    /// Overrides the [`System::settle`] step budget. Long-running load
    /// experiments legitimately exceed the default; tests hunting a
    /// livelock may want it far smaller so failures are fast.
    pub fn settle_budget(&mut self, steps: u64) -> &mut SystemBuilder {
        self.settle_budget = steps.max(1);
        self
    }

    /// Overrides PBFT request batching for every replication domain:
    /// up to `max_batch` client requests share one sequence number and up
    /// to `pipeline_depth` sequence numbers run agreement concurrently
    /// (defaults come from [`GroupConfig::for_f`]).
    pub fn batching(&mut self, max_batch: usize, pipeline_depth: u64) -> &mut SystemBuilder {
        self.bft.max_batch = Some(max_batch);
        self.bft.pipeline_depth = Some(pipeline_depth);
        self
    }

    /// Disables batching and pipelining (`max_batch = 1`,
    /// `pipeline_depth = 1`) — the strict one-request-per-sequence
    /// baseline used for throughput comparisons.
    pub fn unbatched(&mut self) -> &mut SystemBuilder {
        self.batching(1, 1)
    }

    /// Sets how many invocations every client may keep in flight
    /// concurrently (default 1, the classic §3.6 model). Results are
    /// still delivered in submission order. At build time the depth is
    /// clamped to the replicas' per-client reply-cache window
    /// ([`SystemBuilder::client_reply_window`]): a deeper pipeline could
    /// let a retransmitted request fall out of every correct replica's
    /// cache and be re-executed.
    pub fn client_pipeline(&mut self, depth: usize) -> &mut SystemBuilder {
        self.client_pipeline = depth.max(1);
        self
    }

    /// Overrides the per-client reply-cache window every replica retains
    /// (the duplicate-suppression depth; default comes from
    /// [`GroupConfig::for_f`]). Clamped to at least 1.
    pub fn client_reply_window(&mut self, window: usize) -> &mut SystemBuilder {
        self.bft.client_reply_window = Some(window.max(1));
        self
    }

    /// Sets the interface repository (shared by every process).
    pub fn repository(&mut self, repo: InterfaceRepository) -> &mut SystemBuilder {
        self.repo = repo;
        self
    }

    /// Registers a voting comparator for an interface.
    pub fn comparator(
        &mut self,
        interface: impl Into<String>,
        comparator: Comparator,
    ) -> &mut SystemBuilder {
        self.comparators.register(interface, comparator);
        self
    }

    /// Sets the Group Manager's fault tolerance (GM domain has `3f+1`
    /// elements).
    pub fn gm_faults(&mut self, f: usize) -> &mut SystemBuilder {
        self.gm_f = f;
        self
    }

    /// Sets the queue acknowledgement interval for all elements.
    pub fn ack_interval(&mut self, interval: u64) -> &mut SystemBuilder {
        self.ack_interval = interval.max(1);
        self
    }

    /// Sets the replicated message-queue capacity (bytes) for all
    /// elements — small capacities force queue GC and laggard expulsion
    /// (experiment E8).
    pub fn queue_capacity(&mut self, bytes: usize) -> &mut SystemBuilder {
        self.queue_capacity = bytes;
        self
    }

    /// Adds a server replication domain of `3f+1` elements.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the reserved [`GM_DOMAIN`] or already used.
    pub fn add_domain(
        &mut self,
        id: DomainId,
        f: usize,
        factory: ServantFactory,
    ) -> &mut SystemBuilder {
        assert!(
            id != GM_DOMAIN,
            "domain id 0 is reserved for the Group Manager"
        );
        assert!(
            self.domains.iter().all(|d| d.id != id),
            "duplicate domain id"
        );
        self.domains.push(DomainPlan {
            id,
            f,
            factory,
            behaviors: BTreeMap::new(),
            platforms: None,
        });
        self
    }

    /// Overrides the behaviour of one element (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if the domain was not added first.
    pub fn behavior(
        &mut self,
        domain: DomainId,
        index: usize,
        behavior: Behavior,
    ) -> &mut SystemBuilder {
        let plan = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .expect("behavior targets a declared domain");
        plan.behaviors.insert(index, behavior);
        self
    }

    /// Overrides the per-replica platform profiles of a domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain was not added first.
    pub fn platforms(
        &mut self,
        domain: DomainId,
        platforms: Vec<PlatformProfile>,
    ) -> &mut SystemBuilder {
        let plan = self
            .domains
            .iter_mut()
            .find(|d| d.id == domain)
            .expect("platforms target a declared domain");
        plan.platforms = Some(platforms);
        self
    }

    /// Adds a singleton client (ids must be unique and below 1,000,000).
    pub fn add_client(&mut self, id: u64) -> &mut SystemBuilder {
        self.add_client_with(id, PlatformProfile::X86_LINUX, true)
    }

    /// Adds a singleton client with explicit platform and proof policy.
    pub fn add_client_with(
        &mut self,
        id: u64,
        platform: PlatformProfile,
        auto_proof: bool,
    ) -> &mut SystemBuilder {
        assert!(
            self.clients.iter().all(|c| c.id != id),
            "duplicate client id"
        );
        self.clients.push(ClientPlan {
            id,
            platform,
            auto_proof,
        });
        self
    }

    /// Builds the system: allocates nodes, deals keys, spawns processes.
    pub fn build(self) -> System {
        let mut sim = Simulator::new(self.seed);
        let obs = if self.obs_cfg.enabled {
            let (obs, clock) = itdos_obs::Obs::manual();
            sim.drive_obs_clock(clock);
            if let Some(capacity) = self.obs_cfg.flight_capacity {
                obs.set_flight_capacity(capacity);
            }
            obs
        } else {
            itdos_obs::Obs::disabled()
        };
        let tuned = |f: usize| {
            let mut config = GroupConfig::for_f(f);
            if let Some(max_batch) = self.bft.max_batch {
                config.max_batch = max_batch.max(1);
            }
            if let Some(depth) = self.bft.pipeline_depth {
                config.pipeline_depth = depth.max(1);
            }
            if let Some(window) = self.bft.client_reply_window {
                config.client_reply_window = window.max(1);
            }
            config
        };
        // the client pipeline must fit inside every replica's per-client
        // reply cache, or a retransmitted request could fall off the cache
        // and be re-executed — clamp and record rather than misbehave
        let reply_window = tuned(0).client_reply_window;
        let client_pipeline = if self.client_pipeline > reply_window {
            obs.incr(
                "config.client_pipeline_clamped",
                &[
                    (
                        "requested",
                        itdos_obs::LabelValue::U64(self.client_pipeline as u64),
                    ),
                    ("window", itdos_obs::LabelValue::U64(reply_window as u64)),
                ],
            );
            reply_window
        } else {
            self.client_pipeline
        };
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x1717_1717);
        let gm_n = 3 * self.gm_f + 1;

        // -- global element id allocation: GM first, then server domains
        let mut next_element = 0u32;
        let gm_elements: Vec<SenderId> = (0..gm_n)
            .map(|_| {
                let e = SenderId(next_element);
                next_element += 1;
                e
            })
            .collect();
        let domain_elements: Vec<Vec<SenderId>> = self
            .domains
            .iter()
            .map(|d| {
                (0..3 * d.f + 1)
                    .map(|_| {
                        let e = SenderId(next_element);
                        next_element += 1;
                        e
                    })
                    .collect()
            })
            .collect();

        // -- node allocation (placeholders replaced after fabric exists)
        let gm_nodes: Vec<NodeId> = (0..gm_n).map(|_| sim.add_process(Box::new(Idle))).collect();
        let domain_nodes: Vec<Vec<NodeId>> = self
            .domains
            .iter()
            .map(|d| {
                (0..3 * d.f + 1)
                    .map(|_| sim.add_process(Box::new(Idle)))
                    .collect()
            })
            .collect();
        let client_nodes: Vec<NodeId> = self
            .clients
            .iter()
            .map(|_| sim.add_process(Box::new(Idle)))
            .collect();

        // -- fabric
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        let dprf = Dprf::deal(self.gm_f, gm_n, &mut rng);
        let (holders, verifier) = dprf.into_parts();

        let mut domains = BTreeMap::new();
        let group_seed = |tag: u64| {
            let mut s = seed_bytes;
            s[8..16].copy_from_slice(&tag.to_le_bytes());
            s
        };
        domains.insert(
            GM_DOMAIN,
            DomainSpec {
                id: GM_DOMAIN,
                f: self.gm_f,
                config: tuned(self.gm_f),
                seed: group_seed(u64::MAX),
                mcast: GroupId::from_raw(0),
                nodes: gm_nodes.clone(),
                elements: gm_elements.clone(),
            },
        );
        for (i, plan) in self.domains.iter().enumerate() {
            domains.insert(
                plan.id,
                DomainSpec {
                    id: plan.id,
                    f: plan.f,
                    config: tuned(plan.f),
                    seed: group_seed(plan.id.0),
                    mcast: GroupId::from_raw(1 + i as u32),
                    nodes: domain_nodes[i].clone(),
                    elements: domain_elements[i].clone(),
                },
            );
        }
        let mut endpoint_nodes = BTreeMap::new();
        for (e, n) in gm_elements.iter().zip(&gm_nodes) {
            endpoint_nodes.insert(element_code(*e), *n);
        }
        for (elems, nodes) in domain_elements.iter().zip(&domain_nodes) {
            for (e, n) in elems.iter().zip(nodes) {
                endpoint_nodes.insert(element_code(*e), *n);
            }
        }
        for (c, n) in self.clients.iter().zip(&client_nodes) {
            endpoint_nodes.insert(singleton_code(c.id), *n);
        }
        let fabric = Fabric {
            domains,
            endpoint_nodes,
            gm_domain: GM_DOMAIN,
            repo: self.repo.clone(),
            comparators: self.comparators.clone(),
            dprf_verifier: verifier,
            global_seed: seed_bytes,
            retired: Vec::new(),
        };

        // -- GM membership (covers every server domain and client)
        let mut membership = Membership::new();
        for (i, plan) in self.domains.iter().enumerate() {
            membership.register_domain(DomainRecord::new(
                plan.id,
                plan.f,
                domain_elements[i]
                    .iter()
                    .map(|e| ElementRecord {
                        id: *e,
                        verifying_key: fabric.verifying_key(*e),
                    })
                    .collect(),
            ));
        }
        for c in &self.clients {
            membership.register_singleton(c.id, fabric.verifying_key_code(singleton_code(c.id)));
        }
        let gm_seed = {
            let mut s = seed_bytes;
            s[16] = 0xAB; // domain-separate the GM's connection-input seed
            s
        };

        // -- spawn GM elements
        for (index, (&node, holder)) in gm_nodes.iter().zip(holders).enumerate() {
            let machine = GmMachine::new(
                membership.clone(),
                gm_seed,
                self.repo.clone(),
                self.comparators.clone(),
            );
            let mut element = GmElement::new(
                fabric.clone(),
                GM_DOMAIN,
                index,
                gm_elements[index],
                machine,
                holder,
            );
            // every process gets its own span scope (its endpoint code is
            // globally unique), so identically-keyed spans from different
            // replicas, groups, or clients cannot clobber each other
            element.set_obs(obs.scoped(element_code(gm_elements[index])));
            sim.replace_process(node, Box::new(element));
            sim.join_group(node, fabric.domain(GM_DOMAIN).mcast);
        }

        // -- spawn server elements
        for (i, plan) in self.domains.iter().enumerate() {
            for (index, &node) in domain_nodes[i].iter().enumerate() {
                let platform = plan
                    .platforms
                    .as_ref()
                    .map(|p| p[index % p.len()])
                    .unwrap_or_else(|| PlatformProfile::for_replica(index));
                let cfg = ElementConfig {
                    domain: plan.id,
                    index,
                    element: domain_elements[i][index],
                    platform,
                    behavior: plan
                        .behaviors
                        .get(&index)
                        .cloned()
                        .unwrap_or(Behavior::Honest),
                    ack_interval: self.ack_interval,
                    queue_capacity: self.queue_capacity,
                };
                // injected misbehavior goes on the simulator's ground-truth
                // ledger so tests can cross-check forensic blame sets
                if !matches!(cfg.behavior, Behavior::Honest) {
                    sim.fault_ledger_mut()
                        .mark(u64::from(cfg.element.0), cfg.behavior.kind());
                }
                let servants = (plan.factory)(index);
                let mut element = ServerElement::new(fabric.clone(), cfg, servants);
                element.set_obs(obs.scoped(element_code(domain_elements[i][index])));
                sim.replace_process(node, Box::new(element));
                sim.join_group(node, fabric.domain(plan.id).mcast);
            }
        }

        // -- spawn clients
        let mut client_node_map = BTreeMap::new();
        for (plan, &node) in self.clients.iter().zip(&client_nodes) {
            let cfg = ClientConfig {
                id: plan.id,
                platform: plan.platform,
                auto_proof: plan.auto_proof,
            };
            let mut client = SingletonClient::new(fabric.clone(), cfg);
            client.set_pipeline(client_pipeline);
            client.set_obs(obs.scoped(singleton_code(plan.id)));
            sim.replace_process(node, Box::new(client));
            client_node_map.insert(plan.id, node);
        }

        let domain_runtime: BTreeMap<DomainId, DomainRuntime> = self
            .domains
            .into_iter()
            .map(|p| {
                (
                    p.id,
                    DomainRuntime {
                        factory: p.factory,
                        platforms: p.platforms,
                    },
                )
            })
            .collect();

        System {
            sim,
            fabric,
            obs,
            client_nodes: client_node_map,
            settle_budget: self.settle_budget,
            submitted: BTreeMap::new(),
            domain_runtime,
            ack_interval: self.ack_interval,
            queue_capacity: self.queue_capacity,
            next_element,
        }
    }
}

/// A built, running system.
pub struct System {
    /// The simulator (exposed for clock, stats, adversary control).
    pub sim: Simulator,
    /// The deployment wiring.
    pub fabric: Fabric,
    /// The shared observability handle (disabled unless the builder's
    /// [`SystemBuilder::obs`] enabled it).
    pub obs: itdos_obs::Obs,
    client_nodes: BTreeMap<u64, NodeId>,
    settle_budget: u64,
    /// Per-client count of submitted invocations, which doubles as the
    /// next completion index (results release in submission order).
    submitted: BTreeMap<u64, usize>,
    /// Per-domain servant factories and platform plans, retained so
    /// replica replacement can build a like-for-like fresh element.
    domain_runtime: BTreeMap<DomainId, DomainRuntime>,
    ack_interval: u64,
    queue_capacity: usize,
    /// Next unused global element id (replacements get fresh ids).
    next_element: u32,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("clients", &self.client_nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl System {
    /// Starts an invocation from `client` without running the simulation
    /// and returns a [`Ticket`] for the eventual result (redeem with
    /// [`System::await_all`] or [`System::result`]). Invocations on one
    /// client complete in submission order even when the client pipelines
    /// several concurrently ([`SystemBuilder::client_pipeline`]).
    pub fn invoke_async(&mut self, client: u64, invocation: Invocation) -> Ticket {
        let cmd = encode_command(
            &self.fabric,
            invocation.target,
            &invocation.object_key,
            &invocation.interface,
            &invocation.operation,
            invocation.args,
        );
        let node = self.client_nodes[&client];
        self.sim.inject(node, cmd);
        let index = self.submitted.entry(client).or_insert(0);
        let ticket = Ticket {
            client,
            index: *index,
        };
        *index += 1;
        ticket
    }

    /// Runs an invocation to completion and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to quiesce or the invocation never
    /// completes — both indicate a protocol bug under test.
    pub fn invoke(&mut self, client: u64, invocation: Invocation) -> Completed {
        let ticket = self.invoke_async(client, invocation);
        self.settle();
        self.result(ticket)
            .unwrap_or_else(|| panic!("invocation did not complete (client {client})"))
    }

    /// The completed outcome a ticket refers to, if it has been reached.
    pub fn result(&self, ticket: Ticket) -> Option<Completed> {
        self.client(ticket.client)
            .completed
            .get(ticket.index)
            .cloned()
    }

    /// Runs the system to quiescence and returns every ticket's outcome,
    /// in ticket order.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to quiesce or any ticket's invocation
    /// never completed.
    pub fn await_all(&mut self, tickets: &[Ticket]) -> Vec<Completed> {
        self.settle();
        tickets
            .iter()
            .map(|&ticket| {
                self.result(ticket).unwrap_or_else(|| {
                    panic!(
                        "invocation {} of client {} did not complete",
                        ticket.index, ticket.client
                    )
                })
            })
            .collect()
    }

    /// Starts an invocation from `client` without running the simulation.
    #[deprecated(note = "use `invoke_async(client, Invocation)` — the typed builder")]
    pub fn invoke_async_positional(
        &mut self,
        client: u64,
        target: DomainId,
        object_key: &[u8],
        interface: &str,
        operation: &str,
        args: Vec<Value>,
    ) {
        self.invoke_async(
            client,
            Invocation::of(target)
                .object(object_key)
                .interface(interface)
                .operation(operation)
                .args(args),
        );
    }

    /// Runs an invocation to completion and returns its outcome.
    #[deprecated(note = "use `invoke(client, Invocation)` — the typed builder")]
    pub fn invoke_positional(
        &mut self,
        client: u64,
        target: DomainId,
        object_key: &[u8],
        interface: &str,
        operation: &str,
        args: Vec<Value>,
    ) -> Completed {
        self.invoke(
            client,
            Invocation::of(target)
                .object(object_key)
                .interface(interface)
                .operation(operation)
                .args(args),
        )
    }

    /// Runs until the network is quiescent.
    ///
    /// # Panics
    ///
    /// Panics on livelock (step budget exhausted, configurable via
    /// [`SystemBuilder::settle_budget`]); the message names the nodes
    /// with undelivered work so the spin is attributable.
    pub fn settle(&mut self) {
        if self.sim.run_steps(self.settle_budget).is_err() {
            panic!(
                "system did not quiesce within {} steps (livelock?); pending work:\n{}",
                self.settle_budget,
                self.sim.pending_summary()
            );
        }
    }

    /// Replaces an expelled element of `domain` with a freshly keyed,
    /// empty-state honest element. Allocates a new global id and a new
    /// simulated node, takes the expelled node off the network (it may
    /// still hold its old slot's keys), asks the Group Manager group to
    /// admit the newcomer into the vacated slot, and starts the joiner
    /// in onboarding mode so it catches up via state transfer before it
    /// orders or votes. Returns the new element's id; run
    /// [`System::settle`] afterwards to let admission, rekeying, and
    /// catch-up complete — after which the domain again tolerates its
    /// full `f` faults.
    ///
    /// # Panics
    ///
    /// Panics if `replaced` is not on `domain`'s roster (never a member,
    /// or already replaced).
    pub fn spawn_replacement(&mut self, domain: DomainId, replaced: SenderId) -> SenderId {
        self.spawn_replacement_with(domain, replaced, Behavior::Honest)
    }

    /// [`System::spawn_replacement`] with an explicit behaviour — drills
    /// use this to prove a replaced slot can turn faulty *again* and the
    /// restored domain still masks it.
    pub fn spawn_replacement_with(
        &mut self,
        domain: DomainId,
        replaced: SenderId,
        behavior: Behavior,
    ) -> SenderId {
        let slot = self
            .fabric
            .domain(domain)
            .replica_index(replaced)
            .expect("replaced element is on the domain roster");
        let old_node = self.fabric.domain(domain).nodes[slot];
        let mcast = self.fabric.domain(domain).mcast;
        let admitted = SenderId(self.next_element);
        self.next_element += 1;
        let node = self.sim.add_process(Box::new(Idle));
        // the expelled process still holds its slot's BFT keys: take it
        // off the network before the newcomer assumes the slot, so it
        // cannot impersonate the replacement
        self.sim.replace_process(old_node, Box::new(Idle));
        self.sim.leave_group(old_node, mcast);
        // the host-side wiring copy adopts the new roster immediately;
        // running processes adopt it when f_gm+1 GM elements vouch
        self.fabric
            .apply_admission(domain, admitted, replaced, slot, node);
        let runtime = self
            .domain_runtime
            .get(&domain)
            .expect("replacement targets a declared server domain");
        let platform = runtime
            .platforms
            .as_ref()
            .map(|p| p[slot % p.len()])
            .unwrap_or_else(|| PlatformProfile::for_replica(slot));
        let cfg = ElementConfig {
            domain,
            index: slot,
            element: admitted,
            platform,
            behavior,
            ack_interval: self.ack_interval,
            queue_capacity: self.queue_capacity,
        };
        if !matches!(cfg.behavior, Behavior::Honest) {
            self.sim
                .fault_ledger_mut()
                .mark(u64::from(admitted.0), cfg.behavior.kind());
        }
        let servants = (runtime.factory)(slot);
        let mut element = ServerElement::new(self.fabric.clone(), cfg, servants);
        element.set_obs(self.obs.scoped(element_code(admitted)));
        element.begin_onboarding();
        element.request_admission(replaced);
        self.sim.replace_process(node, Box::new(element));
        self.sim.join_group(node, mcast);
        admitted
    }

    /// Mirrors the simulator's [`simnet::NetStats`] into the metrics
    /// registry (idempotent) and returns the combined JSON-lines dump.
    /// Empty string when observability is off.
    pub fn metrics_jsonl(&self) -> String {
        self.sim.stats().export_obs(&self.obs);
        self.obs.dump_jsonl()
    }

    /// Human-readable metric report (network counters included). Empty
    /// string when observability is off.
    pub fn metrics_report(&self) -> String {
        self.sim.stats().export_obs(&self.obs);
        self.obs.render_report()
    }

    /// The deployment map the forensic auditor runs against, derived
    /// from the fabric: every domain's fault bound, every element's
    /// domain/index/scope, and every client's scope.
    pub fn audit_topology(&self) -> itdos_audit::Topology {
        let mut topology = itdos_audit::Topology {
            gm_domain: self.fabric.gm_domain.0,
            ..itdos_audit::Topology::default()
        };
        for (id, spec) in &self.fabric.domains {
            topology.domain_f.insert(id.0, spec.f as u64);
            for (index, element) in spec.elements.iter().enumerate() {
                topology.elements.insert(
                    u64::from(element.0),
                    itdos_audit::ElementInfo {
                        domain: id.0,
                        index: index as u64,
                        scope: element_code(*element),
                    },
                );
            }
        }
        // retired (replaced) elements stay in the map: their signed
        // pre-replacement traffic must remain attributable to a slot
        for &(domain, element, slot) in &self.fabric.retired {
            topology
                .elements
                .entry(u64::from(element.0))
                .or_insert(itdos_audit::ElementInfo {
                    domain: domain.0,
                    index: slot as u64,
                    scope: element_code(element),
                });
        }
        for &id in self.client_nodes.keys() {
            topology.clients.insert(id, singleton_code(id));
        }
        topology
    }

    /// The full forensic dump: [`System::metrics_jsonl`] plus embedded
    /// `{"type":"topology",…}` records, so the file is self-describing
    /// and offline tools need no out-of-band process map. Empty string
    /// when observability is off.
    pub fn audit_jsonl(&self) -> String {
        if !self.obs.is_enabled() {
            return String::new();
        }
        let mut out = self.metrics_jsonl();
        self.audit_topology().to_jsonl(&mut out);
        out
    }

    /// Runs the forensic audit pipeline over this system's telemetry and
    /// exports the resulting `replica.health{element}` gauges back
    /// through the observability layer. An empty default report when
    /// observability is off.
    pub fn audit(&self) -> itdos_audit::AuditReport {
        if !self.obs.is_enabled() {
            return itdos_audit::AuditReport::default();
        }
        let auditor = itdos_audit::Auditor::new(self.audit_topology());
        let report = auditor
            .audit(&self.metrics_jsonl())
            .expect("a dump this system wrote must parse");
        report.export_health(&self.obs);
        report
    }

    /// Rendered forensic audit report — byte-identical across identical
    /// seeded runs. Empty string when observability is off.
    pub fn audit_report(&self) -> String {
        if !self.obs.is_enabled() {
            return String::new();
        }
        self.audit().render()
    }

    /// Immutable access to a client process.
    pub fn client(&self, id: u64) -> &SingletonClient {
        self.sim
            .process_ref::<SingletonClient>(self.client_nodes[&id])
    }

    /// Immutable access to a server element.
    pub fn element(&self, domain: DomainId, index: usize) -> &ServerElement {
        let node = self.fabric.domain(domain).nodes[index];
        self.sim.process_ref::<ServerElement>(node)
    }

    /// Immutable access to a GM element.
    pub fn gm_element(&self, index: usize) -> &GmElement {
        let node = self.fabric.domain(self.fabric.gm_domain).nodes[index];
        self.sim.process_ref::<GmElement>(node)
    }

    /// Mutable access to a GM element (compromise injection).
    pub fn gm_element_mut(&mut self, index: usize) -> &mut GmElement {
        let node = self.fabric.domain(self.fabric.gm_domain).nodes[index];
        self.sim.process_mut::<GmElement>(node)
    }
}

/// Placeholder process used during two-phase wiring.
#[derive(Debug)]
struct Idle;

impl simnet::Process for Idle {
    fn on_message(
        &mut self,
        _ctx: &mut simnet::Context<'_>,
        _from: NodeId,
        _payload: xbytes::Bytes,
    ) {
    }
}
