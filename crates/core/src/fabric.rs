//! The fabric: static deployment wiring shared by every process.
//!
//! A deployment is fixed at configuration time (the paper's §2.2
//! assumption that "authentication tokens for each process are adequately
//! protected" plus "ITDOS relies upon configuration inputs for its
//! pseudo-random functions"): which domains exist, which simulated node
//! hosts which element, every group's BFT provisioning seed, the global
//! pairwise-key seed, element signing keys, the DPRF verifier, the
//! interface repository, and the comparator registry.

use std::collections::BTreeMap;

use itdos_bft::auth::{AuthContext, KeyProvisioner};
use itdos_bft::config::GroupConfig;
use itdos_crypto::dprf::Verifier;
use itdos_crypto::keys::SymmetricKey;
use itdos_crypto::sign::{SigningKey, VerifyingKey};
use itdos_giop::idl::InterfaceRepository;
use itdos_groupmgr::membership::DomainId;
use itdos_vote::vote::{SenderId, Thresholds};
use simnet::{GroupId, NodeId};

use crate::codes::{bft_client_id, element_code};
use crate::registry::ComparatorRegistry;
use crate::wire::ConnectionMeta;

/// One replication domain's wiring.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Domain id.
    pub id: DomainId,
    /// Faults tolerated.
    pub f: usize,
    /// BFT group configuration.
    pub config: GroupConfig,
    /// BFT key-provisioning seed for this group.
    pub seed: [u8; 32],
    /// The domain's multicast group (one address per domain, §3.4).
    pub mcast: GroupId,
    /// Hosting node per replica index.
    pub nodes: Vec<NodeId>,
    /// Global element id per replica index.
    pub elements: Vec<SenderId>,
}

impl DomainSpec {
    /// The replica index of a global element id, if it belongs here.
    pub fn replica_index(&self, element: SenderId) -> Option<usize> {
        self.elements.iter().position(|e| *e == element)
    }
}

/// The full static wiring.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// All domains (servers, clients-as-domains, and the GM domain).
    pub domains: BTreeMap<DomainId, DomainSpec>,
    /// Endpoint code → hosting node (covers singletons and all elements).
    pub endpoint_nodes: BTreeMap<u64, NodeId>,
    /// The Group Manager's domain id.
    pub gm_domain: DomainId,
    /// The shared interface repository.
    pub repo: InterfaceRepository,
    /// Voting comparator programs.
    pub comparators: ComparatorRegistry,
    /// Public verifier for GM key shares.
    pub dprf_verifier: Verifier,
    /// Seed for pairwise keys and element signing keys.
    pub global_seed: [u8; 32],
    /// Elements retired by replica replacement: `(domain, element, slot)`
    /// in admission order. Kept so forensic tooling can still attribute a
    /// retired element's pre-replacement traffic.
    pub retired: Vec<(DomainId, SenderId, usize)>,
}

impl Fabric {
    /// The spec of a domain.
    ///
    /// # Panics
    ///
    /// Panics on an unknown domain — fabric wiring is static, so an
    /// unknown id is a deployment bug.
    pub fn domain(&self, id: DomainId) -> &DomainSpec {
        self.domains.get(&id).expect("domain wired in fabric")
    }

    /// The domain containing a global element id.
    pub fn domain_of_element(&self, element: SenderId) -> Option<&DomainSpec> {
        self.domains
            .values()
            .find(|d| d.elements.contains(&element))
    }

    /// The node hosting an endpoint code.
    pub fn node_of(&self, code: u64) -> Option<NodeId> {
        self.endpoint_nodes.get(&code).copied()
    }

    /// The symmetric pairwise key between two endpoint codes (used for GM
    /// share distribution and notices).
    pub fn pairwise(&self, a: u64, b: u64) -> SymmetricKey {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut label = Vec::with_capacity(24);
        label.extend_from_slice(b"pairwise");
        label.extend_from_slice(&lo.to_le_bytes());
        label.extend_from_slice(&hi.to_le_bytes());
        SymmetricKey::derive(&self.global_seed, &label)
    }

    /// The signing key of any endpoint code (elements and singletons).
    pub fn signing_key_code(&self, code: u64) -> SigningKey {
        SigningKey::from_seed(&[&self.global_seed[..], b"sign", &code.to_le_bytes()].concat())
    }

    /// The verifying key of any endpoint code.
    pub fn verifying_key_code(&self, code: u64) -> VerifyingKey {
        self.signing_key_code(code).verifying_key()
    }

    /// The signing key of a global element.
    pub fn signing_key(&self, element: SenderId) -> SigningKey {
        self.signing_key_code(element_code(element))
    }

    /// The verifying key of a global element.
    pub fn verifying_key(&self, element: SenderId) -> VerifyingKey {
        self.signing_key(element).verifying_key()
    }

    /// BFT auth context for replica `index` of `domain`.
    pub fn bft_auth_replica(&self, domain: DomainId, index: usize) -> AuthContext {
        let spec = self.domain(domain);
        AuthContext::for_replica(
            KeyProvisioner::new(spec.seed),
            itdos_bft::config::ReplicaId(index as u32),
            spec.config.n,
        )
    }

    /// BFT auth context for endpoint `code` acting as a client of
    /// `domain`'s ordering group.
    pub fn bft_auth_client(&self, domain: DomainId, code: u64) -> AuthContext {
        let spec = self.domain(domain);
        AuthContext::for_client(
            KeyProvisioner::new(spec.seed),
            bft_client_id(code),
            spec.config.n,
        )
    }

    /// Voting thresholds for traffic arriving over `meta` in the given
    /// direction: requests carry the *client side's* f, replies the
    /// *server side's* (§3.6 — the voter masks faults of the sending
    /// domain).
    pub fn sender_thresholds(
        &self,
        meta: &ConnectionMeta,
        kind: crate::wire::FrameKind,
    ) -> Thresholds {
        let f = match kind {
            crate::wire::FrameKind::Request => {
                meta.client_domain.map(|d| self.domain(d).f).unwrap_or(0)
            }
            crate::wire::FrameKind::Reply => self.domain(meta.server_domain).f,
        };
        Thresholds::new(f)
    }

    /// The endpoint codes of a domain's elements, in replica order.
    pub fn element_codes(&self, domain: DomainId) -> Vec<u64> {
        self.domain(domain)
            .elements
            .iter()
            .map(|e| element_code(*e))
            .collect()
    }

    /// Applies a GM-ordered admission to this process's wiring copy: the
    /// fresh element takes the replaced element's roster slot and node.
    /// Returns false (and changes nothing) unless `replaced` currently
    /// holds `slot` — which also makes re-application a no-op, so peers
    /// can apply the same notice-threshold event at most once.
    pub fn apply_admission(
        &mut self,
        domain: DomainId,
        admitted: SenderId,
        replaced: SenderId,
        slot: usize,
        node: NodeId,
    ) -> bool {
        let Some(spec) = self.domains.get_mut(&domain) else {
            return false;
        };
        if spec.elements.get(slot) != Some(&replaced) || spec.nodes.len() <= slot {
            return false;
        }
        spec.elements[slot] = admitted;
        spec.nodes[slot] = node;
        // the retired element keeps its endpoint_nodes entry so straggler
        // traffic still routes (and gets dropped by its receiver)
        self.endpoint_nodes.insert(element_code(admitted), node);
        self.retired.push((domain, replaced, slot));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_crypto::dprf::Dprf;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn fabric() -> Fabric {
        let mut domains = BTreeMap::new();
        let spec = DomainSpec {
            id: DomainId(1),
            f: 1,
            config: GroupConfig::for_f(1),
            seed: [1u8; 32],
            mcast: GroupId::from_raw(0),
            nodes: (0..4).map(NodeId::from_raw).collect(),
            elements: (0..4).map(SenderId).collect(),
        };
        domains.insert(DomainId(1), spec);
        let mut endpoint_nodes = BTreeMap::new();
        for i in 0..4u32 {
            endpoint_nodes.insert(element_code(SenderId(i)), NodeId::from_raw(i));
        }
        endpoint_nodes.insert(9, NodeId::from_raw(9));
        let dprf = Dprf::deal(1, 4, &mut SmallRng::seed_from_u64(1));
        Fabric {
            domains,
            endpoint_nodes,
            gm_domain: DomainId(1),
            repo: InterfaceRepository::new(),
            comparators: ComparatorRegistry::new(),
            dprf_verifier: dprf.verifier().clone(),
            global_seed: [9u8; 32],
            retired: Vec::new(),
        }
    }

    #[test]
    fn pairwise_is_symmetric_and_distinct() {
        let f = fabric();
        assert_eq!(f.pairwise(1, 2), f.pairwise(2, 1));
        assert_ne!(f.pairwise(1, 2), f.pairwise(1, 3));
    }

    #[test]
    fn element_lookup() {
        let f = fabric();
        assert_eq!(f.domain_of_element(SenderId(2)).unwrap().id, DomainId(1));
        assert!(f.domain_of_element(SenderId(99)).is_none());
        assert_eq!(f.domain(DomainId(1)).replica_index(SenderId(3)), Some(3));
    }

    #[test]
    fn signing_keys_are_per_element() {
        let f = fabric();
        assert_ne!(f.verifying_key(SenderId(0)), f.verifying_key(SenderId(1)));
        // deterministic
        assert_eq!(f.verifying_key(SenderId(0)), f.verifying_key(SenderId(0)));
    }

    #[test]
    fn thresholds_follow_sender_side() {
        let f = fabric();
        let meta = ConnectionMeta {
            connection: itdos_groupmgr::manager::ConnectionId(0),
            epoch: 0,
            client_code: 9,
            client_domain: None,
            server_domain: DomainId(1),
        };
        assert_eq!(
            f.sender_thresholds(&meta, crate::wire::FrameKind::Request)
                .f,
            0,
            "singleton client"
        );
        assert_eq!(
            f.sender_thresholds(&meta, crate::wire::FrameKind::Reply).f,
            1,
            "replicated server"
        );
    }

    #[test]
    fn apply_admission_swaps_the_slot() {
        let mut f = fabric();
        // wrong slot or wrong incumbent: refused, nothing changes
        assert!(!f.apply_admission(
            DomainId(1),
            SenderId(14),
            SenderId(3),
            2,
            NodeId::from_raw(8)
        ));
        assert!(!f.apply_admission(
            DomainId(9),
            SenderId(14),
            SenderId(3),
            3,
            NodeId::from_raw(8)
        ));
        assert!(f.apply_admission(
            DomainId(1),
            SenderId(14),
            SenderId(3),
            3,
            NodeId::from_raw(8)
        ));
        let spec = f.domain(DomainId(1));
        assert_eq!(spec.elements[3], SenderId(14));
        assert_eq!(spec.nodes[3], NodeId::from_raw(8));
        assert_eq!(spec.replica_index(SenderId(14)), Some(3));
        assert_eq!(spec.replica_index(SenderId(3)), None);
        assert_eq!(
            f.node_of(element_code(SenderId(14))),
            Some(NodeId::from_raw(8))
        );
        assert_eq!(
            f.node_of(element_code(SenderId(3))),
            Some(NodeId::from_raw(3)),
            "retired element still routable for stragglers"
        );
        assert_eq!(f.retired, vec![(DomainId(1), SenderId(3), 3)]);
        // a second application of the same notice is a no-op
        assert!(!f.apply_admission(
            DomainId(1),
            SenderId(14),
            SenderId(3),
            3,
            NodeId::from_raw(8)
        ));
        assert_eq!(f.retired.len(), 1);
    }

    #[test]
    fn auth_contexts_interoperate() {
        let f = fabric();
        let replica = f.bft_auth_replica(DomainId(1), 2);
        let client = f.bft_auth_client(DomainId(1), 9);
        let env = client.mac_envelope(vec![1, 2, 3]);
        assert!(replica.verify(&env));
    }
}
