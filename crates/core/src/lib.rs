//! # itdos — Intrusion Tolerant Distributed Object System middleware
//!
//! The integrated reproduction of the DSN 2002 ITDOS architecture: CORBA
//! middleware whose transport is a Byzantine-fault-tolerant totally
//! ordered multicast, with voting on unmarshalled messages so replicas may
//! run on heterogeneous platforms, and threshold-cryptographic key
//! generation by a replicated Group Manager.
//!
//! The protocol stack (paper Figure 2), bottom-up:
//!
//! 1. **IP multicast** — [`simnet`]'s multicast groups;
//! 2. **Secure Reliable Multicast** — [`itdos_bft`]'s PBFT with the
//!    message-queue state machine;
//! 3. **ITDOS sockets / SMIOP** — [`wire::SmiopFrame`]s: per-connection
//!    symmetric encryption and element signatures over GIOP frames,
//!    submitted as queue operations ([`element`], [`client`]);
//! 4. **Voter** — per-connection collation of unmarshalled values
//!    ([`itdos_vote`], folded via [`itdos_vote::folding`]);
//! 5. **Marshalling** — [`itdos_giop`]'s CDR in each replica's native
//!    byte order;
//! 6. **IT-ORB** — [`itdos_orb`] with continuation-based servants for
//!    nested invocations.
//!
//! Plus the **Group Manager** replication domain ([`gm`]) handling
//! connection establishment (Figure 3), threshold keying, and expulsion,
//! and the **firewall proxy** ([`firewall`]) at enclave boundaries.
//!
//! # Examples
//!
//! A singleton client invoking a heterogeneous replicated counter
//! (Figure 1 end to end):
//!
//! ```
//! use itdos::system::SystemBuilder;
//! use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
//! use itdos_giop::types::{TypeDesc, Value};
//! use itdos_groupmgr::membership::DomainId;
//! use itdos_orb::object::ObjectKey;
//! use itdos_orb::servant::FnServant;
//!
//! let mut repo = InterfaceRepository::new();
//! repo.register(InterfaceDef::new("Counter").with_operation(OperationDef::new(
//!     "add",
//!     vec![("delta".into(), TypeDesc::Long)],
//!     TypeDesc::Long,
//! )));
//!
//! let mut builder = SystemBuilder::new(42);
//! builder.repository(repo);
//! builder.add_domain(
//!     DomainId(1),
//!     1, // tolerate one Byzantine element among 4 replicas
//!     Box::new(|_replica| {
//!         let mut total = 0i32;
//!         vec![(
//!             ObjectKey::from_name("counter"),
//!             Box::new(FnServant::new("Counter", move |_, args| {
//!                 if let Value::Long(d) = args[0] {
//!                     total += d;
//!                 }
//!                 Ok(Value::Long(total))
//!             })) as Box<dyn itdos_orb::servant::Servant>,
//!         )]
//!     }),
//! );
//! builder.add_client(1);
//! let mut system = builder.build();
//!
//! let done = system.invoke(
//!     1,
//!     itdos::Invocation::of(DomainId(1))
//!         .object(b"counter")
//!         .interface("Counter")
//!         .operation("add")
//!         .arg(Value::Long(5)),
//! );
//! assert_eq!(done.result, Ok(Value::Long(5)));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codes;
pub mod element;
pub mod fabric;
pub mod fault;
pub mod firewall;
pub mod gm;
pub mod invocation;
pub mod keying;
pub mod outbound;
pub mod registry;
pub mod system;
pub mod wire;

pub use client::{ClientConfig, Completed, SingletonClient};
pub use element::{ElementConfig, ServerElement};
pub use fabric::Fabric;
pub use fault::Behavior;
pub use invocation::{Invocation, Ticket};
pub use itdos_obs::ObsConfig;
pub use system::{System, SystemBuilder, GM_DOMAIN};
