//! The IT-CORBA firewall proxy.
//!
//! Figure 1 places an "IT-CORBA Proxy" at each enclave boundary that "can
//! monitor BFTM messages at the enclave boundary" (§1; the paper defers
//! details for brevity). We implement the stated function: a relay that
//! admits only well-formed ITDOS traffic, filters by destination policy,
//! and rate-limits — dropping everything else before it reaches the
//! protected enclave.

use std::collections::BTreeSet;

use simnet::{Context, NodeId, Process, SimTime};
use xbytes::Bytes;

use crate::wire::CoreMsg;

/// Filtering policy for one firewall.
#[derive(Debug, Clone)]
pub struct FirewallPolicy {
    /// Nodes inside the enclave this proxy protects.
    pub protected: BTreeSet<NodeId>,
    /// Maximum admitted messages per simulated millisecond (0 = no limit).
    pub rate_limit_per_ms: u32,
}

/// Per-firewall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirewallStats {
    /// Messages relayed into the enclave.
    pub admitted: u64,
    /// Malformed frames dropped.
    pub dropped_malformed: u64,
    /// Frames dropped by rate limiting.
    pub dropped_rate: u64,
    /// Frames addressed to nodes outside the policy.
    pub dropped_policy: u64,
}

/// An enclave-boundary relay: senders outside the enclave address the
/// firewall with `[8-byte destination node][CoreMsg bytes]`; the firewall
/// validates and forwards.
#[derive(Debug)]
pub struct Firewall {
    policy: FirewallPolicy,
    window_start: SimTime,
    window_count: u32,
    /// Counters (inspect after a run).
    pub stats: FirewallStats,
}

impl Firewall {
    /// Creates a firewall with the given policy.
    pub fn new(policy: FirewallPolicy) -> Firewall {
        Firewall {
            policy,
            window_start: SimTime::ZERO,
            window_count: 0,
            stats: FirewallStats::default(),
        }
    }

    /// Frames a message for transit through a firewall.
    pub fn frame(destination: NodeId, msg: &CoreMsg) -> Bytes {
        let inner = msg.encode();
        let mut out = Vec::with_capacity(8 + inner.len());
        out.extend_from_slice(&(destination.as_raw() as u64).to_le_bytes());
        out.extend_from_slice(&inner);
        Bytes::from(out)
    }
}

impl Process for Firewall {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        if payload.len() < 9 {
            self.stats.dropped_malformed += 1;
            return;
        }
        let dest_raw = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let destination = NodeId::from_raw(dest_raw as u32);
        // only well-formed ITDOS traffic passes the boundary
        if CoreMsg::decode(&payload[8..]).is_err() {
            self.stats.dropped_malformed += 1;
            return;
        }
        if !self.policy.protected.contains(&destination) {
            self.stats.dropped_policy += 1;
            return;
        }
        if self.policy.rate_limit_per_ms > 0 {
            let now = ctx.now();
            if now.since(self.window_start).as_micros() >= 1_000 {
                self.window_start = now;
                self.window_count = 0;
            }
            if self.window_count >= self.policy.rate_limit_per_ms {
                self.stats.dropped_rate += 1;
                return;
            }
            self.window_count += 1;
        }
        self.stats.admitted += 1;
        ctx.send_labeled(destination, payload.slice(8..), "firewall-relay");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_groupmgr::membership::DomainId;
    use simnet::Simulator;

    struct Sink {
        got: u32,
    }

    impl Process for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {
            self.got += 1;
        }
    }

    fn valid_msg() -> CoreMsg {
        CoreMsg::Bft {
            domain: DomainId(1),
            envelope: vec![1, 2, 3],
        }
    }

    fn setup(rate: u32) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(1);
        let inside = sim.add_process(Box::new(Sink { got: 0 }));
        let mut protected = BTreeSet::new();
        protected.insert(inside);
        let fw = sim.add_process(Box::new(Firewall::new(FirewallPolicy {
            protected,
            rate_limit_per_ms: rate,
        })));
        (sim, inside, fw)
    }

    #[test]
    fn valid_traffic_is_relayed() {
        let (mut sim, inside, fw) = setup(0);
        sim.inject(fw, Firewall::frame(inside, &valid_msg()));
        sim.run();
        assert_eq!(sim.process_ref::<Sink>(inside).got, 1);
        assert_eq!(sim.process_ref::<Firewall>(fw).stats.admitted, 1);
    }

    #[test]
    fn malformed_traffic_is_dropped() {
        let (mut sim, inside, fw) = setup(0);
        sim.inject(fw, Bytes::from_static(&[0u8; 20]));
        sim.inject(fw, Bytes::from_static(&[1, 2]));
        sim.run();
        assert_eq!(sim.process_ref::<Sink>(inside).got, 0);
        assert_eq!(sim.process_ref::<Firewall>(fw).stats.dropped_malformed, 2);
    }

    #[test]
    fn policy_blocks_unprotected_destinations() {
        let (mut sim, inside, fw) = setup(0);
        let outsider = NodeId::from_raw(99);
        sim.inject(fw, Firewall::frame(outsider, &valid_msg()));
        sim.run();
        assert_eq!(sim.process_ref::<Sink>(inside).got, 0);
        assert_eq!(sim.process_ref::<Firewall>(fw).stats.dropped_policy, 1);
    }

    #[test]
    fn rate_limit_caps_flood() {
        let (mut sim, inside, fw) = setup(3);
        for _ in 0..10 {
            sim.inject(fw, Firewall::frame(inside, &valid_msg()));
        }
        sim.run();
        assert_eq!(sim.process_ref::<Sink>(inside).got, 3);
        assert_eq!(sim.process_ref::<Firewall>(fw).stats.dropped_rate, 7);
    }
}
