//! Core wire formats: fabric-level messages, SMIOP frames, Group Manager
//! operations and directives, and fault-proof serialization.

use itdos_bft::wire::{Reader, WireError, Writer};
use itdos_crypto::sign::{Signature, VerifyingKey};
use itdos_groupmgr::manager::ConnectionId;
use itdos_groupmgr::membership::{DomainId, Endpoint};
use itdos_vote::detector::{FaultProof, SignedReply};
use itdos_vote::vote::SenderId;

use crate::codes::{code_endpoint, endpoint_code};

/// A message traveling on the simulated network between core processes.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreMsg {
    /// A BFT protocol envelope belonging to `domain`'s group.
    Bft {
        /// Whose ordering group this envelope belongs to.
        domain: DomainId,
        /// Encoded [`itdos_bft::auth::Envelope`].
        envelope: Vec<u8>,
    },
    /// One Group Manager element's key share for a connection keying.
    KeyShare(KeyShareMsg),
    /// A reply sent directly from a server element to a singleton client.
    DirectReply(DirectReplyMsg),
    /// A Group Manager notice (e.g. expulsion), authenticated per GM
    /// element via the pairwise channel.
    Notice(NoticeMsg),
    /// A Group Manager admission notice: a fresh element replaced an
    /// expelled one; carries the roster update every endpoint applies.
    AdmitNotice(AdmitNoticeMsg),
}

/// Connection metadata carried with every key distribution so endpoints
/// can configure their voters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionMeta {
    /// Connection id.
    pub connection: ConnectionId,
    /// Keying epoch.
    pub epoch: u32,
    /// Endpoint code of the client side.
    pub client_code: u64,
    /// The client's domain when replicated.
    pub client_domain: Option<DomainId>,
    /// The serving domain.
    pub server_domain: DomainId,
}

/// One GM element's (encrypted) key share delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyShareMsg {
    /// Connection metadata.
    pub meta: ConnectionMeta,
    /// Which GM element sent this (its endpoint code).
    pub gm_code: u64,
    /// `seal(pairwise(gm, recipient), nonce, share.to_bytes())`.
    pub sealed: Vec<u8>,
}

/// A server element's reply to a singleton client.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectReplyMsg {
    /// Connection the reply belongs to.
    pub connection: ConnectionId,
    /// Keying epoch used for the seal.
    pub epoch: u32,
    /// Sending element.
    pub sender: SenderId,
    /// Per-sender signing sequence (replay protection in proofs).
    pub sequence: u64,
    /// `seal(conn_key, nonce, giop_frame)`.
    pub sealed: Vec<u8>,
    /// Signature over `(sender, sequence, giop_frame)` (the raw frame, so
    /// the client can forward it in a fault proof).
    pub signature: Signature,
}

/// Group Manager notices pushed to domain elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoticeMsg {
    /// Which GM element sent it.
    pub gm_code: u64,
    /// The affected domain.
    pub domain: DomainId,
    /// The expelled element.
    pub expelled: SenderId,
    /// `seal(pairwise(gm, recipient), nonce, notice-bytes)` — integrity tag.
    pub sealed: Vec<u8>,
}

/// A Group Manager admission notice pushed to domain elements and clients:
/// the roster update for a replacement, applied once `f_gm + 1` distinct GM
/// elements concur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmitNoticeMsg {
    /// Which GM element sent it.
    pub gm_code: u64,
    /// The domain regaining an element.
    pub domain: DomainId,
    /// The freshly admitted element.
    pub admitted: SenderId,
    /// The expelled element it replaces.
    pub replaced: SenderId,
    /// The roster slot (replica index) being reused.
    pub slot: u32,
    /// The node the replacement runs on.
    pub node: u64,
    /// The domain's new membership epoch.
    pub epoch: u64,
    /// The replacement's verifying key, for roster updates.
    pub verifying_key: VerifyingKey,
    /// `seal(pairwise(gm, recipient), nonce, notice-bytes)` — integrity tag.
    pub sealed: Vec<u8>,
}

/// The kind of GIOP traffic inside an SMIOP frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A CORBA request flowing client → server domain.
    Request,
    /// A CORBA reply flowing server domain → client domain (nested
    /// invocations; singleton clients get [`DirectReplyMsg`] instead).
    Reply,
}

/// An SMIOP frame: what travels as the BFT operation payload
/// (`QueueOp::Deliver` bytes) through a domain's ordering group.
#[derive(Debug, Clone, PartialEq)]
pub struct SmiopFrame {
    /// Connection id.
    pub connection: ConnectionId,
    /// Keying epoch.
    pub epoch: u32,
    /// Request or reply.
    pub kind: FrameKind,
    /// Endpoint code of the logical sender.
    pub sender_code: u64,
    /// Per-connection request id (strictly increasing, §3.6).
    pub request_id: u64,
    /// Per-sender signing sequence.
    pub sequence: u64,
    /// `seal(conn_key, nonce, giop_frame)`.
    pub sealed: Vec<u8>,
    /// Signature over `(sender, sequence, giop_frame)`.
    pub signature: Signature,
}

/// Operations submitted to the Group Manager's ordering group.
#[derive(Debug, Clone, PartialEq)]
pub enum GmOp {
    /// Open (or reuse) a connection (Figure 3 step 1).
    Open {
        /// Requesting endpoint.
        client: Endpoint,
        /// The client's domain when replicated.
        client_domain: Option<DomainId>,
        /// Target domain.
        target: DomainId,
    },
    /// A singleton's change_request with proof (§3.6).
    ChangeProof(FaultProof),
    /// A domain element's change_request (no proof; GM votes).
    ChangeVote {
        /// Accusing element.
        accuser: SenderId,
        /// Accused element.
        accused: SenderId,
    },
    /// Close a connection.
    Close(ConnectionId),
    /// A fresh element's request to replace an expelled one (the joiner
    /// submits this as a GM client; the GM's ordering group totally orders
    /// the admission so every GM element applies it identically).
    Admit {
        /// The degraded domain to rejoin.
        domain: DomainId,
        /// The fresh element's id.
        replacement: SenderId,
        /// The expelled element whose slot it takes.
        replaced: SenderId,
        /// The node the replacement runs on.
        node: u64,
        /// The replacement's verifying key.
        verifying_key: VerifyingKey,
    },
}

/// Directives the deterministic GM state machine emits; every GM element
/// acts on them identically (plus its private share evaluation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Distribute key shares for a connection keying.
    KeyDist {
        /// Connection metadata for the recipients.
        meta: ConnectionMeta,
        /// The common DPRF input.
        input: [u8; 32],
        /// Recipient endpoint codes.
        recipients: Vec<u64>,
    },
    /// The request was refused (reason code for diagnostics).
    Refused(u32),
    /// An element was expelled.
    Expelled {
        /// Its domain.
        domain: DomainId,
        /// The element.
        element: SenderId,
    },
    /// A change vote was recorded but the threshold is not yet reached.
    VoteRecorded,
    /// A fresh element was admitted into an expelled slot; emitted before
    /// the rekeying [`Directive::KeyDist`]s so recipients update their
    /// rosters before new key shares arrive.
    Admitted {
        /// The domain regaining an element.
        domain: DomainId,
        /// The freshly admitted element.
        element: SenderId,
        /// The expelled element it replaces.
        replaced: SenderId,
        /// The roster slot (replica index) being reused.
        slot: u32,
        /// The node the replacement runs on.
        node: u64,
        /// The domain's new membership epoch.
        epoch: u64,
        /// The replacement's verifying key.
        verifying_key: VerifyingKey,
    },
}

// --------------------------------------------------------------- encoding

fn write_option_domain(w: &mut Writer, d: Option<DomainId>) {
    match d {
        Some(d) => {
            w.u8(1);
            w.u64(d.0);
        }
        None => {
            w.u8(0);
        }
    }
}

fn read_option_domain(r: &mut Reader<'_>) -> Result<Option<DomainId>, WireError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(DomainId(r.u64()?)),
        _ => return Err(WireError),
    })
}

fn write_meta(w: &mut Writer, m: &ConnectionMeta) {
    w.u64(m.connection.0);
    w.u32(m.epoch);
    w.u64(m.client_code);
    write_option_domain(w, m.client_domain);
    w.u64(m.server_domain.0);
}

fn read_meta(r: &mut Reader<'_>) -> Result<ConnectionMeta, WireError> {
    Ok(ConnectionMeta {
        connection: ConnectionId(r.u64()?),
        epoch: r.u32()?,
        client_code: r.u64()?,
        client_domain: read_option_domain(r)?,
        server_domain: DomainId(r.u64()?),
    })
}

impl CoreMsg {
    /// Encodes for the network.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CoreMsg::Bft { domain, envelope } => {
                w.u8(1);
                w.u64(domain.0);
                w.bytes(envelope);
            }
            CoreMsg::KeyShare(m) => {
                w.u8(2);
                write_meta(&mut w, &m.meta);
                w.u64(m.gm_code);
                w.bytes(&m.sealed);
            }
            CoreMsg::DirectReply(m) => {
                w.u8(3);
                w.u64(m.connection.0);
                w.u32(m.epoch);
                w.u32(m.sender.0);
                w.u64(m.sequence);
                w.bytes(&m.sealed);
                w.raw(&m.signature.to_bytes());
            }
            CoreMsg::Notice(m) => {
                w.u8(4);
                w.u64(m.gm_code);
                w.u64(m.domain.0);
                w.u32(m.expelled.0);
                w.bytes(&m.sealed);
            }
            CoreMsg::AdmitNotice(m) => {
                w.u8(5);
                w.u64(m.gm_code);
                w.u64(m.domain.0);
                w.u32(m.admitted.0);
                w.u32(m.replaced.0);
                w.u32(m.slot);
                w.u64(m.node);
                w.u64(m.epoch);
                w.raw(&m.verifying_key.to_bytes());
                w.bytes(&m.sealed);
            }
        }
        w.finish()
    }

    /// Decodes from the network.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformation.
    pub fn decode(bytes: &[u8]) -> Result<CoreMsg, WireError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            1 => CoreMsg::Bft {
                domain: DomainId(r.u64()?),
                envelope: r.bytes()?.to_vec(),
            },
            2 => CoreMsg::KeyShare(KeyShareMsg {
                meta: read_meta(&mut r)?,
                gm_code: r.u64()?,
                sealed: r.bytes()?.to_vec(),
            }),
            3 => CoreMsg::DirectReply(DirectReplyMsg {
                connection: ConnectionId(r.u64()?),
                epoch: r.u32()?,
                sender: SenderId(r.u32()?),
                sequence: r.u64()?,
                sealed: r.bytes()?.to_vec(),
                signature: Signature::from_bytes(r.raw(16)?.try_into().expect("16 bytes")),
            }),
            4 => CoreMsg::Notice(NoticeMsg {
                gm_code: r.u64()?,
                domain: DomainId(r.u64()?),
                expelled: SenderId(r.u32()?),
                sealed: r.bytes()?.to_vec(),
            }),
            5 => CoreMsg::AdmitNotice(AdmitNoticeMsg {
                gm_code: r.u64()?,
                domain: DomainId(r.u64()?),
                admitted: SenderId(r.u32()?),
                replaced: SenderId(r.u32()?),
                slot: r.u32()?,
                node: r.u64()?,
                epoch: r.u64()?,
                verifying_key: VerifyingKey::from_bytes(r.raw(8)?.try_into().expect("8 bytes")),
                sealed: r.bytes()?.to_vec(),
            }),
            _ => return Err(WireError),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

impl SmiopFrame {
    /// Encodes the frame (the BFT operation payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.connection.0);
        w.u32(self.epoch);
        w.u8(match self.kind {
            FrameKind::Request => 0,
            FrameKind::Reply => 1,
        });
        w.u64(self.sender_code);
        w.u64(self.request_id);
        w.u64(self.sequence);
        w.bytes(&self.sealed);
        w.raw(&self.signature.to_bytes());
        w.finish()
    }

    /// Decodes a frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<SmiopFrame, WireError> {
        let mut r = Reader::new(bytes);
        let frame = SmiopFrame {
            connection: ConnectionId(r.u64()?),
            epoch: r.u32()?,
            kind: match r.u8()? {
                0 => FrameKind::Request,
                1 => FrameKind::Reply,
                _ => return Err(WireError),
            },
            sender_code: r.u64()?,
            request_id: r.u64()?,
            sequence: r.u64()?,
            sealed: r.bytes()?.to_vec(),
            signature: Signature::from_bytes(r.raw(16)?.try_into().expect("16 bytes")),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

fn write_signed_reply(w: &mut Writer, m: &SignedReply) {
    w.u32(m.sender.0);
    w.u64(m.sequence);
    w.bytes(&m.frame);
    w.raw(&m.signature.to_bytes());
}

fn read_signed_reply(r: &mut Reader<'_>) -> Result<SignedReply, WireError> {
    Ok(SignedReply {
        sender: SenderId(r.u32()?),
        sequence: r.u64()?,
        frame: r.bytes()?.to_vec(),
        signature: Signature::from_bytes(r.raw(16)?.try_into().expect("16 bytes")),
    })
}

/// Encodes a fault proof for transport to the Group Manager.
pub fn encode_proof(proof: &FaultProof) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(proof.accused.len() as u32);
    for a in &proof.accused {
        w.u32(a.0);
    }
    w.u64(proof.request_id);
    w.u32(proof.messages.len() as u32);
    for m in &proof.messages {
        write_signed_reply(&mut w, m);
    }
    w.finish()
}

const MAX_PROOF_ITEMS: u32 = 1024;

/// Decodes a fault proof.
///
/// # Errors
///
/// [`WireError`] on malformed bytes or hostile lengths.
pub fn decode_proof(bytes: &[u8]) -> Result<FaultProof, WireError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()?;
    if n > MAX_PROOF_ITEMS {
        return Err(WireError);
    }
    let mut accused = Vec::with_capacity(n as usize);
    for _ in 0..n {
        accused.push(SenderId(r.u32()?));
    }
    let request_id = r.u64()?;
    let n = r.u32()?;
    if n > MAX_PROOF_ITEMS {
        return Err(WireError);
    }
    let mut messages = Vec::with_capacity(n as usize);
    for _ in 0..n {
        messages.push(read_signed_reply(&mut r)?);
    }
    r.expect_end()?;
    Ok(FaultProof {
        accused,
        request_id,
        messages,
    })
}

impl GmOp {
    /// Encodes for the GM ordering group.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            GmOp::Open {
                client,
                client_domain,
                target,
            } => {
                w.u8(1);
                w.u64(endpoint_code(*client));
                write_option_domain(&mut w, *client_domain);
                w.u64(target.0);
            }
            GmOp::ChangeProof(proof) => {
                w.u8(2);
                w.bytes(&encode_proof(proof));
            }
            GmOp::ChangeVote { accuser, accused } => {
                w.u8(3);
                w.u32(accuser.0);
                w.u32(accused.0);
            }
            GmOp::Close(c) => {
                w.u8(4);
                w.u64(c.0);
            }
            GmOp::Admit {
                domain,
                replacement,
                replaced,
                node,
                verifying_key,
            } => {
                w.u8(5);
                w.u64(domain.0);
                w.u32(replacement.0);
                w.u32(replaced.0);
                w.u64(*node);
                w.raw(&verifying_key.to_bytes());
            }
        }
        w.finish()
    }

    /// Decodes a GM operation.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<GmOp, WireError> {
        let mut r = Reader::new(bytes);
        let op = match r.u8()? {
            1 => GmOp::Open {
                client: code_endpoint(r.u64()?),
                client_domain: read_option_domain(&mut r)?,
                target: DomainId(r.u64()?),
            },
            2 => GmOp::ChangeProof(decode_proof(r.bytes()?)?),
            3 => GmOp::ChangeVote {
                accuser: SenderId(r.u32()?),
                accused: SenderId(r.u32()?),
            },
            4 => GmOp::Close(ConnectionId(r.u64()?)),
            5 => GmOp::Admit {
                domain: DomainId(r.u64()?),
                replacement: SenderId(r.u32()?),
                replaced: SenderId(r.u32()?),
                node: r.u64()?,
                verifying_key: VerifyingKey::from_bytes(r.raw(8)?.try_into().expect("8 bytes")),
            },
            _ => return Err(WireError),
        };
        r.expect_end()?;
        Ok(op)
    }
}

/// Encodes a directive list (the GM state machine's execution result).
pub fn encode_directives(directives: &[Directive]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(directives.len() as u32);
    for d in directives {
        match d {
            Directive::KeyDist {
                meta,
                input,
                recipients,
            } => {
                w.u8(1);
                write_meta(&mut w, meta);
                w.raw(input);
                w.u32(recipients.len() as u32);
                for r in recipients {
                    w.u64(*r);
                }
            }
            Directive::Refused(code) => {
                w.u8(2);
                w.u32(*code);
            }
            Directive::Expelled { domain, element } => {
                w.u8(3);
                w.u64(domain.0);
                w.u32(element.0);
            }
            Directive::VoteRecorded => {
                w.u8(4);
            }
            Directive::Admitted {
                domain,
                element,
                replaced,
                slot,
                node,
                epoch,
                verifying_key,
            } => {
                w.u8(5);
                w.u64(domain.0);
                w.u32(element.0);
                w.u32(replaced.0);
                w.u32(*slot);
                w.u64(*node);
                w.u64(*epoch);
                w.raw(&verifying_key.to_bytes());
            }
        }
    }
    w.finish()
}

/// Decodes a directive list.
///
/// # Errors
///
/// [`WireError`] on malformed bytes.
pub fn decode_directives(bytes: &[u8]) -> Result<Vec<Directive>, WireError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()?;
    if n > MAX_PROOF_ITEMS {
        return Err(WireError);
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(match r.u8()? {
            1 => {
                let meta = read_meta(&mut r)?;
                let input: [u8; 32] = r.raw(32)?.try_into().expect("32 bytes");
                let k = r.u32()?;
                if k > MAX_PROOF_ITEMS {
                    return Err(WireError);
                }
                let mut recipients = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    recipients.push(r.u64()?);
                }
                Directive::KeyDist {
                    meta,
                    input,
                    recipients,
                }
            }
            2 => Directive::Refused(r.u32()?),
            3 => Directive::Expelled {
                domain: DomainId(r.u64()?),
                element: SenderId(r.u32()?),
            },
            4 => Directive::VoteRecorded,
            5 => Directive::Admitted {
                domain: DomainId(r.u64()?),
                element: SenderId(r.u32()?),
                replaced: SenderId(r.u32()?),
                slot: r.u32()?,
                node: r.u64()?,
                epoch: r.u64()?,
                verifying_key: VerifyingKey::from_bytes(r.raw(8)?.try_into().expect("8 bytes")),
            },
            _ => return Err(WireError),
        });
    }
    r.expect_end()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_crypto::sign::SigningKey;

    fn sig() -> Signature {
        SigningKey::from_seed(b"s").sign(b"m")
    }

    fn meta() -> ConnectionMeta {
        ConnectionMeta {
            connection: ConnectionId(7),
            epoch: 2,
            client_code: 42,
            client_domain: Some(DomainId(3)),
            server_domain: DomainId(1),
        }
    }

    #[test]
    fn core_msgs_round_trip() {
        let msgs = vec![
            CoreMsg::Bft {
                domain: DomainId(1),
                envelope: vec![1, 2, 3],
            },
            CoreMsg::KeyShare(KeyShareMsg {
                meta: meta(),
                gm_code: 1_000_050,
                sealed: vec![9; 60],
            }),
            CoreMsg::DirectReply(DirectReplyMsg {
                connection: ConnectionId(7),
                epoch: 0,
                sender: SenderId(3),
                sequence: 11,
                sealed: vec![8; 50],
                signature: sig(),
            }),
            CoreMsg::Notice(NoticeMsg {
                gm_code: 1_000_051,
                domain: DomainId(1),
                expelled: SenderId(3),
                sealed: vec![2; 48],
            }),
            CoreMsg::AdmitNotice(AdmitNoticeMsg {
                gm_code: 1_000_051,
                domain: DomainId(1),
                admitted: SenderId(14),
                replaced: SenderId(3),
                slot: 3,
                node: 22,
                epoch: 1,
                verifying_key: SigningKey::from_seed(b"r").verifying_key(),
                sealed: vec![6; 48],
            }),
        ];
        for m in msgs {
            assert_eq!(CoreMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn smiop_frame_round_trips() {
        for kind in [FrameKind::Request, FrameKind::Reply] {
            let f = SmiopFrame {
                connection: ConnectionId(1),
                epoch: 3,
                kind,
                sender_code: 1_000_002,
                request_id: 5,
                sequence: 77,
                sealed: vec![1, 2, 3],
                signature: sig(),
            };
            assert_eq!(SmiopFrame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn gm_ops_round_trip() {
        let proof = FaultProof {
            accused: vec![SenderId(3)],
            request_id: 9,
            messages: vec![SignedReply {
                sender: SenderId(0),
                sequence: 1,
                frame: vec![5, 5],
                signature: sig(),
            }],
        };
        let ops = vec![
            GmOp::Open {
                client: Endpoint::Singleton(9),
                client_domain: None,
                target: DomainId(1),
            },
            GmOp::Open {
                client: Endpoint::Element(SenderId(4)),
                client_domain: Some(DomainId(2)),
                target: DomainId(1),
            },
            GmOp::ChangeProof(proof),
            GmOp::ChangeVote {
                accuser: SenderId(0),
                accused: SenderId(3),
            },
            GmOp::Close(ConnectionId(2)),
            GmOp::Admit {
                domain: DomainId(1),
                replacement: SenderId(14),
                replaced: SenderId(3),
                node: 22,
                verifying_key: SigningKey::from_seed(b"r").verifying_key(),
            },
        ];
        for op in ops {
            assert_eq!(GmOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn directives_round_trip() {
        let ds = vec![
            Directive::KeyDist {
                meta: meta(),
                input: [7u8; 32],
                recipients: vec![1, 1_000_000],
            },
            Directive::Refused(2),
            Directive::Expelled {
                domain: DomainId(1),
                element: SenderId(3),
            },
            Directive::VoteRecorded,
            Directive::Admitted {
                domain: DomainId(1),
                element: SenderId(14),
                replaced: SenderId(3),
                slot: 3,
                node: 22,
                epoch: 1,
                verifying_key: SigningKey::from_seed(b"r").verifying_key(),
            },
        ];
        assert_eq!(decode_directives(&encode_directives(&ds)).unwrap(), ds);
    }

    #[test]
    fn truncated_admission_messages_rejected() {
        let full = GmOp::Admit {
            domain: DomainId(1),
            replacement: SenderId(14),
            replaced: SenderId(3),
            node: 22,
            verifying_key: SigningKey::from_seed(b"r").verifying_key(),
        }
        .encode();
        for cut in 1..full.len() {
            assert!(GmOp::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        let notice = CoreMsg::AdmitNotice(AdmitNoticeMsg {
            gm_code: 1_000_051,
            domain: DomainId(1),
            admitted: SenderId(14),
            replaced: SenderId(3),
            slot: 3,
            node: 22,
            epoch: 1,
            verifying_key: SigningKey::from_seed(b"r").verifying_key(),
            sealed: vec![6; 48],
        })
        .encode();
        for cut in 1..notice.len() {
            assert!(CoreMsg::decode(&notice[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(CoreMsg::decode(&[]).is_err());
        assert!(CoreMsg::decode(&[99]).is_err());
        assert!(SmiopFrame::decode(&[1]).is_err());
        assert!(GmOp::decode(&[9]).is_err());
        assert!(decode_directives(&[0, 0, 0]).is_err());
        // hostile length
        let mut w = Writer::new();
        w.u32(u32::MAX);
        assert!(decode_proof(&w.finish()).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = GmOp::Close(ConnectionId(1)).encode();
        bytes.push(0);
        assert!(GmOp::decode(&bytes).is_err());
    }
}
