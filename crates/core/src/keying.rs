//! Endpoint-side key-share assembly.
//!
//! §3.5: "The clients and server replication domain elements each decrypt
//! the messages from the Group Manager replication domain, verify the
//! correctness of the key shares they receive, and combine the shares to
//! form the communication key." Shares are grouped by the common input
//! they claim (so up to f corrupt GM elements announcing a bogus input
//! cannot stall the honest majority's assembly), verified against the
//! public DPRF commitments, and combined once `f_gm + 1` verified shares
//! agree.

use std::collections::BTreeMap;

use itdos_crypto::dprf::{combine, KeyShare};
use itdos_crypto::keys::CommunicationKey;
use itdos_crypto::symmetric::{open, Sealed};
use itdos_groupmgr::manager::ConnectionId;
use itdos_obs::{LabelValue, Obs};

use crate::fabric::Fabric;
use crate::wire::{ConnectionMeta, KeyShareMsg};

#[derive(Default)]
struct Assembly {
    by_input: BTreeMap<[u8; 32], BTreeMap<u64, KeyShare>>,
}

/// Span id for one `(connection, epoch)` assembly at one endpoint. The
/// endpoint's own code is mixed in (FNV-1a over the three words) because
/// the client and every server element assemble shares for the *same*
/// `(connection, epoch)` concurrently against one shared recorder — the
/// spans must not clobber each other.
fn assembly_span_id(my_code: u64, connection: ConnectionId, epoch: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [my_code, connection.0, u64::from(epoch)] {
        h = (h ^ word).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Collects and combines key shares addressed to one endpoint.
#[derive(Default)]
pub struct ShareBank {
    my_code: u64,
    assemblies: BTreeMap<(ConnectionId, u32), Assembly>,
    obs: Obs,
}

impl std::fmt::Debug for ShareBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShareBank")
            .field("pending", &self.assemblies.len())
            .finish()
    }
}

impl ShareBank {
    /// Creates a bank for the endpoint with the given code.
    pub fn new(my_code: u64) -> ShareBank {
        ShareBank {
            my_code,
            assemblies: BTreeMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// Installs an instrumentation sink (share verification / combination
    /// counters and assembly latency).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Offers one share message. Returns the assembled communication key
    /// the first time `f_gm + 1` verified, input-consistent shares are
    /// present for this `(connection, epoch)`.
    pub fn offer(
        &mut self,
        fabric: &Fabric,
        msg: &KeyShareMsg,
    ) -> Option<(ConnectionMeta, CommunicationKey)> {
        self.obs.incr("key.shares_received", &[]);
        let pairwise = fabric.pairwise(msg.gm_code, self.my_code);
        let sealed = Sealed::from_bytes(&msg.sealed)?;
        let plain = open(&pairwise, &sealed).ok()?;
        if plain.len() != 32 + 28 {
            return None;
        }
        let input: [u8; 32] = plain[..32].try_into().expect("32 bytes");
        let share = KeyShare::from_bytes(plain[32..].try_into().expect("28 bytes"))?;
        if !fabric.dprf_verifier.verify(&input, &share) {
            // corrupt GM element's share: discarded (§3.5)
            self.obs.incr("key.shares_rejected", &[]);
            self.obs.event(
                "key.share_rejected",
                &[
                    ("gm_code", LabelValue::U64(msg.gm_code)),
                    ("connection", LabelValue::U64(msg.meta.connection.0)),
                ],
            );
            return None;
        }
        self.obs.incr("key.shares_verified", &[]);
        let span_id = assembly_span_id(self.my_code, msg.meta.connection, msg.meta.epoch);
        if !self
            .assemblies
            .contains_key(&(msg.meta.connection, msg.meta.epoch))
        {
            self.obs.span_begin("key.assemble_us", span_id);
        }
        let assembly = self
            .assemblies
            .entry((msg.meta.connection, msg.meta.epoch))
            .or_default();
        assembly
            .by_input
            .entry(input)
            .or_default()
            .insert(msg.gm_code, share);
        let needed = fabric.dprf_verifier.threshold();
        let group = assembly.by_input.get(&input)?;
        if group.len() < needed {
            return None;
        }
        let shares: Vec<KeyShare> = group.values().take(needed).copied().collect();
        let key = match combine(&fabric.dprf_verifier, &input, &shares) {
            Ok(key) => key,
            Err(_) => {
                // verified shares that still fail to combine: abandon the
                // timing rather than leaving the span open forever
                self.obs.span_cancel("key.assemble_us", span_id);
                return None;
            }
        };
        self.assemblies
            .remove(&(msg.meta.connection, msg.meta.epoch));
        self.obs.span_end("key.assemble_us", span_id, &[]);
        self.obs.incr("key.combined", &[]);
        self.obs.event(
            "key.combined",
            &[
                ("connection", LabelValue::U64(msg.meta.connection.0)),
                ("epoch", LabelValue::U64(u64::from(msg.meta.epoch))),
            ],
        );
        Some((msg.meta, CommunicationKey(key)))
    }
}
