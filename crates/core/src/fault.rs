//! Byzantine fault injection for replication domain elements.
//!
//! These behaviours model the §2.1 threat: "any threats that would cause
//! an observable deviation in expected server behavior". They are applied
//! at the reply-emission point of a server element, leaving the BFT layer
//! honest — a compromised *application* above a correct transport, the
//! hardest case for the voter (transport-level misbehaviour is already
//! masked by PBFT itself).

use itdos_giop::types::Value;
use simnet::SimDuration;

/// A server element's (mis)behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Correct operation.
    Honest,
    /// Replies carry corrupted result values (detected by value voting).
    CorruptValue,
    /// The element never replies (masked by the 2f+1 rule; eventually a
    /// laggard under queue GC).
    Silent,
    /// Replies are delayed by the given span (the "deliberately slow"
    /// process of §3.6 — must not stall the voter).
    Slow(SimDuration),
    /// The element replies correctly to even request ids and corruptly to
    /// odd ones (intermittent faults are the hardest to pin).
    Intermittent,
}

impl Behavior {
    /// Short static name, used as the fault kind in the simulator's
    /// ground-truth [`simnet::ledger::FaultLedger`].
    pub fn kind(&self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::CorruptValue => "corrupt-value",
            Behavior::Silent => "silent",
            Behavior::Slow(_) => "slow",
            Behavior::Intermittent => "intermittent",
        }
    }

    /// True when replies should be suppressed entirely.
    pub fn is_silent(&self) -> bool {
        matches!(self, Behavior::Silent)
    }

    /// The reply delay, when behaving slow.
    pub fn delay(&self) -> Option<SimDuration> {
        match self {
            Behavior::Slow(d) => Some(*d),
            _ => None,
        }
    }

    /// Applies value corruption for the given request id, if this
    /// behaviour corrupts.
    pub fn corrupt(&self, request_id: u64, value: &Value) -> Option<Value> {
        let active = match self {
            Behavior::CorruptValue => true,
            Behavior::Intermittent => request_id % 2 == 1,
            _ => false,
        };
        if !active {
            return None;
        }
        Some(corrupt_value(value))
    }
}

/// Deterministically corrupts a value (so a *group* of colluding faulty
/// replicas produces matching wrong answers — the strongest attack, since
/// up to f matching bad values can try to out-vote the truth).
pub fn corrupt_value(value: &Value) -> Value {
    match value {
        Value::Void => Value::Void,
        Value::Octet(v) => Value::Octet(v.wrapping_add(1)),
        Value::Boolean(v) => Value::Boolean(!v),
        Value::Short(v) => Value::Short(v.wrapping_add(1)),
        Value::UShort(v) => Value::UShort(v.wrapping_add(1)),
        Value::Long(v) => Value::Long(v.wrapping_add(1_000_000)),
        Value::ULong(v) => Value::ULong(v.wrapping_add(1_000_000)),
        Value::LongLong(v) => Value::LongLong(v.wrapping_add(1_000_000_000)),
        Value::ULongLong(v) => Value::ULongLong(v.wrapping_add(1_000_000_000)),
        Value::Float(v) => Value::Float(v * 2.0 + 1.0),
        Value::Double(v) => Value::Double(v * 2.0 + 1.0),
        Value::String(v) => Value::String(format!("{v}-corrupted")),
        Value::Sequence(items) => Value::Sequence(items.iter().map(corrupt_value).collect()),
        Value::Struct(items) => Value::Struct(items.iter().map(corrupt_value).collect()),
        Value::Enum(d) => Value::Enum(d.wrapping_add(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_never_corrupts() {
        assert_eq!(Behavior::Honest.corrupt(1, &Value::Long(5)), None);
        assert!(!Behavior::Honest.is_silent());
        assert_eq!(Behavior::Honest.delay(), None);
    }

    #[test]
    fn corrupt_value_changes_every_kind() {
        let cases = [
            Value::Octet(1),
            Value::Boolean(true),
            Value::Long(0),
            Value::Double(1.0),
            Value::String("x".into()),
            Value::Sequence(vec![Value::Long(1)]),
            Value::Struct(vec![Value::Short(2)]),
            Value::Enum(0),
        ];
        for v in cases {
            assert_ne!(corrupt_value(&v), v, "{v:?}");
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let v = Value::Struct(vec![Value::Long(7), Value::Double(2.0)]);
        assert_eq!(corrupt_value(&v), corrupt_value(&v));
    }

    #[test]
    fn intermittent_corrupts_odd_requests_only() {
        let b = Behavior::Intermittent;
        assert_eq!(b.corrupt(2, &Value::Long(5)), None);
        assert!(b.corrupt(3, &Value::Long(5)).is_some());
    }

    #[test]
    fn slow_exposes_delay() {
        let b = Behavior::Slow(SimDuration::from_millis(5));
        assert_eq!(b.delay(), Some(SimDuration::from_millis(5)));
        assert!(!b.is_silent());
    }

    #[test]
    fn silent_is_silent() {
        assert!(Behavior::Silent.is_silent());
        assert_eq!(Behavior::Silent.corrupt(1, &Value::Long(1)), None);
    }
}
