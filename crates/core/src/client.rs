//! The singleton (unreplicated) CORBA client.
//!
//! The paper's nominal configuration (Figure 1): a singleton client
//! invokes on a replicated server. The client's stack: connection
//! establishment through the Group Manager (Figure 3), SMIOP framing over
//! the server's ordering group, a per-connection voter that decides on
//! `f+1` equivalent of ≥ `2f+1` direct replies, and — when it detects a
//! faulty value — a `change_request` carrying the signed-message proof
//! (§3.6).

use std::collections::{BTreeMap, VecDeque};

use itdos_crypto::hash::Digest;
use itdos_crypto::keys::CommunicationKey;
use itdos_crypto::sign::SigningKey;
use itdos_crypto::symmetric::{open, seal, Sealed};
use itdos_giop::cdr::Endianness;
use itdos_giop::giop::{decode_message, encode_message, GiopMessage, ReplyBody, RequestMessage};
use itdos_giop::platform::PlatformProfile;
use itdos_giop::types::Value;
use itdos_groupmgr::manager::ConnectionId;
use itdos_groupmgr::membership::{DomainId, Endpoint};
use itdos_obs::{LabelValue, Obs};
use itdos_vote::collator::{Accept, Collator};
use itdos_vote::detector::{FaultProof, SignedReply};
use itdos_vote::folding::{folded_comparator, reply_to_value, value_to_reply};
use itdos_vote::vote::SenderId;
use simnet::{Context, NodeId, Process, Timer};
use xbytes::Bytes;

use crate::codes::{pack_timer, singleton_code, unpack_timer, TimerTag};
use crate::fabric::Fabric;
use crate::outbound::Outbound;
use crate::wire::{ConnectionMeta, CoreMsg, DirectReplyMsg, FrameKind, GmOp, SmiopFrame};

/// A finished invocation as observed by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The per-connection request id.
    pub request_id: u64,
    /// The target domain.
    pub target: DomainId,
    /// The voted result (`Err` carries the exception name).
    pub result: Result<Value, String>,
    /// Elements whose reply dissented from the decided value.
    pub suspects: Vec<SenderId>,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Singleton client id (also its endpoint code).
    pub id: u64,
    /// The platform the client runs on.
    pub platform: PlatformProfile,
    /// Whether detected faults trigger an automatic `change_request` with
    /// proof to the Group Manager.
    pub auto_proof: bool,
}

struct ConnState {
    meta: ConnectionMeta,
    key: CommunicationKey,
    next_request_id: u64,
}

struct Outstanding {
    target: DomainId,
    connection: ConnectionId,
    request_id: u64,
    collator: Collator,
    frames: BTreeMap<SenderId, SignedReply>,
    proof_sent: bool,
    decided: bool,
    /// The decided result, held until every older round has also decided
    /// so `completed` always lists invocations in submission order.
    completion: Option<Completed>,
}

/// Span id for one invocation: request ids are assigned per connection by
/// the GM, so the connection is mixed in (FNV-1a) — two connections whose
/// request ids overlap must not share a span slot.
fn invoke_span_id(connection: ConnectionId, request_id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [connection.0, request_id] {
        h = (h ^ word).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Encodes an invocation command for [`simnet::Simulator::inject`]: the
/// target domain followed by a GIOP request frame.
///
/// # Panics
///
/// Panics if the request does not match the repository (caller bug).
pub fn encode_command(
    fabric: &Fabric,
    target: DomainId,
    object_key: &[u8],
    interface: &str,
    operation: &str,
    args: Vec<Value>,
) -> Bytes {
    let request = RequestMessage {
        request_id: 0, // assigned by the client when sent
        response_expected: true,
        object_key: object_key.to_vec(),
        interface: interface.into(),
        operation: operation.into(),
        args,
    };
    let frame = encode_message(
        &GiopMessage::Request(request),
        &fabric.repo,
        Endianness::Little,
    )
    .expect("command matches the interface repository");
    let mut out = Vec::with_capacity(8 + frame.len());
    out.extend_from_slice(&target.0.to_le_bytes());
    out.extend_from_slice(&frame);
    Bytes::from(out)
}

/// A singleton client process.
pub struct SingletonClient {
    fabric: Fabric,
    cfg: ClientConfig,
    signing: SigningKey,
    sequence: u64,
    outbound: BTreeMap<DomainId, Outbound>,
    conns_by_target: BTreeMap<DomainId, ConnState>,
    shares: crate::keying::ShareBank,
    queue: VecDeque<(DomainId, RequestMessage)>,
    /// In-flight (and recently decided) invocation rounds, submission
    /// order. At most `pipeline` rounds are undecided at a time; decided
    /// rounds linger to flag late faulty stragglers until the next pump.
    rounds: VecDeque<Outstanding>,
    /// How many invocations may be undecided concurrently (default 1, the
    /// classic §3.6 one-outstanding-request-per-connection model).
    pipeline: usize,
    opens_requested: std::collections::BTreeSet<DomainId>,
    /// Admission notices by (admitted, epoch) → attesting GM codes.
    admit_notices: BTreeMap<(SenderId, u64), std::collections::BTreeSet<u64>>,
    /// Admissions already applied to our fabric copy.
    admissions_applied: std::collections::BTreeSet<(SenderId, u64)>,
    /// Targets of our in-flight GM submissions, oldest first (`Some` for
    /// an `Open`, `None` for other ops). The GM channel is a serialized
    /// FIFO, so accepted results pair with these in order — used to close
    /// out the `conn.open_us` span when the GM refuses an open.
    gm_pending: VecDeque<Option<DomainId>>,
    obs: Obs,
    /// Finished invocations, oldest first.
    pub completed: Vec<Completed>,
    /// Fault proofs submitted to the Group Manager.
    pub proofs_sent: u64,
}

impl std::fmt::Debug for SingletonClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingletonClient")
            .field("id", &self.cfg.id)
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl SingletonClient {
    /// Creates a client.
    pub fn new(fabric: Fabric, cfg: ClientConfig) -> SingletonClient {
        let code = singleton_code(cfg.id);
        let signing = fabric.signing_key_code(code);
        let mut outbound = BTreeMap::new();
        outbound.insert(
            fabric.gm_domain,
            Outbound::new(&fabric, fabric.gm_domain, code),
        );
        SingletonClient {
            fabric,
            cfg,
            signing,
            sequence: 0,
            outbound,
            conns_by_target: BTreeMap::new(),
            shares: crate::keying::ShareBank::new(code),
            queue: VecDeque::new(),
            rounds: VecDeque::new(),
            pipeline: 1,
            opens_requested: std::collections::BTreeSet::new(),
            admit_notices: BTreeMap::new(),
            admissions_applied: std::collections::BTreeSet::new(),
            gm_pending: VecDeque::new(),
            obs: Obs::disabled(),
            completed: Vec::new(),
            proofs_sent: 0,
        }
    }

    /// Installs an instrumentation sink (Figure 3 connection phases,
    /// per-invocation reply latency, fault-proof counters).
    pub fn set_obs(&mut self, obs: Obs) {
        self.shares.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Sets how many invocations may be in flight concurrently (clamped to
    /// at least 1). Outbound BFT channels widen to match, so a batching
    /// primary can order several of this client's requests per sequence
    /// number; results still land in `completed` in submission order.
    pub fn set_pipeline(&mut self, pipeline: usize) {
        self.pipeline = pipeline.max(1);
        for outbound in self.outbound.values_mut() {
            outbound.set_window(self.pipeline);
        }
    }

    /// The configured invocation pipeline depth.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    fn my_code(&self) -> u64 {
        singleton_code(self.cfg.id)
    }

    fn obs_label(&self) -> [itdos_obs::Label; 1] {
        [("client", LabelValue::U64(self.cfg.id))]
    }

    /// True when no invocation is queued or awaiting a decision (decided
    /// rounds retained for late-fault flagging count as idle).
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.rounds.iter().all(|o| o.decided)
    }

    fn submit_gm(&mut self, ctx: &mut Context<'_>, op: GmOp) {
        let fabric = self.fabric.clone();
        let gm = fabric.gm_domain;
        let code = self.my_code();
        self.gm_pending.push_back(match &op {
            GmOp::Open { target, .. } => Some(*target),
            _ => None,
        });
        self.outbound
            .entry(gm)
            .or_insert_with(|| Outbound::new(&fabric, gm, code))
            .submit(ctx, &fabric, op.encode());
    }

    fn on_command(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        if payload.len() < 8 {
            return;
        }
        let target = DomainId(u64::from_le_bytes(
            payload[..8].try_into().expect("8 bytes"),
        ));
        let Ok(GiopMessage::Request(request)) = decode_message(&payload[8..], &self.fabric.repo)
        else {
            return;
        };
        self.queue.push_back((target, request));
        self.ensure_connection(ctx, target);
        self.pump(ctx);
    }

    fn ensure_connection(&mut self, ctx: &mut Context<'_>, target: DomainId) {
        if self.conns_by_target.contains_key(&target) || !self.opens_requested.insert(target) {
            return;
        }
        // Figure 3 phase 1: open_request to the GM ordering group; the
        // span closes when the combined communication key arrives
        self.obs.incr("conn.opens", &self.obs_label());
        self.obs.span_begin("conn.open_us", target.0);
        self.obs.event(
            "conn.open_request",
            &[
                ("client", LabelValue::U64(self.cfg.id)),
                ("target", LabelValue::U64(target.0)),
            ],
        );
        let op = GmOp::Open {
            client: Endpoint::Singleton(self.cfg.id),
            client_domain: None,
            target,
        };
        self.submit_gm(ctx, op);
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        loop {
            let undecided = self.rounds.iter().filter(|o| !o.decided).count();
            if undecided >= self.pipeline {
                return;
            }
            let Some((target, _)) = self.queue.front() else {
                return;
            };
            let target = *target;
            if !self.conns_by_target.contains_key(&target) {
                return; // waiting for keys
            }
            // decided rounds whose results were already released linger to
            // keep collating late straggler replies (the auditor's stall
            // evidence); they are garbage-collected only when new work
            // actually starts (§3.6 generalized to a bounded pipeline)
            while self
                .rounds
                .front()
                .is_some_and(|o| o.decided && o.completion.is_none())
            {
                self.rounds.pop_front();
            }
            let (_, mut request) = self.queue.pop_front().expect("front exists");
            let conn = self.conns_by_target.get_mut(&target).expect("checked");
            request.request_id = conn.next_request_id;
            conn.next_request_id += 1;
            let meta = conn.meta;
            let key = conn.key;
            let thresholds = self.fabric.sender_thresholds(&meta, FrameKind::Reply);
            let comparator = folded_comparator(
                self.fabric
                    .comparators
                    .for_interface(&request.interface)
                    .clone(),
            );
            let mut collator = Collator::new(thresholds, comparator);
            collator.set_obs(self.obs.clone());
            collator.begin(request.request_id);
            self.rounds.push_back(Outstanding {
                target,
                connection: meta.connection,
                request_id: request.request_id,
                collator,
                frames: BTreeMap::new(),
                proof_sent: false,
                decided: false,
                completion: None,
            });
            self.obs.incr("client.requests", &self.obs_label());
            self.obs.span_begin(
                "invoke.reply_us",
                invoke_span_id(meta.connection, request.request_id),
            );
            self.send_request(ctx, meta, key, &request);
            // re-send later if replies do not arrive (lost DirectReply copies)
            ctx.set_timer(
                self.fabric
                    .domain(target)
                    .config
                    .view_timeout
                    .saturating_mul(8),
                pack_timer(TimerTag::ClientRetry, request.request_id),
            );
        }
    }

    /// Pushes decided results into `completed` in submission order.
    fn release(&mut self) {
        for round in self.rounds.iter_mut() {
            if !round.decided {
                break;
            }
            if let Some(completion) = round.completion.take() {
                self.completed.push(completion);
            }
        }
    }

    fn send_request(
        &mut self,
        ctx: &mut Context<'_>,
        meta: ConnectionMeta,
        key: CommunicationKey,
        request: &RequestMessage,
    ) {
        let Ok(giop_bytes) = encode_message(
            &GiopMessage::Request(request.clone()),
            &self.fabric.repo,
            self.cfg.platform.endianness,
        ) else {
            return;
        };
        self.sequence += 1;
        let sequence = self.sequence;
        let sender = crate::element::vote_sender(self.my_code());
        let signature =
            SignedReply::sign(&self.signing, sender, sequence, giop_bytes.clone()).signature;
        let nonce = self.nonce(meta.connection, meta.epoch, request.request_id, sequence);
        let sealed = seal(&key.0, nonce, &giop_bytes);
        let frame = SmiopFrame {
            connection: meta.connection,
            epoch: meta.epoch,
            kind: FrameKind::Request,
            sender_code: self.my_code(),
            request_id: request.request_id,
            sequence,
            sealed: sealed.to_bytes(),
            signature,
        };
        let op = itdos_bft::queue::QueueOp::Deliver(frame.encode()).encode();
        let fabric = self.fabric.clone();
        let code = self.my_code();
        let pipeline = self.pipeline;
        let outbound = self.outbound.entry(meta.server_domain).or_insert_with(|| {
            let mut o = Outbound::new(&fabric, meta.server_domain, code);
            o.set_window(pipeline);
            o
        });
        outbound.submit(ctx, &fabric, op);
    }

    fn nonce(&self, conn: ConnectionId, epoch: u32, request_id: u64, sequence: u64) -> [u8; 16] {
        let d = Digest::of_parts(&[
            b"itdos-nonce",
            &self.my_code().to_le_bytes(),
            &conn.0.to_le_bytes(),
            &epoch.to_le_bytes(),
            &request_id.to_le_bytes(),
            &sequence.to_le_bytes(),
        ]);
        d.0[..16].try_into().expect("16 bytes")
    }

    fn handle_direct_reply(&mut self, ctx: &mut Context<'_>, msg: DirectReplyMsg) {
        let Some(conn) = self
            .conns_by_target
            .values()
            .find(|c| c.meta.connection == msg.connection && c.meta.epoch == msg.epoch)
        else {
            return;
        };
        let conn_key = conn.key;
        let Some(sealed) = Sealed::from_bytes(&msg.sealed) else {
            return;
        };
        let Ok(giop_bytes) = open(&conn_key.0, &sealed) else {
            return;
        };
        let signed = SignedReply {
            sender: msg.sender,
            sequence: msg.sequence,
            frame: giop_bytes.clone(),
            signature: msg.signature,
        };
        if !signed.verify(&self.fabric.verifying_key(msg.sender)) {
            return;
        }
        let Ok(GiopMessage::Reply(reply)) = decode_message(&giop_bytes, &self.fabric.repo) else {
            return;
        };
        // route to the round this reply answers; an unmatched reply is a
        // late straggler for an already-collected round (§3.6: discarded
        // without penalty)
        let Some(idx) = self
            .rounds
            .iter()
            .position(|o| o.connection == msg.connection && o.request_id == reply.request_id)
        else {
            return;
        };
        let value = reply_to_value(&reply);
        let round = &mut self.rounds[idx];
        round.frames.insert(msg.sender, signed);
        let accept = round.collator.offer(reply.request_id, msg.sender, value);
        match accept {
            Accept::Decided(decision) => {
                let request_id = round.request_id;
                let connection = round.connection;
                let target = round.target;
                let suspects = decision.dissenters.clone();
                let result = match value_to_reply(request_id, &decision.value) {
                    Some(reply) => match reply.body {
                        ReplyBody::Result(v) => Ok(v),
                        ReplyBody::UserException { name } => Err(name),
                        ReplyBody::SystemException { minor } => Err(format!("SYSTEM:{minor}")),
                    },
                    None => Err("undecodable decision".into()),
                };
                round.decided = true;
                round.completion = Some(Completed {
                    request_id,
                    target,
                    result,
                    suspects: suspects.clone(),
                });
                self.obs.span_end(
                    "invoke.reply_us",
                    invoke_span_id(connection, request_id),
                    &self.obs_label(),
                );
                self.obs.incr("client.completed", &self.obs_label());
                self.obs.event(
                    "client.decided",
                    &[
                        ("client", LabelValue::U64(self.cfg.id)),
                        ("request", LabelValue::U64(request_id)),
                        ("suspects", LabelValue::U64(suspects.len() as u64)),
                    ],
                );
                if self.cfg.auto_proof && !suspects.is_empty() {
                    self.send_proof(ctx, idx, &suspects);
                }
                // decided rounds keep collecting late replies for fault
                // flagging; their results release strictly in submission
                // order so `completed` stays FIFO under pipelining
                self.release();
                self.pump(ctx);
            }
            Accept::Late { suspect: Some(s) } => {
                // a slow faulty value arrived after the decision
                if self.cfg.auto_proof {
                    self.send_proof(ctx, idx, &[s]);
                }
            }
            _ => {}
        }
    }

    fn send_proof(&mut self, ctx: &mut Context<'_>, round_idx: usize, accused: &[SenderId]) {
        let Some(round) = self.rounds.get_mut(round_idx) else {
            return;
        };
        if round.proof_sent {
            return;
        }
        round.proof_sent = true;
        let request_id = round.request_id;
        let messages: Vec<SignedReply> = round.frames.values().cloned().collect();
        self.obs
            .incr("client.proofs", &[("client", LabelValue::U64(self.cfg.id))]);
        self.obs.event(
            "client.proof",
            &[
                ("client", LabelValue::U64(self.cfg.id)),
                ("request", LabelValue::U64(request_id)),
                ("accused", LabelValue::U64(accused.len() as u64)),
            ],
        );
        // one record per accused sender: the count above sizes the proof,
        // these name its targets so an offline auditor can correlate the
        // client's signed-message evidence with voter dissents
        for s in accused {
            self.obs.event(
                "client.accused",
                &[
                    ("client", LabelValue::U64(self.cfg.id)),
                    ("request", LabelValue::U64(request_id)),
                    ("accused", LabelValue::U64(u64::from(s.0))),
                ],
            );
        }
        let proof = FaultProof {
            accused: accused.to_vec(),
            request_id,
            messages,
        };
        self.proofs_sent += 1;
        self.submit_gm(ctx, GmOp::ChangeProof(proof));
    }

    /// Handles the ordered result of one of our GM submissions (paired
    /// with `gm_pending` in FIFO order). A refused `Open` will never key:
    /// cancel its Figure-3 span instead of leaking it, and forget the
    /// attempt so a later command may retry.
    fn on_gm_result(&mut self, result: &[u8]) {
        let pending_open = self.gm_pending.pop_front().flatten();
        let Ok(directives) = crate::wire::decode_directives(result) else {
            return;
        };
        let refused = directives
            .iter()
            .any(|d| matches!(d, crate::wire::Directive::Refused(_)));
        if refused {
            if let Some(target) = pending_open {
                self.obs.span_cancel("conn.open_us", target.0);
                self.obs.incr("conn.refused", &self.obs_label());
                self.obs.event(
                    "conn.open_refused",
                    &[
                        ("client", LabelValue::U64(self.cfg.id)),
                        ("target", LabelValue::U64(target.0)),
                    ],
                );
                self.opens_requested.remove(&target);
            }
        }
    }

    fn handle_key_share(&mut self, ctx: &mut Context<'_>, msg: crate::wire::KeyShareMsg) {
        let Some((meta, key)) = self.shares.offer(&self.fabric, &msg) else {
            return;
        };
        let target = meta.server_domain;
        let is_new_or_newer = self
            .conns_by_target
            .get(&target)
            .map_or(true, |c| meta.epoch >= c.meta.epoch);
        if !is_new_or_newer {
            return;
        }
        let next_request_id = self
            .conns_by_target
            .get(&target)
            .map(|c| c.next_request_id)
            .unwrap_or(1);
        self.conns_by_target.insert(
            target,
            ConnState {
                meta,
                key,
                next_request_id,
            },
        );
        // Figure 3 phases 2–4 complete: the key is combined and the
        // virtual connection is usable
        self.obs.span_end(
            "conn.open_us",
            target.0,
            &[
                ("client", LabelValue::U64(self.cfg.id)),
                ("target", LabelValue::U64(target.0)),
            ],
        );
        self.obs.event(
            "conn.keyed",
            &[
                ("client", LabelValue::U64(self.cfg.id)),
                ("target", LabelValue::U64(target.0)),
                ("epoch", LabelValue::U64(u64::from(meta.epoch))),
            ],
        );
        self.pump(ctx);
    }

    /// A GM element vouches for a replica replacement on a domain we talk
    /// to. At `f_gm + 1` distinct attestations at least one correct GM
    /// element agrees, so the roster change was really ordered: swap the
    /// slot in our fabric copy so reply voting and routing follow the new
    /// roster.
    fn handle_admit_notice(&mut self, msg: crate::wire::AdmitNoticeMsg) {
        let pairwise = self.fabric.pairwise(msg.gm_code, self.my_code());
        let Some(sealed) = Sealed::from_bytes(&msg.sealed) else {
            return;
        };
        let Ok(plain) = open(&pairwise, &sealed) else {
            return;
        };
        let expect = crate::element::admit_notice_plaintext(
            msg.domain,
            msg.admitted,
            msg.replaced,
            msg.slot,
            msg.node,
            msg.epoch,
            &msg.verifying_key,
        );
        if plain != expect {
            return;
        }
        let votes = self
            .admit_notices
            .entry((msg.admitted, msg.epoch))
            .or_default();
        votes.insert(msg.gm_code);
        let gm_f = self.fabric.domain(self.fabric.gm_domain).f;
        if votes.len() > gm_f && self.admissions_applied.insert((msg.admitted, msg.epoch)) {
            self.fabric.apply_admission(
                msg.domain,
                msg.admitted,
                msg.replaced,
                msg.slot as usize,
                NodeId::from_raw(msg.node as u32),
            );
            self.obs
                .incr("client.admissions_applied", &self.obs_label());
            self.obs.event(
                "client.admission_applied",
                &[
                    ("client", LabelValue::U64(self.cfg.id)),
                    ("admitted", LabelValue::U64(u64::from(msg.admitted.0))),
                    ("replaced", LabelValue::U64(u64::from(msg.replaced.0))),
                    ("epoch", LabelValue::U64(msg.epoch)),
                ],
            );
        }
    }
}

impl Process for SingletonClient {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        if from.is_external() {
            self.on_command(ctx, &payload);
            return;
        }
        let Ok(msg) = CoreMsg::decode(&payload) else {
            return;
        };
        match msg {
            CoreMsg::Bft { domain, envelope } => {
                if let Some(outbound) = self.outbound.get_mut(&domain) {
                    let fabric = self.fabric.clone();
                    outbound.on_reply(ctx, &fabric, &envelope);
                    let accepted = outbound.take_accepted();
                    if domain == self.fabric.gm_domain {
                        for result in accepted {
                            self.on_gm_result(&result);
                        }
                    }
                }
            }
            CoreMsg::KeyShare(m) => self.handle_key_share(ctx, m),
            CoreMsg::DirectReply(m) => self.handle_direct_reply(ctx, m),
            CoreMsg::Notice(_) => {}
            CoreMsg::AdmitNotice(m) => self.handle_admit_notice(m),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        let Some((tag, param)) = unpack_timer(timer.kind) else {
            return;
        };
        match tag {
            TimerTag::Retransmit => {
                let fabric = self.fabric.clone();
                if let Some(outbound) = self.outbound.get_mut(&DomainId(param)) {
                    outbound.on_retransmit_timer(ctx, &fabric);
                }
            }
            TimerTag::ClientRetry => {
                // the request with this id may still be undecided: re-send
                let undecided = self
                    .rounds
                    .iter()
                    .find(|o| o.request_id == param && !o.decided);
                if let Some(round) = undecided {
                    let target = round.target;
                    let request_id = round.request_id;
                    if let Some(conn) = self.conns_by_target.get(&target) {
                        // rebuild is unnecessary: replicas resend cached
                        // replies when the same op is re-ordered; simplest
                        // faithful retry is re-arming the timer and letting
                        // the BFT layer's retransmission finish the job
                        let _ = (conn, request_id);
                    }
                    ctx.set_timer(
                        self.fabric
                            .domain(target)
                            .config
                            .view_timeout
                            .saturating_mul(8),
                        pack_timer(TimerTag::ClientRetry, param),
                    );
                }
            }
            _ => {}
        }
    }
}
