//! The Group Manager element process.
//!
//! GM elements form their own replication domain (§3.3): every element
//! processes the same totally-ordered stream of [`GmOp`]s through a PBFT
//! replica whose state machine is the deterministic
//! [`itdos_groupmgr::GroupManager`]. The *only* per-element divergence is
//! each element's private DPRF share: when the ordered state machine emits
//! a [`Directive::KeyDist`], each element evaluates **its own** share on
//! the common input and sends it, over its pairwise-secure channel, to
//! every recipient (§3.5 — no element ever sees a whole key).

use itdos_bft::auth::{AuthContext, Envelope, Peer};
use itdos_bft::message::Message;
use itdos_bft::replica::{Output, Replica};
use itdos_bft::state::StateMachine;
use itdos_crypto::dprf::Shareholder;
use itdos_crypto::hash::Digest;
use itdos_crypto::symmetric::seal;
use itdos_giop::giop::{decode_message, GiopMessage};
use itdos_giop::idl::InterfaceRepository;
use itdos_groupmgr::manager::GroupManager;
use itdos_groupmgr::membership::{DomainId, Membership};
use itdos_obs::{LabelValue, Obs};
use itdos_vote::vote::SenderId;
use simnet::{Context, NodeId, Process, Timer};
use xbytes::Bytes;

use crate::codes::{element_code, endpoint_code, pack_timer, unpack_timer, TimerTag};
use crate::element::notice_plaintext;
use crate::fabric::Fabric;
use crate::registry::ComparatorRegistry;
use crate::wire::{
    encode_directives, AdmitNoticeMsg, ConnectionMeta, CoreMsg, Directive, GmOp, KeyShareMsg,
    NoticeMsg,
};

/// Refusal reason codes carried in [`Directive::Refused`].
pub mod refusal {
    /// Operation bytes were malformed.
    pub const MALFORMED: u32 = 0;
    /// Connection open refused (unknown client or target).
    pub const OPEN: u32 = 1;
    /// A change proof failed validation.
    pub const PROOF: u32 = 2;
    /// A change vote was invalid (foreign accuser / inactive accused).
    pub const VOTE: u32 = 3;
    /// An admission was invalid (unknown domain, slot not vacant, or the
    /// replacement id already taken).
    pub const ADMIT: u32 = 4;
}

/// The deterministic replicated state machine of the GM domain.
pub struct GmMachine {
    manager: GroupManager,
    initial_membership: Membership,
    seed: [u8; 32],
    repo: InterfaceRepository,
    comparators: ComparatorRegistry,
    oplog: Vec<Vec<u8>>,
    chain: Digest,
}

impl std::fmt::Debug for GmMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GmMachine")
            .field("ops_applied", &self.oplog.len())
            .finish()
    }
}

impl GmMachine {
    /// Creates the machine over an initial membership registry.
    pub fn new(
        membership: Membership,
        seed: [u8; 32],
        repo: InterfaceRepository,
        comparators: ComparatorRegistry,
    ) -> GmMachine {
        GmMachine {
            manager: GroupManager::new(membership.clone(), seed),
            initial_membership: membership,
            seed,
            repo,
            comparators,
            oplog: Vec::new(),
            chain: Digest::of(b"gm-genesis"),
        }
    }

    /// The wrapped manager (tests / observability).
    pub fn manager(&self) -> &GroupManager {
        &self.manager
    }

    fn apply(&mut self, op: &GmOp) -> Vec<Directive> {
        match op {
            GmOp::Open {
                client,
                client_domain,
                target,
            } => match self.manager.open_request(*client, *client_domain, *target) {
                Ok(dist) => vec![self.key_dist_directive(dist)],
                Err(_) => vec![Directive::Refused(refusal::OPEN)],
            },
            GmOp::ChangeProof(proof) => {
                // the comparator comes from the interface named inside the
                // proof's frames — reachable outside an ORB only because
                // the ITDOS GIOP extension carries the interface name
                let comparator = proof
                    .messages
                    .first()
                    .and_then(|m| decode_message(&m.frame, &self.repo).ok())
                    .and_then(|m| match m {
                        GiopMessage::Reply(r) => Some(itdos_vote::folding::folded_comparator(
                            self.comparators.for_interface(&r.interface).clone(),
                        )),
                        _ => None,
                    });
                let Some(comparator) = comparator else {
                    return vec![Directive::Refused(refusal::PROOF)];
                };
                // proof frames hold raw replies; the detector unmarshals and
                // votes on folded values
                match self
                    .manager
                    .change_request_with_proof(proof, &self.repo, &comparator)
                {
                    Ok(expulsions) => expulsions
                        .into_iter()
                        .flat_map(|e| self.expulsion_directives(e))
                        .collect(),
                    Err(_) => vec![Directive::Refused(refusal::PROOF)],
                }
            }
            GmOp::ChangeVote { accuser, accused } => {
                match self.manager.change_request_from_domain(*accuser, *accused) {
                    Ok(Some(expulsion)) => self.expulsion_directives(expulsion),
                    Ok(None) => vec![Directive::VoteRecorded],
                    Err(_) => vec![Directive::Refused(refusal::VOTE)],
                }
            }
            GmOp::Close(id) => {
                self.manager.close_connection(*id);
                Vec::new()
            }
            GmOp::Admit {
                domain,
                replacement,
                replaced,
                node,
                verifying_key,
            } => {
                let record = itdos_groupmgr::membership::ElementRecord {
                    id: *replacement,
                    verifying_key: *verifying_key,
                };
                match self.manager.admit(*domain, record, *replaced) {
                    Ok(admission) => {
                        // Admitted goes FIRST: recipients must apply the
                        // roster update before the rekeying key shares
                        // naming the newcomer arrive
                        let mut out = vec![Directive::Admitted {
                            domain: admission.domain,
                            element: admission.admitted,
                            replaced: admission.replaced,
                            slot: admission.slot as u32,
                            node: *node,
                            epoch: admission.epoch,
                            verifying_key: *verifying_key,
                        }];
                        for rekey in admission.rekeys {
                            out.push(self.key_dist_directive(rekey));
                        }
                        out
                    }
                    Err(_) => vec![Directive::Refused(refusal::ADMIT)],
                }
            }
        }
    }

    fn key_dist_directive(&self, dist: itdos_groupmgr::manager::KeyDistribution) -> Directive {
        let rec = self
            .manager
            .connection(dist.connection)
            .expect("distribution names a live connection");
        Directive::KeyDist {
            meta: ConnectionMeta {
                connection: dist.connection,
                epoch: dist.epoch,
                client_code: endpoint_code(rec.client),
                client_domain: rec.client_domain,
                server_domain: rec.server,
            },
            input: dist.input,
            recipients: dist.recipients.iter().map(|e| endpoint_code(*e)).collect(),
        }
    }

    fn expulsion_directives(
        &self,
        expulsion: itdos_groupmgr::manager::Expulsion,
    ) -> Vec<Directive> {
        let mut out = vec![Directive::Expelled {
            domain: expulsion.domain,
            element: expulsion.expelled,
        }];
        for rekey in expulsion.rekeys {
            out.push(self.key_dist_directive(rekey));
        }
        out
    }
}

impl StateMachine for GmMachine {
    fn execute(&mut self, operation: &[u8]) -> Vec<u8> {
        self.oplog.push(operation.to_vec());
        self.chain = Digest::of_parts(&[b"gm-link", self.chain.as_bytes(), operation]);
        let directives = match GmOp::decode(operation) {
            Ok(op) => self.apply(&op),
            Err(_) => vec![Directive::Refused(refusal::MALFORMED)],
        };
        encode_directives(&directives)
    }

    fn digest(&self) -> Digest {
        self.chain
    }

    fn snapshot(&self) -> Vec<u8> {
        // the op log *is* the state: deterministic replay reconstructs the
        // manager exactly (the GM equivalent of the message-queue model)
        let mut w = itdos_bft::wire::Writer::new();
        w.u32(self.oplog.len() as u32);
        for op in &self.oplog {
            w.bytes(op);
        }
        w.finish()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut r = itdos_bft::wire::Reader::new(snapshot);
        let Ok(n) = r.u32() else {
            return;
        };
        let mut ops = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            let Ok(op) = r.bytes() else {
                return;
            };
            ops.push(op.to_vec());
        }
        self.manager = GroupManager::new(self.initial_membership.clone(), self.seed);
        self.oplog.clear();
        self.chain = Digest::of(b"gm-genesis");
        for op in ops {
            self.execute(&op);
        }
    }
}

/// One Group Manager element (a simnet process).
pub struct GmElement {
    fabric: Fabric,
    domain: DomainId,
    index: usize,
    element: SenderId,
    replica: Replica<GmMachine>,
    bft_auth: AuthContext,
    shareholder: Shareholder,
    obs: Obs,
    /// Set true to model a *compromised* GM element that leaks its share
    /// (experiment E7/E11 reads [`GmElement::leaked_share`]).
    pub compromised: bool,
    /// Set true to make this element distribute **corrupt key shares**
    /// (evaluated on a tampered input while claiming the real one) — the
    /// §3.5 attack the per-share verification information defeats.
    pub corrupt_shares: bool,
}

impl std::fmt::Debug for GmElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GmElement")
            .field("element", &self.element)
            .field("index", &self.index)
            .finish()
    }
}

impl GmElement {
    /// Creates a GM element.
    pub fn new(
        fabric: Fabric,
        domain: DomainId,
        index: usize,
        element: SenderId,
        machine: GmMachine,
        shareholder: Shareholder,
    ) -> GmElement {
        let spec = fabric.domain(domain);
        let replica = Replica::new(
            spec.config.clone(),
            itdos_bft::config::ReplicaId(index as u32),
            machine,
        );
        let bft_auth = fabric.bft_auth_replica(domain, index);
        GmElement {
            fabric,
            domain,
            index,
            element,
            replica,
            bft_auth,
            shareholder,
            obs: Obs::disabled(),
            compromised: false,
            corrupt_shares: false,
        }
    }

    /// Installs an instrumentation sink on this element and its replica.
    pub fn set_obs(&mut self, obs: Obs) {
        self.replica.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The wrapped replica (tests / observability).
    pub fn replica(&self) -> &Replica<GmMachine> {
        &self.replica
    }

    /// What an attacker controlling this element learns: its DPRF share.
    /// Meaningful only when [`GmElement::compromised`] is set by the
    /// experiment harness.
    pub fn leaked_share(&self) -> itdos_crypto::shamir::Share {
        self.shareholder.leak_share()
    }

    fn my_code(&self) -> u64 {
        element_code(self.element)
    }

    fn drain(&mut self, ctx: &mut Context<'_>) {
        for output in self.replica.take_outputs() {
            match output {
                Output::ToReplica(to, message) => {
                    let node = self.fabric.domain(self.domain).nodes[to.0 as usize];
                    let envelope = self.envelope_for(&message);
                    let msg = CoreMsg::Bft {
                        domain: self.domain,
                        envelope: envelope.encode(),
                    };
                    ctx.send_labeled(node, Bytes::from(msg.encode()), message.label());
                }
                Output::ToAllReplicas(message) => {
                    let envelope = self.envelope_for(&message);
                    let msg = CoreMsg::Bft {
                        domain: self.domain,
                        envelope: envelope.encode(),
                    };
                    ctx.multicast_labeled(
                        self.fabric.domain(self.domain).mcast,
                        Bytes::from(msg.encode()),
                        message.label(),
                    );
                }
                Output::ToClient(client, message) => {
                    if let Some(node) = self.fabric.node_of(client.0) {
                        let envelope = self
                            .bft_auth
                            .mac_envelope_for_client(client, message.encode());
                        let msg = CoreMsg::Bft {
                            domain: self.domain,
                            envelope: envelope.encode(),
                        };
                        ctx.send_labeled(node, Bytes::from(msg.encode()), message.label());
                    }
                }
                Output::Executed { result, .. } => {
                    self.act_on_directives(ctx, &result);
                }
                Output::StartViewTimer { epoch, attempt } => {
                    let timeout = self
                        .fabric
                        .domain(self.domain)
                        .config
                        .view_timeout
                        .saturating_mul(1 << attempt.min(16));
                    ctx.set_timer(timeout, pack_timer(TimerTag::View, epoch));
                }
                Output::EnteredView(_) | Output::StateTransferred(_) => {}
            }
        }
    }

    fn envelope_for(&self, message: &Message) -> Envelope {
        let payload = message.encode();
        match message {
            Message::ViewChange(_)
            | Message::NewView(_)
            | Message::Checkpoint(_)
            | Message::StateData(_) => self.bft_auth.signed_envelope(payload),
            _ => self.bft_auth.mac_envelope(payload),
        }
    }

    fn act_on_directives(&mut self, ctx: &mut Context<'_>, result: &[u8]) {
        let Ok(directives) = crate::wire::decode_directives(result) else {
            return;
        };
        for directive in directives {
            match directive {
                Directive::KeyDist {
                    meta,
                    input,
                    recipients,
                } => {
                    self.obs.incr("gm.keydists", &[]);
                    self.obs.add("gm.shares_sent", &[], recipients.len() as u64);
                    self.obs.event(
                        "gm.keydist",
                        &[
                            ("connection", LabelValue::U64(meta.connection.0)),
                            ("epoch", LabelValue::U64(u64::from(meta.epoch))),
                            ("recipients", LabelValue::U64(recipients.len() as u64)),
                        ],
                    );
                    let share = if self.corrupt_shares {
                        // Byzantine GM element: a share for a different
                        // input, claimed as the real one — the recipient's
                        // DLEQ check against the Feldman commitment fails
                        let mut tampered = input;
                        tampered[0] ^= 0xFF;
                        self.shareholder.evaluate(&tampered)
                    } else {
                        self.shareholder.evaluate(&input)
                    };
                    let mut plain = Vec::with_capacity(60);
                    plain.extend_from_slice(&input);
                    plain.extend_from_slice(&share.to_bytes());
                    for recipient in recipients {
                        let Some(node) = self.fabric.node_of(recipient) else {
                            continue;
                        };
                        let pairwise = self.fabric.pairwise(self.my_code(), recipient);
                        let nonce = share_nonce(self.my_code(), recipient, &meta);
                        let sealed = seal(&pairwise, nonce, &plain);
                        let msg = CoreMsg::KeyShare(KeyShareMsg {
                            meta,
                            gm_code: self.my_code(),
                            sealed: sealed.to_bytes(),
                        });
                        ctx.send_labeled(node, Bytes::from(msg.encode()), "gm-keyshare");
                    }
                }
                Directive::Expelled { domain, element } => {
                    self.obs.incr("gm.expulsions", &[]);
                    self.obs.event(
                        "gm.expelled",
                        &[
                            ("domain", LabelValue::U64(domain.0)),
                            ("element", LabelValue::U64(u64::from(element.0))),
                        ],
                    );
                    let plain = notice_plaintext(domain, element);
                    for code in self.fabric.element_codes(domain) {
                        let Some(node) = self.fabric.node_of(code) else {
                            continue;
                        };
                        let pairwise = self.fabric.pairwise(self.my_code(), code);
                        let nonce = notice_nonce(self.my_code(), code, element);
                        let sealed = seal(&pairwise, nonce, &plain);
                        let msg = CoreMsg::Notice(NoticeMsg {
                            gm_code: self.my_code(),
                            domain,
                            expelled: element,
                            sealed: sealed.to_bytes(),
                        });
                        ctx.send_labeled(node, Bytes::from(msg.encode()), "gm-notice");
                    }
                }
                Directive::Refused(reason) => {
                    self.obs.incr(
                        "gm.refused",
                        &[("reason", LabelValue::U64(u64::from(reason)))],
                    );
                }
                Directive::VoteRecorded => {
                    self.obs.incr("gm.votes_recorded", &[]);
                }
                Directive::Admitted {
                    domain,
                    element,
                    replaced,
                    slot,
                    node,
                    epoch,
                    verifying_key,
                } => {
                    self.obs.incr("gm.admissions", &[]);
                    self.obs.event(
                        "gm.admitted",
                        &[
                            ("domain", LabelValue::U64(domain.0)),
                            ("element", LabelValue::U64(u64::from(element.0))),
                            ("replaced", LabelValue::U64(u64::from(replaced.0))),
                            ("epoch", LabelValue::U64(epoch)),
                        ],
                    );
                    // apply the roster update to our own wiring first so
                    // the rekey KeyDists following in this directive list
                    // resolve the newcomer's node
                    self.fabric.apply_admission(
                        domain,
                        element,
                        replaced,
                        slot as usize,
                        NodeId::from_raw(node as u32),
                    );
                    // notify the domain's elements (newcomer included) and
                    // every client whose connections touch the domain —
                    // each applies the update at f_gm+1 distinct GM notices
                    let mut codes: Vec<u64> = self.fabric.element_codes(domain);
                    for (_, rec) in self.replica.app().manager().connections() {
                        if rec.server != domain && rec.client_domain != Some(domain) {
                            continue;
                        }
                        match rec.client_domain {
                            Some(cd) if cd != domain => {
                                codes.extend(self.fabric.element_codes(cd));
                            }
                            None => codes.push(endpoint_code(rec.client)),
                            _ => {}
                        }
                    }
                    codes.sort_unstable();
                    codes.dedup();
                    let plain = crate::element::admit_notice_plaintext(
                        domain,
                        element,
                        replaced,
                        slot,
                        node,
                        epoch,
                        &verifying_key,
                    );
                    for code in codes {
                        let Some(dest) = self.fabric.node_of(code) else {
                            continue;
                        };
                        let pairwise = self.fabric.pairwise(self.my_code(), code);
                        let nonce = admit_nonce(self.my_code(), code, element, epoch);
                        let sealed = seal(&pairwise, nonce, &plain);
                        let msg = CoreMsg::AdmitNotice(AdmitNoticeMsg {
                            gm_code: self.my_code(),
                            domain,
                            admitted: element,
                            replaced,
                            slot,
                            node,
                            epoch,
                            verifying_key,
                            sealed: sealed.to_bytes(),
                        });
                        ctx.send_labeled(dest, Bytes::from(msg.encode()), "gm-admit-notice");
                    }
                }
            }
        }
    }
}

fn share_nonce(gm: u64, recipient: u64, meta: &ConnectionMeta) -> [u8; 16] {
    let d = Digest::of_parts(&[
        b"share-nonce",
        &gm.to_le_bytes(),
        &recipient.to_le_bytes(),
        &meta.connection.0.to_le_bytes(),
        &meta.epoch.to_le_bytes(),
    ]);
    d.0[..16].try_into().expect("16 bytes")
}

fn notice_nonce(gm: u64, recipient: u64, expelled: SenderId) -> [u8; 16] {
    let d = Digest::of_parts(&[
        b"notice-nonce",
        &gm.to_le_bytes(),
        &recipient.to_le_bytes(),
        &expelled.0.to_le_bytes(),
    ]);
    d.0[..16].try_into().expect("16 bytes")
}

fn admit_nonce(gm: u64, recipient: u64, admitted: SenderId, epoch: u64) -> [u8; 16] {
    let d = Digest::of_parts(&[
        b"admit-nonce",
        &gm.to_le_bytes(),
        &recipient.to_le_bytes(),
        &admitted.0.to_le_bytes(),
        &epoch.to_le_bytes(),
    ]);
    d.0[..16].try_into().expect("16 bytes")
}

impl Process for GmElement {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join(self.fabric.domain(self.domain).mcast);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
        let Ok(CoreMsg::Bft { domain, envelope }) = CoreMsg::decode(&payload) else {
            return;
        };
        if domain != self.domain {
            return;
        }
        let Ok(env) = Envelope::decode(&envelope) else {
            return;
        };
        if !self.bft_auth.verify(&env) {
            return;
        }
        let Ok(message) = Message::decode(&env.payload) else {
            return;
        };
        match env.sender {
            Peer::Replica(sender) => self.replica.on_message(sender, message),
            Peer::Client(_) => {
                if let Message::Request(request) = message {
                    self.replica.on_request(request);
                }
            }
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        if let Some((TimerTag::View, epoch)) = unpack_timer(timer.kind) {
            self.replica.on_view_timeout(epoch);
            self.drain(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itdos_bft::state::StateMachine;
    use itdos_crypto::sign::SigningKey;
    use itdos_groupmgr::manager::ConnectionId;
    use itdos_groupmgr::membership::{DomainRecord, ElementRecord, Endpoint};

    fn membership() -> Membership {
        let mut m = Membership::new();
        m.register_domain(DomainRecord::new(
            DomainId(1),
            1,
            (0..4)
                .map(|i| ElementRecord {
                    id: SenderId(i),
                    verifying_key: SigningKey::from_seed(&i.to_le_bytes()).verifying_key(),
                })
                .collect(),
        ));
        m.register_singleton(9, SigningKey::from_seed(b"c").verifying_key());
        m
    }

    fn machine() -> GmMachine {
        GmMachine::new(
            membership(),
            [5u8; 32],
            InterfaceRepository::new(),
            ComparatorRegistry::new(),
        )
    }

    fn open_op() -> Vec<u8> {
        GmOp::Open {
            client: Endpoint::Singleton(9),
            client_domain: None,
            target: DomainId(1),
        }
        .encode()
    }

    #[test]
    fn open_emits_key_distribution() {
        let mut m = machine();
        let out = m.execute(&open_op());
        let directives = crate::wire::decode_directives(&out).unwrap();
        assert_eq!(directives.len(), 1);
        let Directive::KeyDist {
            meta, recipients, ..
        } = &directives[0]
        else {
            panic!("expected key distribution, got {directives:?}");
        };
        assert_eq!(meta.connection, ConnectionId(0));
        assert_eq!(recipients.len(), 5, "4 elements + the client");
    }

    #[test]
    fn reopen_reuses_connection_and_input() {
        let mut m = machine();
        let first = m.execute(&open_op());
        let second = m.execute(&open_op());
        let d1 = crate::wire::decode_directives(&first).unwrap();
        let d2 = crate::wire::decode_directives(&second).unwrap();
        assert_eq!(d1, d2, "same association, same connection, same input");
    }

    #[test]
    fn change_votes_expel_at_threshold() {
        let mut m = machine();
        m.execute(&open_op());
        let vote = |a: u32, b: u32| {
            GmOp::ChangeVote {
                accuser: SenderId(a),
                accused: SenderId(b),
            }
            .encode()
        };
        let out = m.execute(&vote(0, 3));
        assert_eq!(
            crate::wire::decode_directives(&out).unwrap(),
            vec![Directive::VoteRecorded]
        );
        let out = m.execute(&vote(1, 3));
        let directives = crate::wire::decode_directives(&out).unwrap();
        assert!(matches!(
            directives[0],
            Directive::Expelled {
                element: SenderId(3),
                ..
            }
        ));
        // the rekey excludes the expelled element and bumps the epoch
        let Directive::KeyDist {
            meta, recipients, ..
        } = &directives[1]
        else {
            panic!("expected rekey");
        };
        assert_eq!(meta.epoch, 1);
        assert!(!recipients.contains(&crate::codes::element_code(SenderId(3))));
    }

    #[test]
    fn malformed_op_is_refused_deterministically() {
        let mut a = machine();
        let mut b = machine();
        assert_eq!(a.execute(&[99, 99]), b.execute(&[99, 99]));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(
            crate::wire::decode_directives(&a.execute(&[1, 2, 3])).unwrap(),
            vec![Directive::Refused(refusal::MALFORMED)]
        );
    }

    #[test]
    fn snapshot_restore_replays_the_op_log() {
        let mut a = machine();
        a.execute(&open_op());
        a.execute(
            &GmOp::ChangeVote {
                accuser: SenderId(0),
                accused: SenderId(3),
            }
            .encode(),
        );
        let snap = a.snapshot();
        let mut b = machine();
        b.restore(&snap);
        assert_eq!(a.digest(), b.digest(), "replayed state converges");
        // both continue identically
        let va = a.execute(
            &GmOp::ChangeVote {
                accuser: SenderId(1),
                accused: SenderId(3),
            }
            .encode(),
        );
        let vb = b.execute(
            &GmOp::ChangeVote {
                accuser: SenderId(1),
                accused: SenderId(3),
            }
            .encode(),
        );
        assert_eq!(va, vb);
    }

    #[test]
    fn close_drops_the_connection() {
        let mut m = machine();
        m.execute(&open_op());
        assert_eq!(m.manager().connections().count(), 1);
        m.execute(&GmOp::Close(ConnectionId(0)).encode());
        assert_eq!(m.manager().connections().count(), 0);
    }

    #[test]
    fn corrupt_restore_is_a_noop_for_bad_bytes() {
        let mut m = machine();
        m.execute(&open_op());
        let digest = m.digest();
        m.restore(&[1, 2, 3]);
        assert_eq!(m.digest(), digest, "garbage snapshot rejected");
    }
}
