//! Per-interface voting comparator registry.
//!
//! §3.6: the voter "can employ much more flexible voting algorithms" since
//! it sees unmarshalled data — e.g. inexact voting for interfaces that
//! return measured floats. The registry maps a full interface name to the
//! Voting Virtual Machine program used by every voter (and by the Group
//! Manager when validating proofs) for that interface's traffic.

use std::collections::BTreeMap;

use itdos_vote::comparator::Comparator;

/// Registry of comparator programs, keyed by full interface name.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorRegistry {
    default: Comparator,
    by_interface: BTreeMap<String, Comparator>,
}

impl Default for ComparatorRegistry {
    fn default() -> Self {
        ComparatorRegistry {
            default: Comparator::Exact,
            by_interface: BTreeMap::new(),
        }
    }
}

impl ComparatorRegistry {
    /// Creates a registry with [`Comparator::Exact`] as the default.
    pub fn new() -> ComparatorRegistry {
        ComparatorRegistry::default()
    }

    /// Replaces the default comparator.
    pub fn set_default(&mut self, comparator: Comparator) {
        self.default = comparator;
    }

    /// Registers a comparator for an interface.
    pub fn register(&mut self, interface: impl Into<String>, comparator: Comparator) {
        self.by_interface.insert(interface.into(), comparator);
    }

    /// The comparator for an interface (falls back to the default).
    pub fn for_interface(&self, interface: &str) -> &Comparator {
        self.by_interface.get(interface).unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falls_back_to_default() {
        let r = ComparatorRegistry::new();
        assert_eq!(r.for_interface("Any"), &Comparator::Exact);
    }

    #[test]
    fn registered_interface_wins() {
        let mut r = ComparatorRegistry::new();
        r.register("Sensor", Comparator::InexactRel(1e-6));
        assert_eq!(r.for_interface("Sensor"), &Comparator::InexactRel(1e-6));
        assert_eq!(r.for_interface("Bank"), &Comparator::Exact);
    }

    #[test]
    fn default_is_replaceable() {
        let mut r = ComparatorRegistry::new();
        r.set_default(Comparator::InexactAbs(0.5));
        assert_eq!(r.for_interface("X"), &Comparator::InexactAbs(0.5));
    }
}
