//! simnet integration scenarios: multi-group topologies, healing
//! partitions, adversarial duplication, and determinism guarantees.

use simnet::adversary::{Scripted, Verdict};
use simnet::net::Latency;
use simnet::{Context, GroupId, NodeId, Process, SimDuration, Simulator, Timer};
use xbytes::Bytes;

/// Counts everything it receives; echoes external kicks into its group.
struct Member {
    group: GroupId,
    received: u32,
}

impl Process for Member {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join(self.group);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        if from.is_external() {
            ctx.multicast(self.group, payload);
        } else {
            self.received += 1;
        }
    }
}

fn member(group: u32) -> Box<dyn Process> {
    Box::new(Member {
        group: GroupId::from_raw(group),
        received: 0,
    })
}

#[test]
fn multicast_groups_are_isolated() {
    let mut sim = Simulator::new(1);
    let a0 = sim.add_process(member(0));
    let _a1 = sim.add_process(member(0));
    let _b0 = sim.add_process(member(1));
    let b1 = sim.add_process(member(1));
    sim.inject(a0, Bytes::from_static(b"to-group-0"));
    sim.run();
    assert_eq!(sim.process_ref::<Member>(NodeId::from_raw(1)).received, 1);
    assert_eq!(
        sim.process_ref::<Member>(b1).received,
        0,
        "group 1 heard nothing"
    );
}

#[test]
fn partitions_heal() {
    let mut sim = Simulator::new(2);
    let a = sim.add_process(member(0));
    let b = sim.add_process(member(0));
    sim.config_mut().partition(&[a], &[b]);
    sim.inject(a, Bytes::from_static(b"x"));
    sim.run();
    assert_eq!(sim.process_ref::<Member>(b).received, 0);
    sim.config_mut().heal();
    sim.inject(a, Bytes::from_static(b"y"));
    sim.run();
    assert_eq!(sim.process_ref::<Member>(b).received, 1);
}

#[test]
fn leaving_a_group_stops_delivery() {
    let mut sim = Simulator::new(3);
    let a = sim.add_process(member(0));
    let b = sim.add_process(member(0));
    sim.inject(a, Bytes::from_static(b"first"));
    sim.run();
    sim.leave_group(b, GroupId::from_raw(0));
    sim.inject(a, Bytes::from_static(b"second"));
    sim.run();
    assert_eq!(sim.process_ref::<Member>(b).received, 1, "only the first");
}

#[test]
fn adversarial_duplication_multiplies_delivery() {
    let mut sim = Simulator::new(4);
    let a = sim.add_process(member(0));
    let b = sim.add_process(member(0));
    let mut adv = Scripted::new();
    adv.rule(Some(a), Some(b), |_, _| {
        Verdict::Duplicate(vec![SimDuration::from_micros(10)])
    });
    sim.set_adversary(Box::new(adv));
    sim.inject(a, Bytes::from_static(b"dup"));
    sim.run();
    assert_eq!(sim.process_ref::<Member>(b).received, 2, "original + copy");
}

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed: u64| {
        let mut sim = Simulator::new(seed);
        let a = sim.add_process(member(0));
        for _ in 0..3 {
            sim.add_process(member(0));
        }
        sim.config_mut().loss_probability = 0.3;
        for _ in 0..10 {
            sim.inject(a, Bytes::from_static(b"m"));
        }
        sim.run();
        (
            sim.now(),
            sim.stats().total.messages,
            sim.stats().dropped,
            (1..4)
                .map(|i| sim.process_ref::<Member>(NodeId::from_raw(i)).received)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(77), run(77), "bit-for-bit deterministic");
    assert_ne!(run(77).3, run(78).3, "different seeds drop differently");
}

#[test]
fn run_for_advances_exactly() {
    let mut sim = Simulator::new(5);
    sim.add_process(member(0));
    let t0 = sim.now();
    sim.run_for(SimDuration::from_millis(7));
    assert_eq!(sim.now().since(t0), SimDuration::from_millis(7));
}

/// Timers and latency compose: a process that re-arms a timer N times
/// observes exactly N·interval of simulated time.
struct Ticker {
    remaining: u32,
    fired: u32,
}

impl Process for Ticker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: Timer) {
        self.fired += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }
}

#[test]
fn timer_chains_advance_the_clock_precisely() {
    let mut sim = Simulator::new(6);
    let t = sim.add_process(Box::new(Ticker {
        remaining: 9,
        fired: 0,
    }));
    sim.run();
    assert_eq!(sim.process_ref::<Ticker>(t).fired, 10);
    assert_eq!(sim.now(), simnet::SimTime::from_micros(10_000));
}

#[test]
fn per_link_latency_orders_deliveries() {
    struct Recorder {
        order: Vec<u8>,
    }
    impl Process for Recorder {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
            self.order.push(payload[0]);
        }
    }
    struct Sender {
        fast_peer: NodeId,
        slow_peer: NodeId,
    }
    impl Process for Sender {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, _payload: Bytes) {
            if from.is_external() {
                // both messages go to the same recorder; one relays
                // through a slow link
                ctx.send(self.slow_peer, Bytes::from_static(&[1]));
                ctx.send(self.fast_peer, Bytes::from_static(&[2]));
            }
        }
    }
    let mut sim = Simulator::new(7);
    let recorder = sim.add_process(Box::new(Recorder { order: Vec::new() }));
    let sender = sim.add_process(Box::new(Sender {
        fast_peer: recorder,
        slow_peer: recorder,
    }));
    // sender→recorder default is fast; override one "slow" path by
    // sending the slow message first with a per-link override applied to
    // all traffic — instead make all traffic slow and check order is FIFO
    sim.config_mut().link_latency.insert(
        (sender, recorder),
        Latency::fixed(SimDuration::from_micros(500)),
    );
    sim.inject(sender, Bytes::new());
    sim.run();
    assert_eq!(
        sim.process_ref::<Recorder>(recorder).order,
        vec![1, 2],
        "equal fixed latency preserves send order"
    );
}
