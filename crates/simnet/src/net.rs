//! Network configuration: latency model, loss, and partitions.

use std::collections::{BTreeMap, BTreeSet};

use xrand::Rng;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Latency model for a link: a fixed base plus uniform jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latency {
    /// Minimum one-way delay.
    pub base: SimDuration,
    /// Additional uniformly distributed delay in `[0, jitter]`.
    pub jitter: SimDuration,
}

impl Latency {
    /// A constant-delay link with no jitter.
    pub fn fixed(delay: SimDuration) -> Self {
        Latency {
            base: delay,
            jitter: SimDuration::ZERO,
        }
    }

    /// Samples a concrete delay using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let j = self.jitter.as_micros();
        let extra = if j == 0 { 0 } else { rng.gen_range(0..=j) };
        self.base + SimDuration::from_micros(extra)
    }
}

impl Default for Latency {
    /// LAN-like defaults: 100µs base, 20µs jitter (the paper's testbed was a
    /// local network of Solaris/Linux hosts).
    fn default() -> Self {
        Latency {
            base: SimDuration::from_micros(100),
            jitter: SimDuration::from_micros(20),
        }
    }
}

/// Global and per-link network behaviour.
///
/// # Examples
///
/// ```
/// use simnet::net::{Latency, NetConfig};
/// use simnet::node::NodeId;
/// use simnet::time::SimDuration;
///
/// let mut cfg = NetConfig::default();
/// cfg.default_latency = Latency::fixed(SimDuration::from_millis(1));
/// cfg.isolate(NodeId::from_raw(3));
/// assert!(cfg.is_blocked(NodeId::from_raw(3), NodeId::from_raw(0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetConfig {
    /// Latency used for links without an override.
    pub default_latency: Latency,
    /// Per-link latency overrides.
    pub link_latency: BTreeMap<(NodeId, NodeId), Latency>,
    /// Probability in `[0.0, 1.0]` that any message copy is silently lost.
    pub loss_probability: f64,
    /// Nodes currently cut off from everyone (crashed or partitioned away).
    isolated: BTreeSet<NodeId>,
    /// Directed links explicitly blocked.
    blocked_links: BTreeSet<(NodeId, NodeId)>,
}

impl NetConfig {
    /// Returns the latency model for the `from -> to` link.
    pub fn latency(&self, from: NodeId, to: NodeId) -> Latency {
        self.link_latency
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_latency)
    }

    /// Cuts `node` off from the rest of the network (both directions).
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects a previously isolated node.
    pub fn reconnect(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Returns true if `node` is currently isolated.
    pub fn is_isolated(&self, node: NodeId) -> bool {
        self.isolated.contains(&node)
    }

    /// Blocks the directed link `from -> to`.
    pub fn block_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.insert((from, to));
    }

    /// Unblocks the directed link `from -> to`.
    pub fn unblock_link(&mut self, from: NodeId, to: NodeId) {
        self.blocked_links.remove(&(from, to));
    }

    /// Partitions the network into two sides: every link crossing the
    /// boundary (either direction) is blocked.
    pub fn partition(&mut self, side_a: &[NodeId], side_b: &[NodeId]) {
        for &a in side_a {
            for &b in side_b {
                self.block_link(a, b);
                self.block_link(b, a);
            }
        }
    }

    /// Removes every blocked link and reconnects every isolated node.
    pub fn heal(&mut self) {
        self.blocked_links.clear();
        self.isolated.clear();
    }

    /// Returns true if messages from `from` to `to` cannot currently pass.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.isolated.contains(&from)
            || self.isolated.contains(&to)
            || self.blocked_links.contains(&(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::rngs::SmallRng;
    use xrand::SeedableRng;

    fn n(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn fixed_latency_has_no_jitter() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Latency::fixed(SimDuration::from_micros(42));
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), SimDuration::from_micros(42));
        }
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let l = Latency {
            base: SimDuration::from_micros(100),
            jitter: SimDuration::from_micros(50),
        };
        for _ in 0..100 {
            let d = l.sample(&mut rng).as_micros();
            assert!((100..=150).contains(&d), "delay {d} out of range");
        }
    }

    #[test]
    fn per_link_override_wins() {
        let mut cfg = NetConfig::default();
        let special = Latency::fixed(SimDuration::from_millis(9));
        cfg.link_latency.insert((n(0), n(1)), special);
        assert_eq!(cfg.latency(n(0), n(1)), special);
        assert_eq!(cfg.latency(n(1), n(0)), Latency::default());
    }

    #[test]
    fn isolation_blocks_both_directions() {
        let mut cfg = NetConfig::default();
        cfg.isolate(n(2));
        assert!(cfg.is_blocked(n(2), n(0)));
        assert!(cfg.is_blocked(n(0), n(2)));
        assert!(!cfg.is_blocked(n(0), n(1)));
        cfg.reconnect(n(2));
        assert!(!cfg.is_blocked(n(2), n(0)));
    }

    #[test]
    fn partition_blocks_crossing_links_only() {
        let mut cfg = NetConfig::default();
        cfg.partition(&[n(0), n(1)], &[n(2), n(3)]);
        assert!(cfg.is_blocked(n(0), n(2)));
        assert!(cfg.is_blocked(n(3), n(1)));
        assert!(!cfg.is_blocked(n(0), n(1)));
        assert!(!cfg.is_blocked(n(2), n(3)));
        cfg.heal();
        assert!(!cfg.is_blocked(n(0), n(2)));
    }

    #[test]
    fn directed_block_is_one_way() {
        let mut cfg = NetConfig::default();
        cfg.block_link(n(0), n(1));
        assert!(cfg.is_blocked(n(0), n(1)));
        assert!(!cfg.is_blocked(n(1), n(0)));
        cfg.unblock_link(n(0), n(1));
        assert!(!cfg.is_blocked(n(0), n(1)));
    }
}
