//! # simnet — deterministic discrete-event network simulator
//!
//! The substrate on which the ITDOS reproduction runs. It stands in for the
//! paper's testbed (Solaris/Linux hosts on a LAN with IP multicast): nodes
//! are [`Process`] state machines, links have configurable latency/jitter,
//! loss, and partitions, multicast groups model IP multicast addresses, and
//! an [`adversary::Adversary`] can observe, drop, delay, duplicate, or
//! tamper with traffic in flight.
//!
//! Everything is deterministic given a master seed, so every Byzantine
//! scenario in the test suite replays exactly, and benches can count
//! messages and bytes precisely.
//!
//! # Examples
//!
//! ```
//! use xbytes::Bytes;
//! use simnet::{Context, NodeId, Process, Simulator};
//!
//! /// Replies "pong" to every message.
//! struct Ponger;
//!
//! impl Process for Ponger {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, _payload: Bytes) {
//!         if !from.is_external() {
//!             ctx.send(from, Bytes::from_static(b"pong"));
//!         }
//!     }
//! }
//!
//! /// Sends "ping" to a peer when kicked externally; records the reply.
//! struct Pinger {
//!     peer: NodeId,
//!     reply: Option<Bytes>,
//! }
//!
//! impl Process for Pinger {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
//!         if from.is_external() {
//!             ctx.send(self.peer, Bytes::from_static(b"ping"));
//!         } else {
//!             self.reply = Some(payload);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(7);
//! let ponger = sim.add_process(Box::new(Ponger));
//! let pinger = sim.add_process(Box::new(Pinger { peer: ponger, reply: None }));
//! sim.inject(pinger, Bytes::new());
//! sim.run();
//! assert_eq!(
//!     sim.process_ref::<Pinger>(pinger).reply.as_deref(),
//!     Some(&b"pong"[..])
//! );
//! ```

#![warn(missing_docs)]

pub mod adversary;
pub mod ledger;
pub mod net;
pub mod node;
pub mod process;
pub mod sim;
pub mod time;
pub mod trace;

pub use ledger::FaultLedger;
pub use node::{GroupId, NodeId};
pub use process::{Context, Process, Timer, TimerId};
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};
