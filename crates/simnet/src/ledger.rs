//! Ground-truth fault ledger.
//!
//! When a test or drill injects a fault — a Byzantine reply behavior on a
//! replica, a crashed process — it records the victim here, on the
//! simulator, outside the protocol's view. The ledger is *not* an input
//! to any protocol logic or analyzer: it exists so regression tests can
//! cross-check what a forensic tool (the `itdos-audit` blame set, GM
//! expulsions) concluded against what was actually injected, and assert
//! exact localization with no false positives.
//!
//! Entries are keyed by an opaque `u64` chosen by the injector (the core
//! wiring uses the global element id), with a static string naming the
//! fault kind. Storage is a `BTreeMap` so iteration is deterministic.

use std::collections::BTreeMap;

/// A record of deliberately injected faults, keyed by an injector-chosen
/// id (element id in the core wiring).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLedger {
    marks: BTreeMap<u64, &'static str>,
}

impl FaultLedger {
    /// An empty ledger.
    pub fn new() -> FaultLedger {
        FaultLedger::default()
    }

    /// Records that the process identified by `id` was injected with a
    /// fault of the given kind. A second mark on the same id overwrites
    /// the kind (the id is faulty either way).
    pub fn mark(&mut self, id: u64, kind: &'static str) {
        self.marks.insert(id, kind);
    }

    /// The injected fault kind for `id`, if any.
    pub fn kind_of(&self, id: u64) -> Option<&'static str> {
        self.marks.get(&id).copied()
    }

    /// True when `id` was marked faulty.
    pub fn contains(&self, id: u64) -> bool {
        self.marks.contains_key(&id)
    }

    /// All marked ids in ascending order.
    pub fn ids(&self) -> Vec<u64> {
        self.marks.keys().copied().collect()
    }

    /// Iterates `(id, kind)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &'static str)> + '_ {
        self.marks.iter().map(|(&id, &kind)| (id, kind))
    }

    /// Number of marked ids.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_deduplicated_and_ordered() {
        let mut ledger = FaultLedger::new();
        assert!(ledger.is_empty());
        ledger.mark(9, "silent");
        ledger.mark(3, "corrupt-value");
        ledger.mark(9, "slow");
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.ids(), vec![3, 9]);
        assert_eq!(ledger.kind_of(9), Some("slow"), "re-mark overwrites");
        assert!(ledger.contains(3));
        assert!(!ledger.contains(4));
        let pairs: Vec<(u64, &str)> = ledger.iter().collect();
        assert_eq!(pairs, vec![(3, "corrupt-value"), (9, "slow")]);
    }
}
