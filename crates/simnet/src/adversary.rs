//! Network-level adversary model.
//!
//! ITDOS assumes a Byzantine adversary that fully controls up to `f`
//! processes and can observe, delay, duplicate, reorder, or corrupt traffic
//! on the network (§2.1–2.2). Process-level Byzantine behaviour (wrong
//! results, protocol deviation) is implemented by faulty [`crate::Process`]
//! implementations; this module models the *network* half: an interceptor
//! consulted for every message copy before it is scheduled for delivery.

use xbytes::Bytes;
use xrand::rngs::SmallRng;

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// What the adversary decides to do with one message copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver unchanged.
    Pass,
    /// Silently drop this copy.
    Drop,
    /// Deliver after an extra delay.
    Delay(SimDuration),
    /// Replace the payload (models in-flight tampering; authenticated
    /// protocols must detect this).
    Tamper(Bytes),
    /// Deliver the original and also schedule duplicate copies after the
    /// given extra delays (models replay/duplication).
    Duplicate(Vec<SimDuration>),
}

/// A network interceptor consulted for every message copy.
///
/// Implementations must be deterministic given the supplied RNG, which is
/// seeded from the simulation master seed.
pub trait Adversary {
    /// Decides the fate of one message copy from `from` to `to` at `now`.
    fn intercept(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload: &Bytes,
        rng: &mut SmallRng,
    ) -> Verdict;
}

/// The honest network: passes everything through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassThrough;

impl Adversary for PassThrough {
    fn intercept(
        &mut self,
        _now: SimTime,
        _from: NodeId,
        _to: NodeId,
        _payload: &Bytes,
        _rng: &mut SmallRng,
    ) -> Verdict {
        Verdict::Pass
    }
}

/// A scripted adversary: applies a fixed rule per (from, to) pair.
///
/// Useful in tests that need one precisely targeted attack, e.g. "delay all
/// replies from replica 2 by 50ms" (E5) or "flip a byte in every message
/// from the client" (authentication tests).
#[derive(Default)]
pub struct Scripted {
    rules: Vec<Rule>,
}

struct Rule {
    from: Option<NodeId>,
    to: Option<NodeId>,
    action: Box<dyn FnMut(&Bytes, &mut SmallRng) -> Verdict>,
}

impl Scripted {
    /// Creates an adversary with no rules (equivalent to [`PassThrough`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule matching messages from `from` (or any sender if `None`)
    /// to `to` (or any receiver if `None`). The first matching rule wins.
    pub fn rule<F>(&mut self, from: Option<NodeId>, to: Option<NodeId>, action: F) -> &mut Self
    where
        F: FnMut(&Bytes, &mut SmallRng) -> Verdict + 'static,
    {
        self.rules.push(Rule {
            from,
            to,
            action: Box::new(action),
        });
        self
    }

    /// Convenience: drop everything sent by `from`.
    pub fn drop_from(&mut self, from: NodeId) -> &mut Self {
        self.rule(Some(from), None, |_, _| Verdict::Drop)
    }

    /// Convenience: delay everything sent by `from` by `delay`.
    pub fn delay_from(&mut self, from: NodeId, delay: SimDuration) -> &mut Self {
        self.rule(Some(from), None, move |_, _| Verdict::Delay(delay))
    }

    /// Convenience: corrupt one payload byte of everything sent by `from`.
    pub fn tamper_from(&mut self, from: NodeId) -> &mut Self {
        self.rule(Some(from), None, |payload, _| {
            let mut v = payload.to_vec();
            if let Some(b) = v.first_mut() {
                *b ^= 0xFF;
            }
            Verdict::Tamper(Bytes::from(v))
        })
    }
}

impl std::fmt::Debug for Scripted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scripted")
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl Adversary for Scripted {
    fn intercept(
        &mut self,
        _now: SimTime,
        from: NodeId,
        to: NodeId,
        payload: &Bytes,
        rng: &mut SmallRng,
    ) -> Verdict {
        for rule in &mut self.rules {
            let from_ok = rule.from.map_or(true, |f| f == from);
            let to_ok = rule.to.map_or(true, |t| t == to);
            if from_ok && to_ok {
                return (rule.action)(payload, rng);
            }
        }
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::SeedableRng;

    fn n(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn passthrough_passes() {
        let mut a = PassThrough;
        let v = a.intercept(
            SimTime::ZERO,
            n(0),
            n(1),
            &Bytes::from_static(b"x"),
            &mut rng(),
        );
        assert_eq!(v, Verdict::Pass);
    }

    #[test]
    fn scripted_first_match_wins() {
        let mut a = Scripted::new();
        a.rule(Some(n(0)), None, |_, _| Verdict::Drop);
        a.rule(None, None, |_, _| {
            Verdict::Delay(SimDuration::from_micros(1))
        });
        let v = a.intercept(SimTime::ZERO, n(0), n(1), &Bytes::new(), &mut rng());
        assert_eq!(v, Verdict::Drop);
        let v = a.intercept(SimTime::ZERO, n(2), n(1), &Bytes::new(), &mut rng());
        assert_eq!(v, Verdict::Delay(SimDuration::from_micros(1)));
    }

    #[test]
    fn tamper_flips_first_byte() {
        let mut a = Scripted::new();
        a.tamper_from(n(3));
        let v = a.intercept(
            SimTime::ZERO,
            n(3),
            n(1),
            &Bytes::from_static(&[0x01, 0x02]),
            &mut rng(),
        );
        match v {
            Verdict::Tamper(b) => assert_eq!(&b[..], &[0xFE, 0x02]),
            other => panic!("expected tamper, got {other:?}"),
        }
    }

    #[test]
    fn unmatched_rules_pass() {
        let mut a = Scripted::new();
        a.rule(Some(n(9)), Some(n(8)), |_, _| Verdict::Drop);
        let v = a.intercept(SimTime::ZERO, n(9), n(7), &Bytes::new(), &mut rng());
        assert_eq!(v, Verdict::Pass);
    }
}
