//! The discrete-event simulator.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use xbytes::Bytes;
use xrand::rngs::SmallRng;
use xrand::{Rng, SeedableRng};

use crate::adversary::{Adversary, PassThrough, Verdict};
use crate::ledger::FaultLedger;
use crate::net::NetConfig;
use crate::node::{GroupId, NodeId};
use crate::process::{Action, Context, Process, Timer, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, NetStats};

/// Default step budget for [`Simulator::run`]; exceeding it indicates a
/// livelock and panics rather than hanging the test suite.
pub const DEFAULT_STEP_BUDGET: u64 = 50_000_000;

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: NodeId,
        from: NodeId,
        payload: Bytes,
    },
    TimerFire {
        node: NodeId,
        timer: Timer,
    },
}

struct NodeSlot {
    process: Box<dyn Process>,
    rng: SmallRng,
    next_timer: u64,
    cancelled: BTreeSet<TimerId>,
    started: bool,
}

/// A deterministic discrete-event network simulation.
///
/// Construction order fixes node ids; the master seed fixes every latency
/// sample, loss decision, and process RNG draw, so a `(construction,
/// seed)` pair always replays identically.
///
/// # Examples
///
/// ```
/// use xbytes::Bytes;
/// use simnet::{Context, NodeId, Process, Simulator};
///
/// struct Echo;
/// impl Process for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
///         if !from.is_external() {
///             return; // replies only to injected traffic in this example
///         }
///         let _ = payload;
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let node = sim.add_process(Box::new(Echo));
/// sim.inject(node, Bytes::from_static(b"ping"));
/// sim.run();
/// assert!(sim.now().as_micros() > 0 || sim.stats().total.messages == 0);
/// ```
pub struct Simulator {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    event_payloads: BTreeMap<u64, EventKind>,
    nodes: Vec<NodeSlot>,
    groups: BTreeMap<GroupId, BTreeSet<NodeId>>,
    config: NetConfig,
    adversary: Box<dyn Adversary>,
    stats: NetStats,
    fault_ledger: FaultLedger,
    net_rng: SmallRng,
    master_seed: u64,
    obs_clock: Option<std::sync::Arc<itdos_obs::ManualClock>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with the given master seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            event_payloads: BTreeMap::new(),
            nodes: Vec::new(),
            groups: BTreeMap::new(),
            config: NetConfig::default(),
            adversary: Box::new(PassThrough),
            stats: NetStats::default(),
            fault_ledger: FaultLedger::new(),
            net_rng: SmallRng::seed_from_u64(seed ^ 0x6e65_745f_726e_67),
            master_seed: seed,
            obs_clock: None,
        }
    }

    /// Mirrors simulated time into an observability clock: after every
    /// processed event the clock reads `now()` in microseconds, so span
    /// timings and flight-recorder timestamps taken by processes line up
    /// with `SimTime` deterministically.
    pub fn drive_obs_clock(&mut self, clock: std::sync::Arc<itdos_obs::ManualClock>) {
        clock.set(self.now.as_micros());
        self.obs_clock = Some(clock);
    }

    /// Registers a process and returns its node id.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> NodeId {
        self.add_with(|_| process)
    }

    /// Registers a process built from its own node id (useful when the
    /// process needs to know its address at construction).
    pub fn add_with<F>(&mut self, build: F) -> NodeId
    where
        F: FnOnce(NodeId) -> Box<dyn Process>,
    {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        let seed = self
            .master_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(id.as_raw() as u64 + 1);
        self.nodes.push(NodeSlot {
            process: build(id),
            rng: SmallRng::seed_from_u64(seed),
            next_timer: 0,
            cancelled: BTreeSet::new(),
            started: false,
        });
        id
    }

    /// Replaces the process at `id`, keeping the node's RNG and address.
    ///
    /// Useful for two-phase construction when processes hold each other's
    /// addresses. The new process's `on_start` runs before the next event.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn replace_process(&mut self, id: NodeId, process: Box<dyn Process>) {
        let slot = &mut self.nodes[id.as_raw() as usize];
        slot.process = process;
        slot.started = false;
    }

    /// Adds `node` to a multicast group (idempotent).
    pub fn join_group(&mut self, node: NodeId, group: GroupId) {
        self.groups.entry(group).or_default().insert(node);
    }

    /// Removes `node` from a multicast group.
    pub fn leave_group(&mut self, node: NodeId, group: GroupId) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&node);
        }
    }

    /// Returns the current members of `group` in id order.
    pub fn group_members(&self, group: GroupId) -> Vec<NodeId> {
        self.groups
            .get(&group)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics collected so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Undelivered work per node: `(messages, timers)` still scheduled for
    /// each destination. Livelock diagnostics — when a run exhausts its
    /// step budget, this names the nodes the event loop is spinning on.
    pub fn pending_by_node(&self) -> BTreeMap<NodeId, (usize, usize)> {
        let mut out: BTreeMap<NodeId, (usize, usize)> = BTreeMap::new();
        for kind in self.event_payloads.values() {
            match kind {
                EventKind::Deliver { to, .. } => out.entry(*to).or_default().0 += 1,
                EventKind::TimerFire { node, .. } => out.entry(*node).or_default().1 += 1,
            }
        }
        out
    }

    /// Renders [`Simulator::pending_by_node`] as one human-readable line
    /// per node, for livelock panic messages.
    pub fn pending_summary(&self) -> String {
        use std::fmt::Write as _;
        let pending = self.pending_by_node();
        if pending.is_empty() {
            return "no pending events".into();
        }
        let mut out = String::new();
        for (node, (messages, timers)) in pending {
            let _ = writeln!(
                out,
                "  node {}: {messages} pending message(s), {timers} pending timer(s)",
                node.as_raw()
            );
        }
        out
    }

    /// Mutable statistics access (to enable the ledger or reset counters).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Ground-truth ledger of deliberately injected process faults (see
    /// [`crate::ledger`]). Read by regression tests to cross-check
    /// forensic blame sets against what was actually injected.
    pub fn fault_ledger(&self) -> &FaultLedger {
        &self.fault_ledger
    }

    /// Mutable fault ledger, for injectors to mark their victims.
    pub fn fault_ledger_mut(&mut self) -> &mut FaultLedger {
        &mut self.fault_ledger
    }

    /// Network configuration (latency, loss, partitions).
    pub fn config_mut(&mut self) -> &mut NetConfig {
        &mut self.config
    }

    /// Installs a network adversary, replacing the previous one.
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary>) {
        self.adversary = adversary;
    }

    /// Injects a message from [`NodeId::EXTERNAL`] into `to`, delivered at
    /// the current instant (before any already-scheduled later events).
    pub fn inject(&mut self, to: NodeId, payload: Bytes) {
        let kind = EventKind::Deliver {
            to,
            from: NodeId::EXTERNAL,
            payload,
        };
        self.schedule(self.now, kind);
    }

    /// Immutable downcast access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the process is not a `T`.
    pub fn process_ref<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.as_raw() as usize]
            .process
            .as_ref()
            .as_any()
            .downcast_ref::<T>()
            .expect("process has requested type")
    }

    /// Mutable downcast access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the process is not a `T`.
    pub fn process_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.as_raw() as usize]
            .process
            .as_mut()
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("process has requested type")
    }

    /// Runs until no events remain.
    ///
    /// Returns the number of steps executed.
    ///
    /// # Panics
    ///
    /// Panics after [`DEFAULT_STEP_BUDGET`] steps — an endless event loop is
    /// a protocol bug that should fail fast in tests.
    pub fn run(&mut self) -> u64 {
        self.run_steps(DEFAULT_STEP_BUDGET)
            .expect("simulation exceeded step budget (livelock?)")
    }

    /// Runs until quiescent or until `budget` steps have executed.
    ///
    /// Returns `Ok(steps)` on quiescence, `Err(budget)` if the budget was
    /// exhausted first.
    pub fn run_steps(&mut self, budget: u64) -> Result<u64, u64> {
        let mut steps = 0;
        while steps < budget {
            if !self.step() {
                return Ok(steps);
            }
            steps += 1;
        }
        if self.events.is_empty() {
            Ok(steps)
        } else {
            Err(budget)
        }
    }

    /// Runs until the clock passes `deadline` or no events remain. Events at
    /// exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while let Some(&Reverse((t, _, _))) = self.events.peek() {
            if t > deadline {
                break;
            }
            self.step();
            steps += 1;
            assert!(
                steps < DEFAULT_STEP_BUDGET,
                "simulation exceeded step budget before deadline"
            );
        }
        if self.now < deadline {
            self.now = deadline;
        }
        steps
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Processes the next event. Returns false when quiescent.
    pub fn step(&mut self) -> bool {
        self.start_pending();
        let Some(Reverse((t, _, key))) = self.events.pop() else {
            return false;
        };
        let kind = self
            .event_payloads
            .remove(&key)
            .expect("event payload present");
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        if let Some(clock) = &self.obs_clock {
            clock.set(t.as_micros());
        }
        match kind {
            EventKind::Deliver { to, from, payload } => {
                self.dispatch_message(to, from, payload);
            }
            EventKind::TimerFire { node, timer } => {
                let slot = &mut self.nodes[node.as_raw() as usize];
                if slot.cancelled.remove(&timer.id) {
                    return true;
                }
                let mut actions = Vec::new();
                {
                    let mut ctx = Context::new(
                        self.now,
                        node,
                        &mut slot.rng,
                        &mut actions,
                        &mut slot.next_timer,
                    );
                    slot.process.on_timer(&mut ctx, timer);
                }
                self.apply_actions(node, actions);
            }
        }
        true
    }

    fn start_pending(&mut self) {
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].started {
                continue;
            }
            self.nodes[idx].started = true;
            let id = NodeId::from_raw(idx as u32);
            let slot = &mut self.nodes[idx];
            let mut actions = Vec::new();
            {
                let mut ctx = Context::new(
                    self.now,
                    id,
                    &mut slot.rng,
                    &mut actions,
                    &mut slot.next_timer,
                );
                slot.process.on_start(&mut ctx);
            }
            self.apply_actions(id, actions);
        }
    }

    fn dispatch_message(&mut self, to: NodeId, from: NodeId, payload: Bytes) {
        let idx = to.as_raw() as usize;
        if idx >= self.nodes.len() {
            return; // message to a node that never existed: dropped silently
        }
        let slot = &mut self.nodes[idx];
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(
                self.now,
                to,
                &mut slot.rng,
                &mut actions,
                &mut slot.next_timer,
            );
            slot.process.on_message(&mut ctx, from, payload);
        }
        self.apply_actions(to, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, payload, label } => {
                    self.transmit(node, to, payload, label);
                }
                Action::Multicast {
                    group,
                    payload,
                    label,
                } => {
                    let members = self.group_members(group);
                    for member in members {
                        if member != node {
                            self.transmit(node, member, payload.clone(), label);
                        }
                    }
                }
                Action::SetTimer { id, delay, kind } => {
                    let fire_at = self.now + delay;
                    self.schedule(
                        fire_at,
                        EventKind::TimerFire {
                            node,
                            timer: Timer { id, kind },
                        },
                    );
                }
                Action::CancelTimer(id) => {
                    self.nodes[node.as_raw() as usize].cancelled.insert(id);
                }
                Action::Join(group) => self.join_group(node, group),
                Action::Leave(group) => self.leave_group(node, group),
            }
        }
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, payload: Bytes, label: &'static str) {
        if self.config.is_blocked(from, to) {
            self.stats.record(
                self.now,
                from,
                to,
                payload.len(),
                label,
                Some(DropReason::Partition),
            );
            return;
        }
        if self.config.loss_probability > 0.0
            && self.net_rng.gen::<f64>() < self.config.loss_probability
        {
            self.stats.record(
                self.now,
                from,
                to,
                payload.len(),
                label,
                Some(DropReason::Loss),
            );
            return;
        }
        let verdict = self
            .adversary
            .intercept(self.now, from, to, &payload, &mut self.net_rng);
        let latency = self.config.latency(from, to).sample(&mut self.net_rng);
        match verdict {
            Verdict::Pass => self.deliver_after(from, to, payload, label, latency),
            Verdict::Drop => {
                self.stats.record(
                    self.now,
                    from,
                    to,
                    payload.len(),
                    label,
                    Some(DropReason::Adversary),
                );
            }
            Verdict::Delay(extra) => {
                self.deliver_after(from, to, payload, label, latency + extra);
            }
            Verdict::Tamper(tampered) => {
                self.deliver_after(from, to, tampered, label, latency);
            }
            Verdict::Duplicate(extras) => {
                for extra in extras {
                    self.deliver_after(from, to, payload.clone(), label, latency + extra);
                }
                self.deliver_after(from, to, payload, label, latency);
            }
        }
    }

    fn deliver_after(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: Bytes,
        label: &'static str,
        delay: SimDuration,
    ) {
        self.stats
            .record(self.now, from, to, payload.len(), label, None);
        let at = self.now + delay;
        self.schedule(at, EventKind::Deliver { to, from, payload });
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let key = self.seq;
        self.seq += 1;
        self.events.push(Reverse((at, key, key)));
        self.event_payloads.insert(key, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Scripted;
    use crate::net::Latency;

    /// Echoes every injected payload to a peer; counts received messages.
    struct Pinger {
        peer: Option<NodeId>,
        received: Vec<Bytes>,
        timer_fired: u32,
    }

    impl Pinger {
        fn new() -> Self {
            Pinger {
                peer: None,
                received: Vec::new(),
                timer_fired: 0,
            }
        }
    }

    impl Process for Pinger {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
            if from.is_external() {
                if let Some(peer) = self.peer {
                    ctx.send_labeled(peer, payload, "ping");
                }
            } else {
                self.received.push(payload);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: Timer) {
            self.timer_fired += 1;
        }
    }

    fn two_node_sim(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_process(Box::new(Pinger::new()));
        let b = sim.add_process(Box::new(Pinger::new()));
        sim.process_mut::<Pinger>(a).peer = Some(b);
        sim.process_mut::<Pinger>(b).peer = Some(a);
        (sim, a, b)
    }

    #[test]
    fn unicast_delivery() {
        let (mut sim, a, b) = two_node_sim(1);
        sim.inject(a, Bytes::from_static(b"hello"));
        sim.run();
        let rx = &sim.process_ref::<Pinger>(b).received;
        assert_eq!(rx.len(), 1);
        assert_eq!(&rx[0][..], b"hello");
        assert!(sim.now() > SimTime::ZERO, "latency advanced the clock");
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            let (mut sim, a, _) = two_node_sim(seed);
            sim.inject(a, Bytes::from_static(b"x"));
            sim.run();
            sim.now()
        };
        assert_eq!(run(7), run(7));
        // different seeds draw different jitter
        let t1 = run(7);
        let t2 = run(8);
        // may coincidentally be equal, but stats must still match counts
        let _ = (t1, t2);
    }

    #[test]
    fn multicast_excludes_sender() {
        struct Caster {
            group: GroupId,
            got: u32,
        }
        impl Process for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.join(self.group);
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
                if from.is_external() {
                    ctx.multicast(self.group, payload);
                } else {
                    self.got += 1;
                }
            }
        }
        let g = GroupId::from_raw(0);
        let mut sim = Simulator::new(3);
        let n0 = sim.add_process(Box::new(Caster { group: g, got: 0 }));
        let n1 = sim.add_process(Box::new(Caster { group: g, got: 0 }));
        let n2 = sim.add_process(Box::new(Caster { group: g, got: 0 }));
        sim.inject(n0, Bytes::from_static(b"m"));
        sim.run();
        assert_eq!(sim.process_ref::<Caster>(n0).got, 0, "sender excluded");
        assert_eq!(sim.process_ref::<Caster>(n1).got, 1);
        assert_eq!(sim.process_ref::<Caster>(n2).got, 1);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Process for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 10);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(2), 20);
                ctx.cancel_timer(cancel_me);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: Timer) {
                self.fired.push(timer.kind);
            }
        }
        let mut sim = Simulator::new(4);
        let n = sim.add_process(Box::new(Timed { fired: Vec::new() }));
        sim.run();
        assert_eq!(sim.process_ref::<Timed>(n).fired, vec![10]);
    }

    #[test]
    fn partition_blocks_traffic() {
        let (mut sim, a, b) = two_node_sim(5);
        sim.config_mut().partition(&[a], &[b]);
        sim.inject(a, Bytes::from_static(b"x"));
        sim.run();
        assert!(sim.process_ref::<Pinger>(b).received.is_empty());
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn loss_drops_messages_deterministically() {
        let (mut sim, a, b) = two_node_sim(6);
        sim.config_mut().loss_probability = 1.0;
        sim.inject(a, Bytes::from_static(b"x"));
        sim.run();
        assert!(sim.process_ref::<Pinger>(b).received.is_empty());
    }

    #[test]
    fn adversary_can_tamper() {
        let (mut sim, a, b) = two_node_sim(7);
        let mut adv = Scripted::new();
        adv.tamper_from(a);
        sim.set_adversary(Box::new(adv));
        sim.inject(a, Bytes::from_static(&[0x0F, 0x01]));
        sim.run();
        let rx = &sim.process_ref::<Pinger>(b).received;
        assert_eq!(&rx[0][..], &[0xF0, 0x01]);
    }

    #[test]
    fn stats_count_labels() {
        let (mut sim, a, _) = two_node_sim(8);
        sim.inject(a, Bytes::from_static(b"abc"));
        sim.run();
        assert_eq!(sim.stats().label("ping").messages, 1);
        assert_eq!(sim.stats().label("ping").bytes, 3);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _, _) = two_node_sim(9);
        sim.run_until(SimTime::from_micros(500));
        assert_eq!(sim.now(), SimTime::from_micros(500));
    }

    #[test]
    fn deterministic_fixed_latency_delivery_time() {
        let (mut sim, a, _) = two_node_sim(10);
        sim.config_mut().default_latency = Latency::fixed(SimDuration::from_micros(250));
        sim.inject(a, Bytes::from_static(b"x"));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_micros(250));
    }

    #[test]
    fn run_steps_reports_budget_exhaustion() {
        struct Looper {
            me: NodeId,
        }
        impl Process for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.me, Bytes::from_static(b"go"));
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: Bytes) {
                ctx.send(self.me, payload); // self-perpetuating
            }
        }
        let mut sim = Simulator::new(11);
        sim.add_with(|id| Box::new(Looper { me: id }));
        assert!(sim.run_steps(100).is_err());
    }
}
