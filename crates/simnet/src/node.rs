//! Node and multicast-group identities.

use std::fmt;

/// Identifies a process (one host/process pair) in the simulated network.
///
/// `NodeId`s are handed out by [`crate::sim::Simulator::add_process`] in
/// registration order, so a given construction sequence always produces the
/// same ids — part of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The pseudo-node used as the `from` address of externally injected
    /// messages (e.g. test-harness commands); see
    /// [`crate::sim::Simulator::inject`].
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// Creates a node id from its raw index.
    ///
    /// Mostly useful in tests; real ids come from the simulator.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    pub fn as_raw(self) -> u32 {
        self.0
    }

    /// Returns true if this is the [`NodeId::EXTERNAL`] pseudo-node.
    pub fn is_external(self) -> bool {
        self == Self::EXTERNAL
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_external() {
            write!(f, "n<ext>")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Identifies an IP-multicast-style group.
///
/// Groups model the paper's multicast address allocation (§3.4): each
/// replication domain is assigned one group; the simulator delivers a
/// multicast to every current member except the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from its raw index.
    pub fn from_raw(raw: u32) -> Self {
        GroupId(raw)
    }

    /// Returns the raw index.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_node_is_distinguished() {
        assert!(NodeId::EXTERNAL.is_external());
        assert!(!NodeId::from_raw(0).is_external());
        assert_eq!(NodeId::EXTERNAL.to_string(), "n<ext>");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::from_raw(3).to_string(), "n3");
        assert_eq!(GroupId::from_raw(2).to_string(), "g2");
    }

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(NodeId::from_raw(7).as_raw(), 7);
        assert_eq!(GroupId::from_raw(9).as_raw(), 9);
    }
}
