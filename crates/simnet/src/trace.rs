//! Network statistics and optional per-message ledger.
//!
//! The experiment harness (E2, E4, E8) needs exact message and byte counts
//! per protocol phase; senders can attach a static label to each message and
//! the simulator aggregates counts per label, per link, and globally.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::time::SimTime;

/// Aggregate counters for one traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    /// Number of messages sent (before loss).
    pub messages: u64,
    /// Total payload bytes sent (before loss).
    pub bytes: u64,
}

impl Counter {
    fn record(&mut self, len: usize) {
        self.messages += 1;
        self.bytes += len as u64;
    }
}

/// One entry in the message ledger (recorded only when enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Time the message was handed to the network.
    pub sent_at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node (multicasts appear once per receiver).
    pub to: NodeId,
    /// Payload length in bytes.
    pub len: usize,
    /// Sender-supplied label (`""` when unlabeled).
    pub label: &'static str,
    /// Whether the network dropped this copy.
    pub dropped: bool,
}

/// Network-wide statistics collected during a run.
///
/// # Examples
///
/// ```
/// use simnet::trace::NetStats;
///
/// let stats = NetStats::default();
/// assert_eq!(stats.total.messages, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// All traffic.
    pub total: Counter,
    /// Traffic per sender-supplied label.
    pub by_label: BTreeMap<&'static str, Counter>,
    /// Traffic per (from, to) link.
    pub by_link: BTreeMap<(NodeId, NodeId), Counter>,
    /// Copies dropped by loss, partitions, or the adversary.
    pub dropped: u64,
    ledger_enabled: bool,
    ledger: Vec<LedgerEntry>,
}

impl NetStats {
    /// Enables the per-message ledger (disabled by default: it grows with
    /// every delivery).
    pub fn enable_ledger(&mut self) {
        self.ledger_enabled = true;
    }

    /// Returns the recorded ledger entries (empty unless enabled).
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }

    /// Clears counters and the ledger, keeping the ledger-enabled flag.
    pub fn reset(&mut self) {
        let enabled = self.ledger_enabled;
        *self = NetStats::default();
        self.ledger_enabled = enabled;
    }

    /// Returns the counter for `label`, zero if the label never appeared.
    pub fn label(&self, label: &'static str) -> Counter {
        self.by_label.get(label).copied().unwrap_or_default()
    }

    pub(crate) fn record(
        &mut self,
        sent_at: SimTime,
        from: NodeId,
        to: NodeId,
        len: usize,
        label: &'static str,
        dropped: bool,
    ) {
        if dropped {
            self.dropped += 1;
        } else {
            self.total.record(len);
            self.by_label.entry(label).or_default().record(len);
            self.by_link.entry((from, to)).or_default().record(len);
        }
        if self.ledger_enabled {
            self.ledger.push(LedgerEntry {
                sent_at,
                from,
                to,
                len,
                label,
                dropped,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 10, "a", false);
        s.record(SimTime::ZERO, n(0), n(2), 20, "a", false);
        s.record(SimTime::ZERO, n(1), n(0), 5, "b", false);
        assert_eq!(s.total.messages, 3);
        assert_eq!(s.total.bytes, 35);
        assert_eq!(s.label("a").messages, 2);
        assert_eq!(s.label("a").bytes, 30);
        assert_eq!(s.by_link[&(n(0), n(1))].bytes, 10);
    }

    #[test]
    fn drops_counted_separately() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 10, "", true);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.total.messages, 0);
    }

    #[test]
    fn ledger_records_when_enabled() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", false);
        assert!(s.ledger().is_empty(), "ledger off by default");
        s.enable_ledger();
        s.record(SimTime::from_micros(5), n(0), n(1), 2, "y", true);
        assert_eq!(s.ledger().len(), 1);
        let e = &s.ledger()[0];
        assert_eq!(e.label, "y");
        assert!(e.dropped);
    }

    #[test]
    fn reset_preserves_ledger_flag() {
        let mut s = NetStats::default();
        s.enable_ledger();
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", false);
        s.reset();
        assert_eq!(s.total.messages, 0);
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", false);
        assert_eq!(s.ledger().len(), 1, "ledger still enabled after reset");
    }

    #[test]
    fn unknown_label_reads_zero() {
        let s = NetStats::default();
        assert_eq!(s.label("nope"), Counter::default());
    }
}
