//! Network statistics and optional per-message ledger.
//!
//! The experiment harness (E2, E4, E8) needs exact message and byte counts
//! per protocol phase; senders can attach a static label to each message and
//! the simulator aggregates counts per label, per link, and globally.
//! Dropped copies additionally record *why* they were dropped — random
//! loss, a configured partition, or the adversary — both per ledger entry
//! and in the [`NetStats::dropped_by`] counter map, so a fault drill can
//! distinguish an unlucky network from an attack.

use std::collections::{BTreeMap, VecDeque};

use itdos_obs::{LabelValue, Obs};

use crate::node::NodeId;
use crate::time::SimTime;

/// Default bound on the per-message ledger. Long fault drills generate
/// millions of copies; the ledger keeps only the most recent entries.
pub const DEFAULT_LEDGER_CAP: usize = 65_536;

/// Aggregate counters for one traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    /// Number of messages sent (before loss).
    pub messages: u64,
    /// Total payload bytes sent (before loss).
    pub bytes: u64,
}

impl Counter {
    fn record(&mut self, len: usize) {
        self.messages += 1;
        self.bytes += len as u64;
    }
}

/// Why the network dropped a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// Random loss (the `loss_probability` draw).
    Loss,
    /// A configured partition blocked the link.
    Partition,
    /// The adversary returned [`crate::adversary::Verdict::Drop`].
    Adversary,
}

impl DropReason {
    /// Static name, used as a metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Partition => "partition",
            DropReason::Adversary => "adversary",
        }
    }
}

/// One entry in the message ledger (recorded only when enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Time the message was handed to the network.
    pub sent_at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node (multicasts appear once per receiver).
    pub to: NodeId,
    /// Payload length in bytes.
    pub len: usize,
    /// Sender-supplied label (`""` when unlabeled).
    pub label: &'static str,
    /// Why the network dropped this copy (`None` when delivered).
    pub dropped: Option<DropReason>,
}

impl LedgerEntry {
    /// True when the network dropped this copy.
    pub fn is_dropped(&self) -> bool {
        self.dropped.is_some()
    }
}

/// Network-wide statistics collected during a run.
///
/// # Examples
///
/// ```
/// use simnet::trace::NetStats;
///
/// let stats = NetStats::default();
/// assert_eq!(stats.total.messages, 0);
/// ```
#[derive(Debug, Clone)]
pub struct NetStats {
    /// All traffic.
    pub total: Counter,
    /// Traffic per sender-supplied label.
    pub by_label: BTreeMap<&'static str, Counter>,
    /// Traffic per (from, to) link.
    pub by_link: BTreeMap<(NodeId, NodeId), Counter>,
    /// Copies dropped by loss, partitions, or the adversary.
    pub dropped: u64,
    /// Dropped copies broken down by reason.
    pub dropped_by: BTreeMap<DropReason, u64>,
    ledger_enabled: bool,
    ledger_cap: usize,
    ledger: VecDeque<LedgerEntry>,
}

impl Default for NetStats {
    fn default() -> NetStats {
        NetStats {
            total: Counter::default(),
            by_label: BTreeMap::new(),
            by_link: BTreeMap::new(),
            dropped: 0,
            dropped_by: BTreeMap::new(),
            ledger_enabled: false,
            ledger_cap: DEFAULT_LEDGER_CAP,
            ledger: VecDeque::new(),
        }
    }
}

impl NetStats {
    /// Enables the per-message ledger (disabled by default). The ledger is
    /// bounded by [`DEFAULT_LEDGER_CAP`] — override with
    /// [`NetStats::set_ledger_cap`] — and keeps the most recent entries.
    pub fn enable_ledger(&mut self) {
        self.ledger_enabled = true;
    }

    /// Sets the ledger bound, evicting oldest entries if shrinking.
    pub fn set_ledger_cap(&mut self, cap: usize) {
        self.ledger_cap = cap;
        while self.ledger.len() > cap {
            self.ledger.pop_front();
        }
    }

    /// The current ledger bound.
    pub fn ledger_cap(&self) -> usize {
        self.ledger_cap
    }

    /// The recorded ledger entries, oldest first (empty unless enabled).
    pub fn ledger(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.ledger.iter()
    }

    /// Number of retained ledger entries.
    pub fn ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// Copies dropped for `reason` so far.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.dropped_by.get(&reason).copied().unwrap_or(0)
    }

    /// Clears counters and the ledger, keeping the ledger flag and cap.
    pub fn reset(&mut self) {
        let enabled = self.ledger_enabled;
        let cap = self.ledger_cap;
        *self = NetStats::default();
        self.ledger_enabled = enabled;
        self.ledger_cap = cap;
    }

    /// Returns the counter for `label`, zero if the label never appeared.
    pub fn label(&self, label: &'static str) -> Counter {
        self.by_label.get(label).copied().unwrap_or_default()
    }

    /// Mirrors these counters into an [`Obs`] registry under `net.*`
    /// metric names — the bridge that puts simulator traffic and protocol
    /// metrics in one report. Idempotent: values are overwritten, not
    /// accumulated, so it can run after every settle.
    pub fn export_obs(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter_set("net.messages", &[], self.total.messages);
        obs.counter_set("net.bytes", &[], self.total.bytes);
        obs.counter_set("net.dropped", &[], self.dropped);
        for (&reason, &count) in &self.dropped_by {
            obs.counter_set(
                "net.dropped",
                &[("reason", LabelValue::Str(reason.as_str()))],
                count,
            );
        }
        for (&label, counter) in &self.by_label {
            let labels = [("label", LabelValue::Str(label))];
            obs.counter_set("net.messages", &labels, counter.messages);
            obs.counter_set("net.bytes", &labels, counter.bytes);
        }
    }

    pub(crate) fn record(
        &mut self,
        sent_at: SimTime,
        from: NodeId,
        to: NodeId,
        len: usize,
        label: &'static str,
        dropped: Option<DropReason>,
    ) {
        match dropped {
            Some(reason) => {
                self.dropped += 1;
                *self.dropped_by.entry(reason).or_insert(0) += 1;
            }
            None => {
                self.total.record(len);
                self.by_label.entry(label).or_default().record(len);
                self.by_link.entry((from, to)).or_default().record(len);
            }
        }
        if self.ledger_enabled && self.ledger_cap > 0 {
            while self.ledger.len() >= self.ledger_cap {
                self.ledger.pop_front();
            }
            self.ledger.push_back(LedgerEntry {
                sent_at,
                from,
                to,
                len,
                label,
                dropped,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 10, "a", None);
        s.record(SimTime::ZERO, n(0), n(2), 20, "a", None);
        s.record(SimTime::ZERO, n(1), n(0), 5, "b", None);
        assert_eq!(s.total.messages, 3);
        assert_eq!(s.total.bytes, 35);
        assert_eq!(s.label("a").messages, 2);
        assert_eq!(s.label("a").bytes, 30);
        assert_eq!(s.by_link[&(n(0), n(1))].bytes, 10);
    }

    #[test]
    fn drops_counted_by_reason() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 10, "", Some(DropReason::Loss));
        s.record(
            SimTime::ZERO,
            n(0),
            n(1),
            10,
            "",
            Some(DropReason::Partition),
        );
        s.record(
            SimTime::ZERO,
            n(0),
            n(1),
            10,
            "",
            Some(DropReason::Partition),
        );
        assert_eq!(s.dropped, 3);
        assert_eq!(s.dropped_for(DropReason::Loss), 1);
        assert_eq!(s.dropped_for(DropReason::Partition), 2);
        assert_eq!(s.dropped_for(DropReason::Adversary), 0);
        assert_eq!(s.total.messages, 0);
    }

    #[test]
    fn ledger_records_when_enabled() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", None);
        assert_eq!(s.ledger_len(), 0, "ledger off by default");
        s.enable_ledger();
        s.record(
            SimTime::from_micros(5),
            n(0),
            n(1),
            2,
            "y",
            Some(DropReason::Adversary),
        );
        assert_eq!(s.ledger_len(), 1);
        let e = s.ledger().next().unwrap();
        assert_eq!(e.label, "y");
        assert!(e.is_dropped());
        assert_eq!(e.dropped, Some(DropReason::Adversary));
    }

    #[test]
    fn ledger_cap_keeps_most_recent() {
        let mut s = NetStats::default();
        s.enable_ledger();
        s.set_ledger_cap(3);
        for i in 0..10u32 {
            s.record(SimTime::from_micros(i as u64), n(i), n(0), 1, "x", None);
        }
        assert_eq!(s.ledger_len(), 3);
        let froms: Vec<u32> = s.ledger().map(|e| e.from.as_raw()).collect();
        assert_eq!(froms, vec![7, 8, 9], "oldest evicted first");
        // counters are unaffected by eviction
        assert_eq!(s.total.messages, 10);
        s.set_ledger_cap(1);
        assert_eq!(s.ledger_len(), 1);
        assert_eq!(s.ledger().next().unwrap().from, n(9));
    }

    #[test]
    fn reset_preserves_ledger_flag_and_cap() {
        let mut s = NetStats::default();
        s.enable_ledger();
        s.set_ledger_cap(7);
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", None);
        s.reset();
        assert_eq!(s.total.messages, 0);
        assert_eq!(s.ledger_cap(), 7);
        s.record(SimTime::ZERO, n(0), n(1), 1, "x", None);
        assert_eq!(s.ledger_len(), 1, "ledger still enabled after reset");
    }

    #[test]
    fn unknown_label_reads_zero() {
        let s = NetStats::default();
        assert_eq!(s.label("nope"), Counter::default());
    }

    #[test]
    fn export_obs_is_idempotent() {
        let mut s = NetStats::default();
        s.record(SimTime::ZERO, n(0), n(1), 10, "ping", None);
        s.record(SimTime::ZERO, n(0), n(1), 4, "", Some(DropReason::Loss));
        let (obs, _clock) = Obs::manual();
        s.export_obs(&obs);
        s.export_obs(&obs);
        assert_eq!(obs.counter_value("net.messages", &[]), 1);
        assert_eq!(
            obs.counter_value("net.messages", &[("label", LabelValue::Str("ping"))]),
            1
        );
        assert_eq!(
            obs.counter_value("net.dropped", &[("reason", LabelValue::Str("loss"))]),
            1
        );
        // disabled obs: a no-op
        s.export_obs(&Obs::disabled());
    }
}
