//! The process model: event handlers plus a context for emitting actions.

use std::any::Any;

use xbytes::Bytes;
use xrand::rngs::SmallRng;

use crate::node::{GroupId, NodeId};
use crate::time::{SimDuration, SimTime};

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A fired timer: its handle plus the caller-supplied discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// The handle returned by [`Context::set_timer`].
    pub id: TimerId,
    /// Caller-chosen discriminant distinguishing timer purposes.
    pub kind: u64,
}

/// Actions queued by a process during one event handler invocation.
#[derive(Debug)]
pub(crate) enum Action {
    Send {
        to: NodeId,
        payload: Bytes,
        label: &'static str,
    },
    Multicast {
        group: GroupId,
        payload: Bytes,
        label: &'static str,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        kind: u64,
    },
    CancelTimer(TimerId),
    Join(GroupId),
    Leave(GroupId),
}

/// Per-invocation handle through which a process observes and affects the
/// simulated world.
///
/// All effects are buffered and applied by the simulator after the handler
/// returns, so handlers never observe partially applied actions.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    id: NodeId,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<Action>,
    next_timer: &'a mut u64,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        now: SimTime,
        id: NodeId,
        rng: &'a mut SmallRng,
        actions: &'a mut Vec<Action>,
        next_timer: &'a mut u64,
    ) -> Self {
        Context {
            now,
            id,
            rng,
            actions,
            next_timer,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The process-local deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `payload` to `to` as an unlabeled unicast message.
    pub fn send(&mut self, to: NodeId, payload: Bytes) {
        self.send_labeled(to, payload, "");
    }

    /// Sends a unicast message tagged with a statistics label.
    pub fn send_labeled(&mut self, to: NodeId, payload: Bytes, label: &'static str) {
        self.actions.push(Action::Send { to, payload, label });
    }

    /// Multicasts `payload` to every member of `group` except this process.
    pub fn multicast(&mut self, group: GroupId, payload: Bytes) {
        self.multicast_labeled(group, payload, "");
    }

    /// Multicasts tagged with a statistics label.
    pub fn multicast_labeled(&mut self, group: GroupId, payload: Bytes, label: &'static str) {
        self.actions.push(Action::Multicast {
            group,
            payload,
            label,
        });
    }

    /// Schedules a timer to fire after `delay`, carrying `kind`.
    ///
    /// Returns a handle usable with [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, kind: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer { id, delay, kind });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Joins a multicast group.
    pub fn join(&mut self, group: GroupId) {
        self.actions.push(Action::Join(group));
    }

    /// Leaves a multicast group.
    pub fn leave(&mut self, group: GroupId) {
        self.actions.push(Action::Leave(group));
    }
}

/// Downcast support for [`Process`] trait objects.
///
/// Blanket-implemented for every `'static` type; test harnesses use it to
/// inspect process state after a run.
pub trait AsAny {
    /// Upcasts to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated process: a deterministic state machine driven by messages and
/// timers.
///
/// This is the unit the paper calls a *replication domain element* (§2): one
/// OS process hosting a protocol stack. Handlers must be deterministic
/// functions of (state, event, RNG draws) for replay to work.
pub trait Process: AsAny {
    /// Called once when the simulation starts, before any message delivery.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called for each delivered message. `from` is [`NodeId::EXTERNAL`] for
    /// harness-injected messages.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: Timer) {
        let _ = (ctx, timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::SeedableRng;

    #[test]
    fn context_buffers_actions() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut next_timer = 0;
        let mut ctx = Context::new(
            SimTime::from_micros(5),
            NodeId::from_raw(1),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        assert_eq!(ctx.now(), SimTime::from_micros(5));
        assert_eq!(ctx.id(), NodeId::from_raw(1));
        ctx.send(NodeId::from_raw(2), Bytes::from_static(b"hi"));
        let t = ctx.set_timer(SimDuration::from_millis(1), 7);
        ctx.cancel_timer(t);
        ctx.join(GroupId::from_raw(0));
        assert_eq!(actions.len(), 4);
        assert_eq!(next_timer, 1);
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut next_timer = 0;
        let mut ctx = Context::new(
            SimTime::ZERO,
            NodeId::from_raw(0),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        let a = ctx.set_timer(SimDuration::ZERO, 0);
        let b = ctx.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
    }

    struct Dummy;
    impl Process for Dummy {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {}
    }

    #[test]
    fn downcast_via_as_any() {
        let p: Box<dyn Process> = Box::new(Dummy);
        assert!(p.as_ref().as_any().downcast_ref::<Dummy>().is_some());
    }
}
