//! Simulated time.
//!
//! The simulator advances a virtual clock in microsecond ticks. Using a
//! newtype keeps simulated instants and durations from being confused with
//! wall-clock values, and keeps every run deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant later than every reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a microsecond count.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Returns the instant as microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use simnet::time::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Returns the duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_is_saturating() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO.since(SimTime::MAX), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_micros(1_500).as_millis_f64(), 1.5);
    }

    #[test]
    fn since_measures_elapsed_time() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(35);
        assert_eq!(b.since(a), SimDuration::from_micros(25));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(8).to_string(), "8us");
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }
}
