//! IDL-lite interface repository.
//!
//! A minimal stand-in for the CORBA Interface Repository: it maps a *full
//! interface name* to its operations' signatures. ITDOS extends GIOP to
//! carry the full interface name in each message precisely so the Group
//! Manager — which does not run in an ORB — can look up signatures and
//! unmarshal values when validating fault proofs (§3.6).

use std::collections::BTreeMap;

use crate::types::TypeDesc;

/// One operation's signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDef {
    /// Operation name (unique within its interface).
    pub name: String,
    /// Parameter names and types, in declaration order (all `in` params —
    /// `inout`/`out` add nothing to the reproduction).
    pub params: Vec<(String, TypeDesc)>,
    /// Result type ([`TypeDesc::Void`] for void operations).
    pub result: TypeDesc,
}

impl OperationDef {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(String, TypeDesc)>,
        result: TypeDesc,
    ) -> OperationDef {
        OperationDef {
            name: name.into(),
            params,
            result,
        }
    }

    /// The parameter types only (marshalling schema for a request body).
    pub fn param_types(&self) -> Vec<TypeDesc> {
        self.params.iter().map(|(_, t)| t.clone()).collect()
    }
}

/// One interface: a named set of operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    /// Full interface name, e.g. `"Bank::Account"`.
    pub name: String,
    operations: BTreeMap<String, OperationDef>,
}

impl InterfaceDef {
    /// Creates an empty interface.
    pub fn new(name: impl Into<String>) -> InterfaceDef {
        InterfaceDef {
            name: name.into(),
            operations: BTreeMap::new(),
        }
    }

    /// Adds an operation (builder style).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate operation name — IDL would not compile either.
    pub fn with_operation(mut self, op: OperationDef) -> InterfaceDef {
        let prev = self.operations.insert(op.name.clone(), op);
        assert!(prev.is_none(), "duplicate operation name");
        self
    }

    /// Looks up an operation.
    pub fn operation(&self, name: &str) -> Option<&OperationDef> {
        self.operations.get(name)
    }

    /// Iterates operations in name order.
    pub fn operations(&self) -> impl Iterator<Item = &OperationDef> {
        self.operations.values()
    }
}

/// The repository: full interface name → definition.
///
/// # Examples
///
/// ```
/// use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
/// use itdos_giop::types::TypeDesc;
///
/// let mut repo = InterfaceRepository::new();
/// repo.register(
///     InterfaceDef::new("Bank::Account").with_operation(OperationDef::new(
///         "balance",
///         vec![],
///         TypeDesc::LongLong,
///     )),
/// );
/// let op = repo.lookup("Bank::Account", "balance").unwrap();
/// assert_eq!(op.result, TypeDesc::LongLong);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterfaceRepository {
    interfaces: BTreeMap<String, InterfaceDef>,
}

impl InterfaceRepository {
    /// Creates an empty repository.
    pub fn new() -> InterfaceRepository {
        InterfaceRepository::default()
    }

    /// Registers (or replaces) an interface.
    pub fn register(&mut self, interface: InterfaceDef) {
        self.interfaces.insert(interface.name.clone(), interface);
    }

    /// Looks up an interface by full name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces.get(name)
    }

    /// Looks up an operation by interface and operation name.
    pub fn lookup(&self, interface: &str, operation: &str) -> Option<&OperationDef> {
        self.interface(interface)?.operation(operation)
    }

    /// Number of registered interfaces.
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// True when no interface is registered.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account() -> InterfaceDef {
        InterfaceDef::new("Bank::Account")
            .with_operation(OperationDef::new(
                "deposit",
                vec![("amount".into(), TypeDesc::LongLong)],
                TypeDesc::LongLong,
            ))
            .with_operation(OperationDef::new("balance", vec![], TypeDesc::LongLong))
    }

    #[test]
    fn lookup_finds_operations() {
        let mut repo = InterfaceRepository::new();
        repo.register(account());
        assert!(repo.lookup("Bank::Account", "deposit").is_some());
        assert!(repo.lookup("Bank::Account", "missing").is_none());
        assert!(repo.lookup("Nope", "deposit").is_none());
    }

    #[test]
    fn param_types_projects_schema() {
        let op = OperationDef::new(
            "f",
            vec![("a".into(), TypeDesc::Long), ("b".into(), TypeDesc::String)],
            TypeDesc::Void,
        );
        assert_eq!(op.param_types(), vec![TypeDesc::Long, TypeDesc::String]);
    }

    #[test]
    #[should_panic(expected = "duplicate operation")]
    fn duplicate_operation_panics() {
        let _ = InterfaceDef::new("I")
            .with_operation(OperationDef::new("f", vec![], TypeDesc::Void))
            .with_operation(OperationDef::new("f", vec![], TypeDesc::Void));
    }

    #[test]
    fn register_replaces() {
        let mut repo = InterfaceRepository::new();
        repo.register(InterfaceDef::new("I"));
        repo.register(InterfaceDef::new("I").with_operation(OperationDef::new(
            "f",
            vec![],
            TypeDesc::Void,
        )));
        assert_eq!(repo.len(), 1);
        assert!(repo.lookup("I", "f").is_some());
    }

    #[test]
    fn operations_iterate_in_name_order() {
        let i = account();
        let names: Vec<&str> = i.operations().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["balance", "deposit"]);
    }
}
