//! # itdos-giop — CDR marshalling, GIOP messages, and platform profiles
//!
//! The ORB-independent data plane of the ITDOS reproduction:
//!
//! * [`types`] — the CORBA value model ([`types::Value`]) and type
//!   descriptions ([`types::TypeDesc`]);
//! * [`cdr`] — CDR marshalling with real GIOP alignment rules and
//!   sender-chosen byte order;
//! * [`idl`] — an IDL-lite interface repository (full interface name →
//!   operation signatures), which the ITDOS GIOP extension makes reachable
//!   from *outside* an ORB (§3.6);
//! * [`giop`] — GIOP Request/Reply framing plus the ITDOS extension
//!   carrying the full interface name in every message;
//! * [`platform`] — heterogeneity profiles (endianness + deterministic
//!   float divergence) emulating the paper's mixed Solaris/Linux,
//!   C++/Java deployments.
//!
//! The design premise reproduced here: two *correct* replicas on different
//! platforms emit different bytes for the same logical reply, so voting
//! must happen on unmarshalled [`types::Value`]s, not raw frames.
//!
//! # Examples
//!
//! ```
//! use itdos_giop::cdr::Endianness;
//! use itdos_giop::cdr::{Decoder, Encoder};
//! use itdos_giop::types::{TypeDesc, Value};
//!
//! // A big-endian replica and a little-endian replica marshal 1.0:
//! let t = TypeDesc::Double;
//! let v = Value::Double(1.0);
//! let mut be = Encoder::new(Endianness::Big);
//! be.encode(&v, &t)?;
//! let mut le = Encoder::new(Endianness::Little);
//! le.encode(&v, &t)?;
//! assert_ne!(be.clone().into_bytes(), le.clone().into_bytes());
//!
//! // Unmarshalling restores identical values on both sides.
//! let b = Decoder::new(&be.into_bytes(), Endianness::Big).decode(&t)?;
//! let l = Decoder::new(&le.into_bytes(), Endianness::Little).decode(&t)?;
//! assert_eq!(b, l);
//! # Ok::<(), itdos_giop::cdr::CdrError>(())
//! ```

#![warn(missing_docs)]

pub mod cdr;
pub mod giop;
pub mod idl;
pub mod platform;
pub mod types;

pub use cdr::Endianness;
pub use giop::{GiopMessage, ReplyBody, ReplyMessage, RequestMessage};
pub use idl::{InterfaceDef, InterfaceRepository, OperationDef};
pub use platform::PlatformProfile;
pub use types::{TypeDesc, Value};
