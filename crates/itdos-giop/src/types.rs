//! The CORBA value model: typed runtime values and type descriptions.
//!
//! CDR is not self-describing, so marshalling is always guided by a
//! [`TypeDesc`] from the interface repository. Voting (§3.6) operates on
//! [`Value`] trees — *after* unmarshalling — which is what makes
//! heterogeneous replicas comparable.

use std::fmt;

/// A runtime CORBA value.
///
/// # Examples
///
/// ```
/// use itdos_giop::types::{TypeDesc, Value};
///
/// let v = Value::Struct(vec![Value::Long(1), Value::Double(2.5)]);
/// let t = TypeDesc::Struct {
///     name: "Point".into(),
///     fields: vec![("x".into(), TypeDesc::Long), ("y".into(), TypeDesc::Double)],
/// };
/// assert!(v.conforms(&t));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (operation returning `void`).
    Void,
    /// 8-bit uninterpreted byte.
    Octet(u8),
    /// Boolean.
    Boolean(bool),
    /// 16-bit signed integer.
    Short(i16),
    /// 16-bit unsigned integer.
    UShort(u16),
    /// 32-bit signed integer.
    Long(i32),
    /// 32-bit unsigned integer.
    ULong(u32),
    /// 64-bit signed integer.
    LongLong(i64),
    /// 64-bit unsigned integer.
    ULongLong(u64),
    /// IEEE-754 single-precision float.
    Float(f32),
    /// IEEE-754 double-precision float.
    Double(f64),
    /// A string (CORBA strings are not nested values).
    String(String),
    /// A homogeneous sequence.
    Sequence(Vec<Value>),
    /// A struct: field values in declaration order.
    Struct(Vec<Value>),
    /// An enum discriminant.
    Enum(u32),
}

impl Value {
    /// Checks structural conformance to a type description.
    pub fn conforms(&self, desc: &TypeDesc) -> bool {
        match (self, desc) {
            (Value::Void, TypeDesc::Void) => true,
            (Value::Octet(_), TypeDesc::Octet) => true,
            (Value::Boolean(_), TypeDesc::Boolean) => true,
            (Value::Short(_), TypeDesc::Short) => true,
            (Value::UShort(_), TypeDesc::UShort) => true,
            (Value::Long(_), TypeDesc::Long) => true,
            (Value::ULong(_), TypeDesc::ULong) => true,
            (Value::LongLong(_), TypeDesc::LongLong) => true,
            (Value::ULongLong(_), TypeDesc::ULongLong) => true,
            (Value::Float(_), TypeDesc::Float) => true,
            (Value::Double(_), TypeDesc::Double) => true,
            (Value::String(_), TypeDesc::String) => true,
            (Value::Sequence(items), TypeDesc::Sequence(elem)) => {
                items.iter().all(|i| i.conforms(elem))
            }
            (Value::Struct(values), TypeDesc::Struct { fields, .. }) => {
                values.len() == fields.len()
                    && values.iter().zip(fields).all(|(v, (_, t))| v.conforms(t))
            }
            (Value::Enum(d), TypeDesc::Enum { variants, .. }) => (*d as usize) < variants.len(),
            _ => false,
        }
    }

    /// Returns true if the value (recursively) contains floating-point data
    /// — candidates for *inexact* voting (§3.6).
    pub fn contains_float(&self) -> bool {
        match self {
            Value::Float(_) | Value::Double(_) => true,
            Value::Sequence(items) | Value::Struct(items) => {
                items.iter().any(Value::contains_float)
            }
            _ => false,
        }
    }

    /// A short name for the value's kind (diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Octet(_) => "octet",
            Value::Boolean(_) => "boolean",
            Value::Short(_) => "short",
            Value::UShort(_) => "ushort",
            Value::Long(_) => "long",
            Value::ULong(_) => "ulong",
            Value::LongLong(_) => "longlong",
            Value::ULongLong(_) => "ulonglong",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Sequence(_) => "sequence",
            Value::Struct(_) => "struct",
            Value::Enum(_) => "enum",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Void => write!(f, "void"),
            Value::Octet(v) => write!(f, "{v}o"),
            Value::Boolean(v) => write!(f, "{v}"),
            Value::Short(v) => write!(f, "{v}"),
            Value::UShort(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::ULong(v) => write!(f, "{v}"),
            Value::LongLong(v) => write!(f, "{v}"),
            Value::ULongLong(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(v) => write!(f, "{v:?}"),
            Value::Sequence(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Struct(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
            Value::Enum(d) => write!(f, "enum#{d}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Long(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::LongLong(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// A type description (the marshalling schema for one value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDesc {
    /// No value.
    Void,
    /// 8-bit byte.
    Octet,
    /// Boolean.
    Boolean,
    /// 16-bit signed.
    Short,
    /// 16-bit unsigned.
    UShort,
    /// 32-bit signed.
    Long,
    /// 32-bit unsigned.
    ULong,
    /// 64-bit signed.
    LongLong,
    /// 64-bit unsigned.
    ULongLong,
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// String.
    String,
    /// Homogeneous sequence of an element type.
    Sequence(Box<TypeDesc>),
    /// Named struct with named, typed fields.
    Struct {
        /// The struct's IDL name.
        name: String,
        /// Field names and types, in declaration order.
        fields: Vec<(String, TypeDesc)>,
    },
    /// Named enum with named variants.
    Enum {
        /// The enum's IDL name.
        name: String,
        /// Variant names in declaration order.
        variants: Vec<String>,
    },
}

impl TypeDesc {
    /// Convenience constructor for a sequence type.
    pub fn sequence_of(elem: TypeDesc) -> TypeDesc {
        TypeDesc::Sequence(Box::new(elem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_type() -> TypeDesc {
        TypeDesc::Struct {
            name: "Point".into(),
            fields: vec![
                ("x".into(), TypeDesc::Double),
                ("y".into(), TypeDesc::Double),
            ],
        }
    }

    #[test]
    fn primitives_conform() {
        assert!(Value::Long(5).conforms(&TypeDesc::Long));
        assert!(!Value::Long(5).conforms(&TypeDesc::Short));
        assert!(Value::Void.conforms(&TypeDesc::Void));
        assert!(Value::String("a".into()).conforms(&TypeDesc::String));
    }

    #[test]
    fn sequences_check_elements() {
        let t = TypeDesc::sequence_of(TypeDesc::Long);
        assert!(Value::Sequence(vec![Value::Long(1), Value::Long(2)]).conforms(&t));
        assert!(Value::Sequence(vec![]).conforms(&t));
        assert!(!Value::Sequence(vec![Value::Long(1), Value::Double(2.0)]).conforms(&t));
    }

    #[test]
    fn structs_check_arity_and_types() {
        let t = point_type();
        assert!(Value::Struct(vec![Value::Double(1.0), Value::Double(2.0)]).conforms(&t));
        assert!(!Value::Struct(vec![Value::Double(1.0)]).conforms(&t));
        assert!(!Value::Struct(vec![Value::Long(1), Value::Double(2.0)]).conforms(&t));
    }

    #[test]
    fn enums_check_range() {
        let t = TypeDesc::Enum {
            name: "Color".into(),
            variants: vec!["Red".into(), "Green".into()],
        };
        assert!(Value::Enum(1).conforms(&t));
        assert!(!Value::Enum(2).conforms(&t));
    }

    #[test]
    fn contains_float_recurses() {
        assert!(Value::Double(1.0).contains_float());
        assert!(Value::Struct(vec![Value::Long(1), Value::Float(0.5)]).contains_float());
        assert!(!Value::Sequence(vec![Value::Long(1)]).contains_float());
        assert!(Value::Sequence(vec![Value::Struct(vec![Value::Double(0.0)])]).contains_float());
    }

    #[test]
    fn display_is_readable() {
        let v = Value::Struct(vec![Value::Long(1), Value::String("a".into())]);
        assert_eq!(v.to_string(), "{1, \"a\"}");
        assert_eq!(Value::Sequence(vec![Value::Octet(7)]).to_string(), "[7o]");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Long(3));
        assert_eq!(Value::from(3i64), Value::LongLong(3));
        assert_eq!(Value::from(1.5f64), Value::Double(1.5));
        assert_eq!(Value::from(true), Value::Boolean(true));
        assert_eq!(Value::from("hi"), Value::String("hi".into()));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Octet(0).kind(), "octet");
        assert_eq!(Value::Struct(vec![]).kind(), "struct");
    }
}
