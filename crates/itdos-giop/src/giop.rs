//! GIOP messages with the ITDOS extension.
//!
//! Standard GIOP frames carry a 12-byte header (magic, version, flags,
//! message type, body size) followed by a CDR body in the sender's byte
//! order. ITDOS extends the Request *and* Reply headers with the **full
//! interface name** and operation, "which GIOP doesn't normally provide"
//! (§3.6) — the Group Manager needs them to unmarshal and vote on proof
//! messages without running inside an ORB.

use crate::cdr::{CdrError, Decoder, Encoder, Endianness};
use crate::idl::InterfaceRepository;
use crate::types::Value;

/// GIOP magic bytes.
pub const MAGIC: [u8; 4] = *b"GIOP";

/// Protocol version advertised in the header (GIOP 1.2 + ITDOS extension).
pub const VERSION: (u8, u8) = (1, 2);

/// The body of a reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Normal completion with the operation result.
    Result(Value),
    /// The servant raised a declared (user) exception.
    UserException {
        /// Exception repository id.
        name: String,
    },
    /// The ORB or transport raised a system exception.
    SystemException {
        /// Minor code.
        minor: u32,
    },
}

/// A GIOP Request with ITDOS extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMessage {
    /// Strictly increasing per-connection request identifier (§3.6).
    pub request_id: u64,
    /// Whether the client expects a reply (oneway operations do not).
    pub response_expected: bool,
    /// Opaque key naming the target object within its server.
    pub object_key: Vec<u8>,
    /// ITDOS extension: full interface name.
    pub interface: String,
    /// Operation name.
    pub operation: String,
    /// Unmarshalled arguments (marshalled per the interface repository).
    pub args: Vec<Value>,
}

/// A GIOP Reply with ITDOS extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMessage {
    /// Matches the originating request's id.
    pub request_id: u64,
    /// ITDOS extension: full interface name (lets a non-ORB voter find the
    /// result schema).
    pub interface: String,
    /// ITDOS extension: operation name.
    pub operation: String,
    /// Completion status and payload.
    pub body: ReplyBody,
}

/// Any GIOP message.
#[derive(Debug, Clone, PartialEq)]
pub enum GiopMessage {
    /// An invocation.
    Request(RequestMessage),
    /// An invocation result.
    Reply(ReplyMessage),
    /// Orderly connection shutdown.
    CloseConnection,
    /// The peer sent an unintelligible message.
    MessageError,
}

const MSG_REQUEST: u8 = 0;
const MSG_REPLY: u8 = 1;
const MSG_CLOSE: u8 = 5;
const MSG_ERROR: u8 = 6;

const STATUS_NO_EXCEPTION: u32 = 0;
const STATUS_USER_EXCEPTION: u32 = 1;
const STATUS_SYSTEM_EXCEPTION: u32 = 2;

/// GIOP encode/decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GiopError {
    /// Underlying CDR failure.
    Cdr(CdrError),
    /// Header magic was not `GIOP`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8, u8),
    /// Unknown message type octet.
    BadMessageType(u8),
    /// Frame shorter than its declared size.
    Truncated,
    /// Interface not present in the repository.
    UnknownInterface(String),
    /// Operation not present on the interface.
    UnknownOperation {
        /// Interface searched.
        interface: String,
        /// Operation requested.
        operation: String,
    },
    /// Unknown reply status discriminant.
    BadReplyStatus(u32),
}

impl std::fmt::Display for GiopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GiopError::Cdr(e) => write!(f, "cdr error: {e}"),
            GiopError::BadMagic => write!(f, "bad GIOP magic"),
            GiopError::BadVersion(major, minor) => {
                write!(f, "unsupported GIOP version {major}.{minor}")
            }
            GiopError::BadMessageType(t) => write!(f, "unknown GIOP message type {t}"),
            GiopError::Truncated => write!(f, "truncated GIOP frame"),
            GiopError::UnknownInterface(i) => write!(f, "unknown interface {i:?}"),
            GiopError::UnknownOperation {
                interface,
                operation,
            } => write!(f, "unknown operation {operation:?} on {interface:?}"),
            GiopError::BadReplyStatus(s) => write!(f, "unknown reply status {s}"),
        }
    }
}

impl std::error::Error for GiopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GiopError::Cdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdrError> for GiopError {
    fn from(e: CdrError) -> GiopError {
        GiopError::Cdr(e)
    }
}

/// Encodes a message into a framed GIOP byte stream in the given byte
/// order.
///
/// # Errors
///
/// Fails when the repository lacks the interface/operation or a value does
/// not conform to its declared type.
///
/// # Examples
///
/// ```
/// use itdos_giop::cdr::Endianness;
/// use itdos_giop::giop::{decode_message, encode_message, GiopMessage, RequestMessage};
/// use itdos_giop::idl::{InterfaceDef, InterfaceRepository, OperationDef};
/// use itdos_giop::types::{TypeDesc, Value};
///
/// let mut repo = InterfaceRepository::new();
/// repo.register(InterfaceDef::new("Echo").with_operation(OperationDef::new(
///     "echo",
///     vec![("s".into(), TypeDesc::String)],
///     TypeDesc::String,
/// )));
/// let msg = GiopMessage::Request(RequestMessage {
///     request_id: 1,
///     response_expected: true,
///     object_key: b"obj".to_vec(),
///     interface: "Echo".into(),
///     operation: "echo".into(),
///     args: vec![Value::String("hi".into())],
/// });
/// let bytes = encode_message(&msg, &repo, Endianness::Little)?;
/// assert_eq!(decode_message(&bytes, &repo)?, msg);
/// # Ok::<(), itdos_giop::giop::GiopError>(())
/// ```
pub fn encode_message(
    message: &GiopMessage,
    repo: &InterfaceRepository,
    endianness: Endianness,
) -> Result<Vec<u8>, GiopError> {
    let (msg_type, body) = match message {
        GiopMessage::Request(req) => (MSG_REQUEST, encode_request(req, repo, endianness)?),
        GiopMessage::Reply(rep) => (MSG_REPLY, encode_reply(rep, repo, endianness)?),
        GiopMessage::CloseConnection => (MSG_CLOSE, Vec::new()),
        GiopMessage::MessageError => (MSG_ERROR, Vec::new()),
    };
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION.0);
    out.push(VERSION.1);
    out.push(endianness.flag_bit());
    out.push(msg_type);
    let size = body.len() as u32;
    match endianness {
        Endianness::Big => out.extend_from_slice(&size.to_be_bytes()),
        Endianness::Little => out.extend_from_slice(&size.to_le_bytes()),
    }
    out.extend_from_slice(&body);
    Ok(out)
}

fn encode_request(
    req: &RequestMessage,
    repo: &InterfaceRepository,
    endianness: Endianness,
) -> Result<Vec<u8>, GiopError> {
    let op =
        repo.lookup(&req.interface, &req.operation)
            .ok_or_else(|| GiopError::UnknownOperation {
                interface: req.interface.clone(),
                operation: req.operation.clone(),
            })?;
    let mut enc = Encoder::new(endianness);
    enc.encode(
        &Value::ULongLong(req.request_id),
        &crate::types::TypeDesc::ULongLong,
    )?;
    enc.encode(
        &Value::Boolean(req.response_expected),
        &crate::types::TypeDesc::Boolean,
    )?;
    enc.encode(
        &Value::Sequence(req.object_key.iter().map(|b| Value::Octet(*b)).collect()),
        &crate::types::TypeDesc::sequence_of(crate::types::TypeDesc::Octet),
    )?;
    enc.put_string(&req.interface);
    enc.put_string(&req.operation);
    for (value, (_, ty)) in req.args.iter().zip(&op.params) {
        enc.encode(value, ty)?;
    }
    if req.args.len() != op.params.len() {
        return Err(GiopError::Cdr(CdrError::TypeMismatch {
            value_kind: "argument list",
            expected: format!("{} parameters", op.params.len()),
        }));
    }
    Ok(enc.into_bytes())
}

fn encode_reply(
    rep: &ReplyMessage,
    repo: &InterfaceRepository,
    endianness: Endianness,
) -> Result<Vec<u8>, GiopError> {
    let op =
        repo.lookup(&rep.interface, &rep.operation)
            .ok_or_else(|| GiopError::UnknownOperation {
                interface: rep.interface.clone(),
                operation: rep.operation.clone(),
            })?;
    let mut enc = Encoder::new(endianness);
    enc.encode(
        &Value::ULongLong(rep.request_id),
        &crate::types::TypeDesc::ULongLong,
    )?;
    enc.put_string(&rep.interface);
    enc.put_string(&rep.operation);
    match &rep.body {
        ReplyBody::Result(result) => {
            enc.encode(
                &Value::ULong(STATUS_NO_EXCEPTION),
                &crate::types::TypeDesc::ULong,
            )?;
            enc.encode(result, &op.result)?;
        }
        ReplyBody::UserException { name } => {
            enc.encode(
                &Value::ULong(STATUS_USER_EXCEPTION),
                &crate::types::TypeDesc::ULong,
            )?;
            enc.put_string(name);
        }
        ReplyBody::SystemException { minor } => {
            enc.encode(
                &Value::ULong(STATUS_SYSTEM_EXCEPTION),
                &crate::types::TypeDesc::ULong,
            )?;
            enc.encode(&Value::ULong(*minor), &crate::types::TypeDesc::ULong)?;
        }
    }
    Ok(enc.into_bytes())
}

/// Decodes a framed GIOP byte stream, using the repository for body
/// schemas.
///
/// # Errors
///
/// Any [`GiopError`] on malformed frames or unknown interfaces; Byzantine
/// peers control these bytes, so every failure is non-panicking.
pub fn decode_message(bytes: &[u8], repo: &InterfaceRepository) -> Result<GiopMessage, GiopError> {
    // destructure the 12-byte header without indexing: a short or hostile
    // frame surfaces Truncated, never a panic
    let Some((header, rest)) = bytes.split_at_checked(12) else {
        return Err(GiopError::Truncated);
    };
    let &[m0, m1, m2, m3, vmaj, vmin, flags, msg_type, s0, s1, s2, s3] = header else {
        return Err(GiopError::Truncated);
    };
    if [m0, m1, m2, m3] != MAGIC {
        return Err(GiopError::BadMagic);
    }
    if (vmaj, vmin) != VERSION {
        return Err(GiopError::BadVersion(vmaj, vmin));
    }
    let endianness = Endianness::from_flag_bit(flags);
    let size_bytes = [s0, s1, s2, s3];
    let size = match endianness {
        Endianness::Big => u32::from_be_bytes(size_bytes),
        Endianness::Little => u32::from_le_bytes(size_bytes),
    } as usize;
    let Some(body) = rest.get(..size) else {
        return Err(GiopError::Truncated);
    };
    match msg_type {
        MSG_REQUEST => decode_request(body, repo, endianness).map(GiopMessage::Request),
        MSG_REPLY => decode_reply(body, repo, endianness).map(GiopMessage::Reply),
        MSG_CLOSE => Ok(GiopMessage::CloseConnection),
        MSG_ERROR => Ok(GiopMessage::MessageError),
        other => Err(GiopError::BadMessageType(other)),
    }
}

fn decode_request(
    body: &[u8],
    repo: &InterfaceRepository,
    endianness: Endianness,
) -> Result<RequestMessage, GiopError> {
    let mut dec = Decoder::new(body, endianness);
    let request_id = match dec.decode(&crate::types::TypeDesc::ULongLong)? {
        Value::ULongLong(v) => v,
        _ => unreachable!("decode honors desc"),
    };
    let response_expected = match dec.decode(&crate::types::TypeDesc::Boolean)? {
        Value::Boolean(v) => v,
        _ => unreachable!("decode honors desc"),
    };
    let object_key = match dec.decode(&crate::types::TypeDesc::sequence_of(
        crate::types::TypeDesc::Octet,
    ))? {
        Value::Sequence(items) => items
            .into_iter()
            .map(|v| match v {
                Value::Octet(b) => b,
                _ => unreachable!("octet sequence"),
            })
            .collect(),
        _ => unreachable!("decode honors desc"),
    };
    let interface = dec.take_string()?;
    let operation = dec.take_string()?;
    let op = repo
        .lookup(&interface, &operation)
        .ok_or_else(|| GiopError::UnknownOperation {
            interface: interface.clone(),
            operation: operation.clone(),
        })?;
    let mut args = Vec::with_capacity(op.params.len());
    for (_, ty) in &op.params {
        args.push(dec.decode(ty)?);
    }
    Ok(RequestMessage {
        request_id,
        response_expected,
        object_key,
        interface,
        operation,
        args,
    })
}

fn decode_reply(
    body: &[u8],
    repo: &InterfaceRepository,
    endianness: Endianness,
) -> Result<ReplyMessage, GiopError> {
    let mut dec = Decoder::new(body, endianness);
    let request_id = match dec.decode(&crate::types::TypeDesc::ULongLong)? {
        Value::ULongLong(v) => v,
        _ => unreachable!("decode honors desc"),
    };
    let interface = dec.take_string()?;
    let operation = dec.take_string()?;
    let op = repo
        .lookup(&interface, &operation)
        .ok_or_else(|| GiopError::UnknownOperation {
            interface: interface.clone(),
            operation: operation.clone(),
        })?;
    let status = match dec.decode(&crate::types::TypeDesc::ULong)? {
        Value::ULong(v) => v,
        _ => unreachable!("decode honors desc"),
    };
    let body = match status {
        STATUS_NO_EXCEPTION => ReplyBody::Result(dec.decode(&op.result)?),
        STATUS_USER_EXCEPTION => ReplyBody::UserException {
            name: dec.take_string()?,
        },
        STATUS_SYSTEM_EXCEPTION => match dec.decode(&crate::types::TypeDesc::ULong)? {
            Value::ULong(minor) => ReplyBody::SystemException { minor },
            _ => unreachable!("decode honors desc"),
        },
        other => return Err(GiopError::BadReplyStatus(other)),
    };
    Ok(ReplyMessage {
        request_id,
        interface,
        operation,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idl::{InterfaceDef, OperationDef};
    use crate::types::TypeDesc;

    fn repo() -> InterfaceRepository {
        let mut repo = InterfaceRepository::new();
        repo.register(
            InterfaceDef::new("Sensor::Array")
                .with_operation(OperationDef::new(
                    "read",
                    vec![("channel".into(), TypeDesc::ULong)],
                    TypeDesc::sequence_of(TypeDesc::Double),
                ))
                .with_operation(OperationDef::new(
                    "calibrate",
                    vec![("offset".into(), TypeDesc::Double)],
                    TypeDesc::Void,
                )),
        );
        repo
    }

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 42,
            response_expected: true,
            object_key: vec![1, 2, 3],
            interface: "Sensor::Array".into(),
            operation: "read".into(),
            args: vec![Value::ULong(7)],
        }
    }

    #[test]
    fn request_round_trips_both_endiannesses() {
        let repo = repo();
        let msg = GiopMessage::Request(sample_request());
        for e in [Endianness::Big, Endianness::Little] {
            let bytes = encode_message(&msg, &repo, e).unwrap();
            assert_eq!(decode_message(&bytes, &repo).unwrap(), msg, "{e:?}");
        }
    }

    #[test]
    fn reply_round_trips_all_statuses() {
        let repo = repo();
        let bodies = [
            ReplyBody::Result(Value::Sequence(vec![Value::Double(1.5)])),
            ReplyBody::UserException {
                name: "Sensor::Offline".into(),
            },
            ReplyBody::SystemException { minor: 3 },
        ];
        for body in bodies {
            let msg = GiopMessage::Reply(ReplyMessage {
                request_id: 9,
                interface: "Sensor::Array".into(),
                operation: "read".into(),
                body,
            });
            let bytes = encode_message(&msg, &repo, Endianness::Little).unwrap();
            assert_eq!(decode_message(&bytes, &repo).unwrap(), msg);
        }
    }

    #[test]
    fn bodyless_messages_round_trip() {
        let repo = repo();
        for msg in [GiopMessage::CloseConnection, GiopMessage::MessageError] {
            let bytes = encode_message(&msg, &repo, Endianness::Big).unwrap();
            assert_eq!(bytes.len(), 12, "header only");
            assert_eq!(decode_message(&bytes, &repo).unwrap(), msg);
        }
    }

    #[test]
    fn cross_endianness_decode_yields_same_values() {
        // a big-endian replica and little-endian replica marshal the same
        // reply; receivers decode each correctly to identical Values even
        // though the wire bytes differ — the heterogeneity premise of §3.6
        let repo = repo();
        let msg = GiopMessage::Reply(ReplyMessage {
            request_id: 1,
            interface: "Sensor::Array".into(),
            operation: "read".into(),
            body: ReplyBody::Result(Value::Sequence(vec![Value::Double(0.125)])),
        });
        let be = encode_message(&msg, &repo, Endianness::Big).unwrap();
        let le = encode_message(&msg, &repo, Endianness::Little).unwrap();
        assert_ne!(be, le, "byte-by-byte comparison would fail");
        assert_eq!(
            decode_message(&be, &repo).unwrap(),
            decode_message(&le, &repo).unwrap(),
            "unmarshalled comparison succeeds"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let repo = repo();
        let mut bytes =
            encode_message(&GiopMessage::CloseConnection, &repo, Endianness::Big).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode_message(&bytes, &repo), Err(GiopError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let repo = repo();
        let mut bytes =
            encode_message(&GiopMessage::CloseConnection, &repo, Endianness::Big).unwrap();
        bytes[4] = 9;
        assert_eq!(
            decode_message(&bytes, &repo),
            Err(GiopError::BadVersion(9, 2))
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let repo = repo();
        let bytes = encode_message(
            &GiopMessage::Request(sample_request()),
            &repo,
            Endianness::Big,
        )
        .unwrap();
        assert_eq!(
            decode_message(&bytes[..bytes.len() - 1], &repo),
            Err(GiopError::Truncated)
        );
        assert_eq!(
            decode_message(&bytes[..5], &repo),
            Err(GiopError::Truncated)
        );
    }

    #[test]
    fn unknown_operation_rejected_on_encode_and_decode() {
        let repo = repo();
        let mut req = sample_request();
        req.operation = "nope".into();
        let err = encode_message(&GiopMessage::Request(req), &repo, Endianness::Big).unwrap_err();
        assert!(matches!(err, GiopError::UnknownOperation { .. }));
    }

    #[test]
    fn wrong_arity_rejected_on_encode() {
        let repo = repo();
        let mut req = sample_request();
        req.args = vec![];
        assert!(encode_message(&GiopMessage::Request(req), &repo, Endianness::Big).is_err());
    }

    #[test]
    fn bad_message_type_rejected() {
        let repo = repo();
        let mut bytes =
            encode_message(&GiopMessage::CloseConnection, &repo, Endianness::Big).unwrap();
        bytes[7] = 99;
        assert_eq!(
            decode_message(&bytes, &repo),
            Err(GiopError::BadMessageType(99))
        );
    }

    #[test]
    fn bad_reply_status_rejected() {
        let repo = repo();
        // craft a reply with status 7 by hand
        let mut enc = Encoder::new(Endianness::Big);
        enc.encode(&Value::ULongLong(1), &TypeDesc::ULongLong)
            .unwrap();
        enc.put_string("Sensor::Array");
        enc.put_string("read");
        enc.encode(&Value::ULong(7), &TypeDesc::ULong).unwrap();
        let body = enc.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION.0);
        bytes.push(VERSION.1);
        bytes.push(0);
        bytes.push(MSG_REPLY);
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);
        assert_eq!(
            decode_message(&bytes, &repo),
            Err(GiopError::BadReplyStatus(7))
        );
    }

    #[test]
    fn void_reply_round_trips() {
        let repo = repo();
        let msg = GiopMessage::Reply(ReplyMessage {
            request_id: 2,
            interface: "Sensor::Array".into(),
            operation: "calibrate".into(),
            body: ReplyBody::Result(Value::Void),
        });
        let bytes = encode_message(&msg, &repo, Endianness::Little).unwrap();
        assert_eq!(decode_message(&bytes, &repo).unwrap(), msg);
    }
}
