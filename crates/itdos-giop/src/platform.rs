//! Platform heterogeneity profiles.
//!
//! The paper's central premise: replicas of one service run on *different*
//! platforms and language runtimes ("implementation diversity in both
//! language and platform", §2.2), so correct replicas produce replies that
//! are semantically equal but not byte-identical. Two concrete mechanisms
//! are modeled:
//!
//! 1. **Byte order** — each profile marshals CDR in its native endianness,
//!    so raw GIOP frames differ across correct replicas.
//! 2. **Floating-point divergence** — "the accuracy of floating point and
//!    other data types may vary from platform to platform" (§3.6): each
//!    profile perturbs computed floats by a deterministic, platform-specific
//!    relative error within `FLOAT_TOLERANCE`, emulating different math
//!    libraries / FPU modes.

use crate::cdr::Endianness;
use crate::types::Value;

/// Relative float divergence bound across platform profiles. Inexact
/// voting must tolerate differences up to roughly twice this bound.
pub const FLOAT_TOLERANCE: f64 = 1e-9;

/// A platform/language implementation profile for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformProfile {
    /// Human-readable platform name (e.g. `"sparc-solaris-cxx"`).
    pub name: &'static str,
    /// Native byte order used when marshalling.
    pub endianness: Endianness,
    /// Per-platform float perturbation selector; 0 means exact. Distinct
    /// non-zero ids diverge from each other deterministically.
    pub float_lane: u8,
}

impl PlatformProfile {
    /// SPARC Solaris, C++ servant — big-endian, exact libm (the reference
    /// lane).
    pub const SPARC_SOLARIS: PlatformProfile = PlatformProfile {
        name: "sparc-solaris-cxx",
        endianness: Endianness::Big,
        float_lane: 0,
    };

    /// x86 Linux, C++ servant — little-endian, slightly divergent libm.
    pub const X86_LINUX: PlatformProfile = PlatformProfile {
        name: "x86-linux-cxx",
        endianness: Endianness::Little,
        float_lane: 1,
    };

    /// x86 Linux, Java servant — little-endian, strictfp-but-different
    /// rounding lane.
    pub const X86_LINUX_JAVA: PlatformProfile = PlatformProfile {
        name: "x86-linux-java",
        endianness: Endianness::Little,
        float_lane: 2,
    };

    /// PowerPC AIX, C servant — big-endian, fused-multiply-add lane.
    pub const PPC_AIX: PlatformProfile = PlatformProfile {
        name: "ppc-aix-c",
        endianness: Endianness::Big,
        float_lane: 3,
    };

    /// The four built-in profiles, enough for an f=1 heterogeneous domain
    /// with no two replicas alike.
    pub const ALL: [PlatformProfile; 4] = [
        PlatformProfile::SPARC_SOLARIS,
        PlatformProfile::X86_LINUX,
        PlatformProfile::X86_LINUX_JAVA,
        PlatformProfile::PPC_AIX,
    ];

    /// Picks a profile for replica `index`, cycling through [`Self::ALL`].
    pub fn for_replica(index: usize) -> PlatformProfile {
        PlatformProfile::ALL[index % PlatformProfile::ALL.len()]
    }

    /// Applies this platform's floating-point lane to a computed `f64`.
    ///
    /// Lane 0 returns the value unchanged; other lanes apply a relative
    /// perturbation of at most [`FLOAT_TOLERANCE`], deterministic in
    /// `(lane, value)` so a replica is self-consistent.
    pub fn perturb_f64(&self, value: f64) -> f64 {
        if self.float_lane == 0 || !value.is_finite() || value == 0.0 {
            return value;
        }
        // deterministic pseudo-noise in [-1, 1] from (lane, bits)
        let mut h = value.to_bits() ^ (self.float_lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let noise = (h as i64 as f64) / (i64::MAX as f64);
        value * (1.0 + noise * FLOAT_TOLERANCE)
    }

    /// Applies [`PlatformProfile::perturb_f64`] recursively to every float
    /// in a value tree (what a servant's computed result looks like on this
    /// platform).
    pub fn perturb_value(&self, value: &Value) -> Value {
        match value {
            Value::Float(v) => Value::Float(self.perturb_f64(*v as f64) as f32),
            Value::Double(v) => Value::Double(self.perturb_f64(*v)),
            Value::Sequence(items) => {
                Value::Sequence(items.iter().map(|i| self.perturb_value(i)).collect())
            }
            Value::Struct(items) => {
                Value::Struct(items.iter().map(|i| self.perturb_value(i)).collect())
            }
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_distinct() {
        for (i, a) in PlatformProfile::ALL.iter().enumerate() {
            for b in &PlatformProfile::ALL[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn reference_lane_is_exact() {
        let p = PlatformProfile::SPARC_SOLARIS;
        assert_eq!(p.perturb_f64(1.234), 1.234);
    }

    #[test]
    fn other_lanes_diverge_within_tolerance() {
        let v = 123.456789;
        for p in &PlatformProfile::ALL[1..] {
            let perturbed = p.perturb_f64(v);
            let rel = ((perturbed - v) / v).abs();
            assert!(rel <= FLOAT_TOLERANCE * 1.0001, "{}: rel {rel}", p.name);
        }
        // at least one lane actually moves the value
        assert!(PlatformProfile::ALL[1..]
            .iter()
            .any(|p| p.perturb_f64(v) != v));
    }

    #[test]
    fn perturbation_is_deterministic_per_platform() {
        let p = PlatformProfile::X86_LINUX;
        assert_eq!(p.perturb_f64(7.5), p.perturb_f64(7.5));
    }

    #[test]
    fn lanes_diverge_from_each_other() {
        let v = 0.333_333_333_333;
        let a = PlatformProfile::X86_LINUX.perturb_f64(v);
        let b = PlatformProfile::X86_LINUX_JAVA.perturb_f64(v);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_nan_inf_untouched() {
        let p = PlatformProfile::PPC_AIX;
        assert_eq!(p.perturb_f64(0.0), 0.0);
        assert!(p.perturb_f64(f64::NAN).is_nan());
        assert_eq!(p.perturb_f64(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn perturb_value_recurses_and_preserves_non_floats() {
        let p = PlatformProfile::X86_LINUX;
        let v = Value::Struct(vec![
            Value::Long(5),
            Value::Double(1.5),
            Value::Sequence(vec![Value::Double(2.5)]),
            Value::String("s".into()),
        ]);
        let out = p.perturb_value(&v);
        match &out {
            Value::Struct(items) => {
                assert_eq!(items[0], Value::Long(5));
                assert_eq!(items[3], Value::String("s".into()));
                assert!(matches!(items[1], Value::Double(d) if d != 1.5));
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn for_replica_cycles() {
        assert_eq!(PlatformProfile::for_replica(0), PlatformProfile::ALL[0]);
        assert_eq!(PlatformProfile::for_replica(5), PlatformProfile::ALL[1]);
    }

    #[test]
    fn profiles_mix_endiannesses() {
        let big = PlatformProfile::ALL
            .iter()
            .filter(|p| p.endianness == Endianness::Big)
            .count();
        assert!(big > 0 && big < PlatformProfile::ALL.len());
    }
}
