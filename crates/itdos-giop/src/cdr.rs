//! CDR (Common Data Representation) marshalling.
//!
//! Faithful to the GIOP 1.x CDR rules that matter for heterogeneity:
//! primitives are aligned to their natural size *relative to the start of
//! the encapsulation*, strings carry a length (including NUL) and a NUL
//! terminator, sequences carry a `u32` count, and **the byte order is the
//! sender's native order** — the receiver byte-swaps. Two correct replicas
//! on different platforms therefore produce different bytes for the same
//! value, which is exactly why the paper votes on unmarshalled data
//! (§3.6).

use crate::types::{TypeDesc, Value};

/// Byte order of an encapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Most significant byte first.
    Big,
    /// Least significant byte first (flag bit set in GIOP).
    Little,
}

impl Endianness {
    /// The GIOP flags bit for this byte order.
    pub fn flag_bit(self) -> u8 {
        match self {
            Endianness::Big => 0,
            Endianness::Little => 1,
        }
    }

    /// Parses the GIOP flags bit.
    pub fn from_flag_bit(bit: u8) -> Endianness {
        if bit & 1 == 1 {
            Endianness::Little
        } else {
            Endianness::Big
        }
    }
}

/// Marshalling/unmarshalling failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// Input ended before the value was complete.
    Truncated {
        /// Bytes needed at the failure point.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A string was not valid UTF-8 or not NUL-terminated.
    BadString,
    /// A boolean octet was neither 0 nor 1.
    BadBoolean(u8),
    /// An enum discriminant exceeded the variant count.
    BadEnum {
        /// The discriminant read.
        discriminant: u32,
        /// Number of declared variants.
        variants: usize,
    },
    /// A sequence length exceeded the sanity limit.
    OversizedSequence(u32),
    /// A value did not conform to the type description during encoding.
    TypeMismatch {
        /// Kind of the value supplied.
        value_kind: &'static str,
        /// Description of the expected type.
        expected: String,
    },
}

impl std::fmt::Display for CdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdrError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} remain"
                )
            }
            CdrError::BadString => write!(f, "malformed CDR string"),
            CdrError::BadBoolean(b) => write!(f, "invalid boolean octet {b:#04x}"),
            CdrError::BadEnum {
                discriminant,
                variants,
            } => write!(
                f,
                "enum discriminant {discriminant} out of range ({variants} variants)"
            ),
            CdrError::OversizedSequence(n) => write!(f, "sequence length {n} exceeds limit"),
            CdrError::TypeMismatch {
                value_kind,
                expected,
            } => write!(
                f,
                "value of kind {value_kind} does not match type {expected}"
            ),
        }
    }
}

impl std::error::Error for CdrError {}

/// Upper bound on sequence lengths, protecting unmarshalling from hostile
/// length fields (a Byzantine replica controls its message bytes).
pub const MAX_SEQUENCE_LEN: u32 = 1 << 24;

/// A CDR encoder producing one encapsulation.
///
/// # Examples
///
/// ```
/// use itdos_giop::cdr::{Decoder, Encoder, Endianness};
/// use itdos_giop::types::{TypeDesc, Value};
///
/// let mut enc = Encoder::new(Endianness::Little);
/// enc.encode(&Value::Long(-7), &TypeDesc::Long)?;
/// let bytes = enc.into_bytes();
///
/// let mut dec = Decoder::new(&bytes, Endianness::Little);
/// assert_eq!(dec.decode(&TypeDesc::Long)?, Value::Long(-7));
/// # Ok::<(), itdos_giop::cdr::CdrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    buffer: Vec<u8>,
    endianness: Endianness,
}

impl Encoder {
    /// Creates an encoder with the given byte order.
    pub fn new(endianness: Endianness) -> Encoder {
        Encoder {
            buffer: Vec::new(),
            endianness,
        }
    }

    /// The byte order in use.
    pub fn endianness(&self) -> Endianness {
        self.endianness
    }

    /// Finishes encoding and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    fn align(&mut self, n: usize) {
        while self.buffer.len() % n != 0 {
            self.buffer.push(0);
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    fn put_u16(&mut self, v: u16) {
        self.align(2);
        match self.endianness {
            Endianness::Big => self.put(&v.to_be_bytes()),
            Endianness::Little => self.put(&v.to_le_bytes()),
        }
    }

    fn put_u32(&mut self, v: u32) {
        self.align(4);
        match self.endianness {
            Endianness::Big => self.put(&v.to_be_bytes()),
            Endianness::Little => self.put(&v.to_le_bytes()),
        }
    }

    fn put_u64(&mut self, v: u64) {
        self.align(8);
        match self.endianness {
            Endianness::Big => self.put(&v.to_be_bytes()),
            Endianness::Little => self.put(&v.to_le_bytes()),
        }
    }

    /// Encodes a raw string (length incl. NUL, bytes, NUL).
    pub fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32 + 1);
        self.put(s.as_bytes());
        self.buffer.push(0);
    }

    /// Encodes `value` according to `desc`.
    ///
    /// # Errors
    ///
    /// [`CdrError::TypeMismatch`] if the value does not conform.
    pub fn encode(&mut self, value: &Value, desc: &TypeDesc) -> Result<(), CdrError> {
        let mismatch = || CdrError::TypeMismatch {
            value_kind: value.kind(),
            expected: format!("{desc:?}"),
        };
        match (value, desc) {
            (Value::Void, TypeDesc::Void) => {}
            (Value::Octet(v), TypeDesc::Octet) => self.buffer.push(*v),
            (Value::Boolean(v), TypeDesc::Boolean) => self.buffer.push(u8::from(*v)),
            (Value::Short(v), TypeDesc::Short) => self.put_u16(*v as u16),
            (Value::UShort(v), TypeDesc::UShort) => self.put_u16(*v),
            (Value::Long(v), TypeDesc::Long) => self.put_u32(*v as u32),
            (Value::ULong(v), TypeDesc::ULong) => self.put_u32(*v),
            (Value::LongLong(v), TypeDesc::LongLong) => self.put_u64(*v as u64),
            (Value::ULongLong(v), TypeDesc::ULongLong) => self.put_u64(*v),
            (Value::Float(v), TypeDesc::Float) => self.put_u32(v.to_bits()),
            (Value::Double(v), TypeDesc::Double) => self.put_u64(v.to_bits()),
            (Value::String(v), TypeDesc::String) => self.put_string(v),
            (Value::Sequence(items), TypeDesc::Sequence(elem)) => {
                self.put_u32(items.len() as u32);
                for item in items {
                    self.encode(item, elem)?;
                }
            }
            (Value::Struct(values), TypeDesc::Struct { fields, .. }) => {
                if values.len() != fields.len() {
                    return Err(mismatch());
                }
                for (v, (_, t)) in values.iter().zip(fields) {
                    self.encode(v, t)?;
                }
            }
            (Value::Enum(d), TypeDesc::Enum { variants, .. }) => {
                if *d as usize >= variants.len() {
                    return Err(mismatch());
                }
                self.put_u32(*d);
            }
            _ => return Err(mismatch()),
        }
        Ok(())
    }
}

/// A CDR decoder over one encapsulation.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    position: usize,
    endianness: Endianness,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder reading `bytes` in the given byte order.
    pub fn new(bytes: &'a [u8], endianness: Endianness) -> Decoder<'a> {
        Decoder {
            bytes,
            position: 0,
            endianness,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.position
    }

    fn align(&mut self, n: usize) {
        let rem = self.position % n;
        if rem != 0 {
            self.position += n - rem;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        // checked: `position + n` must not wrap when `n` is hostile
        let slice = self
            .position
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.position..end));
        let Some(slice) = slice else {
            return Err(CdrError::Truncated {
                needed: n,
                remaining: self.bytes.len().saturating_sub(self.position),
            });
        };
        self.position += n;
        Ok(slice)
    }

    fn take_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2);
        let b: [u8; 2] = self.take(2)?.try_into().expect("2 bytes");
        Ok(match self.endianness {
            Endianness::Big => u16::from_be_bytes(b),
            Endianness::Little => u16::from_le_bytes(b),
        })
    }

    fn take_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4);
        let b: [u8; 4] = self.take(4)?.try_into().expect("4 bytes");
        Ok(match self.endianness {
            Endianness::Big => u32::from_be_bytes(b),
            Endianness::Little => u32::from_le_bytes(b),
        })
    }

    fn take_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8);
        let b: [u8; 8] = self.take(8)?.try_into().expect("8 bytes");
        Ok(match self.endianness {
            Endianness::Big => u64::from_be_bytes(b),
            Endianness::Little => u64::from_le_bytes(b),
        })
    }

    /// Decodes a raw string.
    ///
    /// # Errors
    ///
    /// [`CdrError::BadString`] on a missing NUL or invalid UTF-8;
    /// [`CdrError::Truncated`] on short input.
    pub fn take_string(&mut self) -> Result<String, CdrError> {
        let len = self.take_u32()? as usize;
        if len == 0 {
            return Err(CdrError::BadString);
        }
        let raw = self.take(len)?;
        let Some((&nul, body)) = raw.split_last() else {
            return Err(CdrError::BadString);
        };
        if nul != 0 {
            return Err(CdrError::BadString);
        }
        String::from_utf8(body.to_vec()).map_err(|_| CdrError::BadString)
    }

    /// Decodes one value according to `desc`.
    ///
    /// # Errors
    ///
    /// Any [`CdrError`] on malformed input.
    pub fn decode(&mut self, desc: &TypeDesc) -> Result<Value, CdrError> {
        Ok(match desc {
            TypeDesc::Void => Value::Void,
            TypeDesc::Octet => Value::Octet(self.take(1)?[0]),
            TypeDesc::Boolean => match self.take(1)?[0] {
                0 => Value::Boolean(false),
                1 => Value::Boolean(true),
                b => return Err(CdrError::BadBoolean(b)),
            },
            TypeDesc::Short => Value::Short(self.take_u16()? as i16),
            TypeDesc::UShort => Value::UShort(self.take_u16()?),
            TypeDesc::Long => Value::Long(self.take_u32()? as i32),
            TypeDesc::ULong => Value::ULong(self.take_u32()?),
            TypeDesc::LongLong => Value::LongLong(self.take_u64()? as i64),
            TypeDesc::ULongLong => Value::ULongLong(self.take_u64()?),
            TypeDesc::Float => Value::Float(f32::from_bits(self.take_u32()?)),
            TypeDesc::Double => Value::Double(f64::from_bits(self.take_u64()?)),
            TypeDesc::String => Value::String(self.take_string()?),
            TypeDesc::Sequence(elem) => {
                let len = self.take_u32()?;
                if len > MAX_SEQUENCE_LEN {
                    return Err(CdrError::OversizedSequence(len));
                }
                let mut items = Vec::with_capacity(len.min(1024) as usize);
                for _ in 0..len {
                    items.push(self.decode(elem)?);
                }
                Value::Sequence(items)
            }
            TypeDesc::Struct { fields, .. } => {
                let mut values = Vec::with_capacity(fields.len());
                for (_, t) in fields {
                    values.push(self.decode(t)?);
                }
                Value::Struct(values)
            }
            TypeDesc::Enum { variants, .. } => {
                let d = self.take_u32()?;
                if d as usize >= variants.len() {
                    return Err(CdrError::BadEnum {
                        discriminant: d,
                        variants: variants.len(),
                    });
                }
                Value::Enum(d)
            }
        })
    }
}

/// Encodes a value list (e.g. operation arguments) in one encapsulation.
///
/// # Errors
///
/// Propagates [`CdrError::TypeMismatch`] from any element.
pub fn encode_values(
    values: &[Value],
    descs: &[TypeDesc],
    endianness: Endianness,
) -> Result<Vec<u8>, CdrError> {
    let mut enc = Encoder::new(endianness);
    for (v, d) in values.iter().zip(descs) {
        enc.encode(v, d)?;
    }
    Ok(enc.into_bytes())
}

/// Decodes a value list from one encapsulation.
///
/// # Errors
///
/// Any [`CdrError`] on malformed input.
pub fn decode_values(
    bytes: &[u8],
    descs: &[TypeDesc],
    endianness: Endianness,
) -> Result<Vec<Value>, CdrError> {
    let mut dec = Decoder::new(bytes, endianness);
    descs.iter().map(|d| dec.decode(d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value, t: &TypeDesc, e: Endianness) -> Value {
        let mut enc = Encoder::new(e);
        enc.encode(v, t).expect("encode");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes, e);
        let out = dec.decode(t).expect("decode");
        assert_eq!(dec.remaining(), 0, "all bytes consumed");
        out
    }

    #[test]
    fn primitives_round_trip_both_endiannesses() {
        let cases: Vec<(Value, TypeDesc)> = vec![
            (Value::Octet(0xAB), TypeDesc::Octet),
            (Value::Boolean(true), TypeDesc::Boolean),
            (Value::Short(-12345), TypeDesc::Short),
            (Value::UShort(54321), TypeDesc::UShort),
            (Value::Long(-7), TypeDesc::Long),
            (Value::ULong(0xDEADBEEF), TypeDesc::ULong),
            (Value::LongLong(i64::MIN), TypeDesc::LongLong),
            (Value::ULongLong(u64::MAX), TypeDesc::ULongLong),
            (Value::Float(3.25), TypeDesc::Float),
            (Value::Double(-1.5e300), TypeDesc::Double),
            (Value::String("héllo".into()), TypeDesc::String),
        ];
        for (v, t) in &cases {
            for e in [Endianness::Big, Endianness::Little] {
                assert_eq!(&round_trip(v, t, e), v, "{t:?} {e:?}");
            }
        }
    }

    #[test]
    fn endianness_changes_bytes_but_not_value() {
        let v = Value::Long(0x01020304);
        let mut be = Encoder::new(Endianness::Big);
        be.encode(&v, &TypeDesc::Long).unwrap();
        let mut le = Encoder::new(Endianness::Little);
        le.encode(&v, &TypeDesc::Long).unwrap();
        let be_bytes = be.into_bytes();
        let le_bytes = le.into_bytes();
        assert_ne!(be_bytes, le_bytes, "wire bytes differ across platforms");
        assert_eq!(be_bytes, vec![1, 2, 3, 4]);
        assert_eq!(le_bytes, vec![4, 3, 2, 1]);
        // but decoding each with its own order yields the same value
        assert_eq!(
            Decoder::new(&be_bytes, Endianness::Big)
                .decode(&TypeDesc::Long)
                .unwrap(),
            Decoder::new(&le_bytes, Endianness::Little)
                .decode(&TypeDesc::Long)
                .unwrap()
        );
    }

    #[test]
    fn alignment_is_relative_to_stream_start() {
        // octet then long: long must start at offset 4
        let mut enc = Encoder::new(Endianness::Big);
        enc.encode(&Value::Octet(0xFF), &TypeDesc::Octet).unwrap();
        enc.encode(&Value::Long(1), &TypeDesc::Long).unwrap();
        let bytes = enc.into_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[..4], &[0xFF, 0, 0, 0]);
        // octet then longlong: longlong starts at offset 8
        let mut enc = Encoder::new(Endianness::Big);
        enc.encode(&Value::Octet(1), &TypeDesc::Octet).unwrap();
        enc.encode(&Value::LongLong(1), &TypeDesc::LongLong)
            .unwrap();
        assert_eq!(enc.into_bytes().len(), 16);
    }

    #[test]
    fn string_layout_matches_cdr() {
        let mut enc = Encoder::new(Endianness::Big);
        enc.encode(&Value::String("ab".into()), &TypeDesc::String)
            .unwrap();
        // length 3 (incl NUL), 'a', 'b', NUL
        assert_eq!(enc.into_bytes(), vec![0, 0, 0, 3, b'a', b'b', 0]);
    }

    #[test]
    fn nested_composites_round_trip() {
        let t = TypeDesc::Struct {
            name: "Reading".into(),
            fields: vec![
                ("id".into(), TypeDesc::Octet),
                ("samples".into(), TypeDesc::sequence_of(TypeDesc::Double)),
                ("label".into(), TypeDesc::String),
                (
                    "status".into(),
                    TypeDesc::Enum {
                        name: "St".into(),
                        variants: vec!["Ok".into(), "Degraded".into()],
                    },
                ),
            ],
        };
        let v = Value::Struct(vec![
            Value::Octet(9),
            Value::Sequence(vec![Value::Double(1.5), Value::Double(-0.25)]),
            Value::String("s1".into()),
            Value::Enum(1),
        ]);
        for e in [Endianness::Big, Endianness::Little] {
            assert_eq!(round_trip(&v, &t, e), v);
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut enc = Encoder::new(Endianness::Big);
        enc.encode(&Value::Long(1), &TypeDesc::Long).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..3], Endianness::Big);
        assert!(matches!(
            dec.decode(&TypeDesc::Long),
            Err(CdrError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_boolean_rejected() {
        let mut dec = Decoder::new(&[7], Endianness::Big);
        assert_eq!(dec.decode(&TypeDesc::Boolean), Err(CdrError::BadBoolean(7)));
    }

    #[test]
    fn bad_enum_rejected() {
        let t = TypeDesc::Enum {
            name: "E".into(),
            variants: vec!["A".into()],
        };
        let mut dec = Decoder::new(&[0, 0, 0, 5], Endianness::Big);
        assert_eq!(
            dec.decode(&t),
            Err(CdrError::BadEnum {
                discriminant: 5,
                variants: 1
            })
        );
    }

    #[test]
    fn hostile_sequence_length_rejected() {
        // length u32::MAX would OOM a naive decoder
        let bytes = u32::MAX.to_be_bytes();
        let mut dec = Decoder::new(&bytes, Endianness::Big);
        assert_eq!(
            dec.decode(&TypeDesc::sequence_of(TypeDesc::Octet)),
            Err(CdrError::OversizedSequence(u32::MAX))
        );
    }

    #[test]
    fn unterminated_string_rejected() {
        // length 2, bytes 'a','b' (no NUL)
        let bytes = [0, 0, 0, 2, b'a', b'b'];
        let mut dec = Decoder::new(&bytes, Endianness::Big);
        assert_eq!(dec.decode(&TypeDesc::String), Err(CdrError::BadString));
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let bytes = [0, 0, 0, 2, 0xFF, 0];
        let mut dec = Decoder::new(&bytes, Endianness::Big);
        assert_eq!(dec.decode(&TypeDesc::String), Err(CdrError::BadString));
    }

    #[test]
    fn type_mismatch_on_encode() {
        let mut enc = Encoder::new(Endianness::Big);
        assert!(matches!(
            enc.encode(&Value::Long(1), &TypeDesc::Double),
            Err(CdrError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn struct_arity_mismatch_on_encode() {
        let t = TypeDesc::Struct {
            name: "P".into(),
            fields: vec![("a".into(), TypeDesc::Long)],
        };
        let mut enc = Encoder::new(Endianness::Big);
        assert!(enc
            .encode(&Value::Struct(vec![Value::Long(1), Value::Long(2)]), &t)
            .is_err());
    }

    #[test]
    fn value_lists_round_trip() {
        let descs = vec![TypeDesc::Long, TypeDesc::String, TypeDesc::Double];
        let values = vec![
            Value::Long(1),
            Value::String("x".into()),
            Value::Double(2.5),
        ];
        for e in [Endianness::Big, Endianness::Little] {
            let bytes = encode_values(&values, &descs, e).unwrap();
            assert_eq!(decode_values(&bytes, &descs, e).unwrap(), values);
        }
    }

    #[test]
    fn float_bit_patterns_preserved() {
        // NaN payloads and -0.0 must survive marshalling untouched
        let v = Value::Double(f64::from_bits(0x7FF8_0000_0000_0001));
        let mut enc = Encoder::new(Endianness::Little);
        enc.encode(&v, &TypeDesc::Double).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes, Endianness::Little);
        match dec.decode(&TypeDesc::Double).unwrap() {
            Value::Double(d) => assert_eq!(d.to_bits(), 0x7FF8_0000_0000_0001),
            other => panic!("expected double, got {other:?}"),
        }
    }
}
